"""Content-addressed golden-artifact cache shared across campaign runs."""

from repro.cache.store import (
    SCHEMA_VERSION,
    ArchGoldenArtifact,
    CacheCorruptionWarning,
    CacheStats,
    GoldenArtifactCache,
    UarchGoldenArtifact,
    format_cache_stats,
    program_digest,
)

__all__ = [
    "SCHEMA_VERSION",
    "ArchGoldenArtifact",
    "CacheCorruptionWarning",
    "CacheStats",
    "GoldenArtifactCache",
    "UarchGoldenArtifact",
    "format_cache_stats",
    "program_digest",
]
