"""Trial classification semantics."""

from repro.faults.classify import (
    ARCH_CATEGORIES,
    ARCH_CATEGORY_DESCRIPTIONS,
    UARCH_CATEGORIES,
    UARCH_CATEGORY_DESCRIPTIONS,
    ArchTrialResult,
    UarchTrialResult,
    classify_arch_trial,
    classify_uarch_trial,
)


def arch_trial(**kwargs):
    return ArchTrialResult(workload="t", inject_step=0, bit=0, **kwargs)


def uarch_trial(**kwargs):
    return UarchTrialResult(
        workload="t", inject_cycle=0, target="rob", state_class="ctrl", bit=0,
        **kwargs,
    )


class TestTables:
    def test_table1_categories(self):
        assert ARCH_CATEGORIES == (
            "masked", "exception", "cfv", "mem-addr", "mem-data", "register"
        )
        assert set(ARCH_CATEGORY_DESCRIPTIONS) == set(ARCH_CATEGORIES)

    def test_table2_categories(self):
        assert UARCH_CATEGORIES == (
            "masked", "deadlock", "exception", "cfv", "sdc", "latent", "other"
        )
        assert set(UARCH_CATEGORY_DESCRIPTIONS) == set(UARCH_CATEGORIES)


class TestArchClassification:
    def test_masked_beats_everything(self):
        trial = arch_trial(exception_latency=5, failing=False)
        assert classify_arch_trial(trial, 100) == "masked"

    def test_precedence_exception_over_cfv(self):
        trial = arch_trial(exception_latency=50, cfv_latency=10, failing=True)
        assert classify_arch_trial(trial, 100) == "exception"

    def test_window_excludes_late_symptoms(self):
        trial = arch_trial(exception_latency=500, cfv_latency=10, failing=True)
        assert classify_arch_trial(trial, 100) == "cfv"
        assert classify_arch_trial(trial, 5) == "register"
        assert classify_arch_trial(trial, 1000) == "exception"

    def test_unbounded_window(self):
        trial = arch_trial(exception_latency=10**6, failing=True)
        assert classify_arch_trial(trial, None) == "exception"

    def test_memory_categories(self):
        addr = arch_trial(memaddr_latency=3, memdata_latency=2, failing=True)
        assert classify_arch_trial(addr, 100) == "mem-addr"
        data = arch_trial(memdata_latency=2, failing=True)
        assert classify_arch_trial(data, 100) == "mem-data"

    def test_register_fallback(self):
        assert classify_arch_trial(arch_trial(failing=True), 100) == "register"

    def test_coverage_grows_with_window(self):
        trial = arch_trial(exception_latency=80, failing=True)
        order = [classify_arch_trial(trial, w) for w in (25, 50, 100, 200)]
        assert order == ["register", "register", "exception", "exception"]


class TestUarchClassification:
    def test_masked(self):
        assert classify_uarch_trial(uarch_trial(), 100) == "masked"

    def test_other_for_harmless_latent(self):
        trial = uarch_trial(uarch_latent=True, latent_arch_relevant=False)
        assert classify_uarch_trial(trial, 100) == "other"
        assert not trial.failing

    def test_latent_failure(self):
        trial = uarch_trial(uarch_latent=True, latent_arch_relevant=True)
        assert trial.failing
        assert classify_uarch_trial(trial, 100) == "latent"

    def test_deadlock_precedence(self):
        trial = uarch_trial(deadlock_latency=5, exception_latency=3)
        assert classify_uarch_trial(trial, 100) == "deadlock"

    def test_deadlock_covered_at_any_interval(self):
        # The flush that follows watchdog saturation clears the fault, so
        # coverage does not depend on the checkpoint interval.
        trial = uarch_trial(deadlock_latency=5000)
        assert classify_uarch_trial(trial, 25) == "deadlock"

    def test_exception_over_cfv(self):
        trial = uarch_trial(exception_latency=5, cfv_latency=2)
        assert classify_uarch_trial(trial, 100) == "exception"

    def test_cfv_requires_interval(self):
        trial = uarch_trial(cfv_latency=150)
        assert classify_uarch_trial(trial, 100) == "sdc"
        assert classify_uarch_trial(trial, 200) == "cfv"

    def test_confident_gate(self):
        undetected = uarch_trial(cfv_latency=10)
        assert classify_uarch_trial(undetected, 100) == "cfv"
        assert (
            classify_uarch_trial(undetected, 100, require_confident_cfv=True)
            == "sdc"
        )
        detected = uarch_trial(cfv_latency=10, cfv_detected_latency=40)
        assert (
            classify_uarch_trial(detected, 100, require_confident_cfv=True)
            == "cfv"
        )

    def test_detected_beyond_interval_is_sdc(self):
        trial = uarch_trial(cfv_latency=10, cfv_detected_latency=400)
        assert (
            classify_uarch_trial(trial, 100, require_confident_cfv=True)
            == "sdc"
        )

    def test_symptom_beyond_window_is_sdc(self):
        trial = uarch_trial(exception_latency=5000)
        assert classify_uarch_trial(trial, 100) == "sdc"

    def test_arch_corrupt_is_sdc(self):
        trial = uarch_trial(arch_corrupt=True)
        assert classify_uarch_trial(trial, 100) == "sdc"

    def test_protected_trial_never_fails(self):
        trial = uarch_trial(exception_latency=5, protected=True)
        assert not trial.failing
        assert classify_uarch_trial(trial, 100) == "masked"
