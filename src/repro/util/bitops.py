"""Bit-manipulation primitives for 64-bit machine arithmetic.

The architectural and microarchitectural simulators keep register values as
unsigned Python integers in the range ``[0, 2**64)``. These helpers perform
the wrapping, sign conversion, and field extraction that the hardware would
do with fixed-width datapaths.
"""

MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1


def to_unsigned64(value: int) -> int:
    """Wrap an arbitrary Python integer into an unsigned 64-bit value."""
    return value & MASK64


def to_signed64(value: int) -> int:
    """Interpret an unsigned 64-bit value as a signed two's-complement one."""
    value &= MASK64
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def sign_extend(value: int, width: int) -> int:
    """Sign-extend ``value`` of ``width`` bits to an unsigned 64-bit value."""
    if width <= 0 or width > 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        value -= 1 << width
    return value & MASK64


def extract_bits(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    if low < 0 or width < 0:
        raise ValueError("low and width must be non-negative")
    return (value >> low) & ((1 << width) - 1)


def set_bits(value: int, low: int, width: int, field: int) -> int:
    """Return ``value`` with ``width`` bits at ``low`` replaced by ``field``."""
    mask = ((1 << width) - 1) << low
    return (value & ~mask) | ((field << low) & mask)


def flip_bit(value: int, bit: int) -> int:
    """Return ``value`` with bit number ``bit`` inverted."""
    if bit < 0:
        raise ValueError(f"bit must be non-negative, got {bit}")
    return value ^ (1 << bit)


def bit_is_set(value: int, bit: int) -> bool:
    """True when bit number ``bit`` of ``value`` is 1."""
    return bool((value >> bit) & 1)


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (``value`` must be non-negative)."""
    if value < 0:
        raise ValueError("popcount requires a non-negative value")
    return bin(value).count("1")
