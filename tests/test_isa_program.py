"""Program container."""

import pytest

from repro.isa import assemble
from repro.isa.program import DATA_BASE, TEXT_BASE, Segment


class TestSegments:
    def test_text_segment_bytes(self):
        program = assemble(".text\nnop\nnop\n")
        segment = program.text_segment
        assert segment.base == TEXT_BASE
        assert len(segment.data) == 8

    def test_data_segment(self):
        program = assemble(".data\n.quad 7\n")
        assert program.data_segment.base == DATA_BASE
        assert program.data_segment.data == (7).to_bytes(8, "little")

    def test_segments_list_skips_empty_data(self):
        program = assemble(".text\nnop\n")
        assert [segment.name for segment in program.segments] == ["text"]

    def test_segment_contains(self):
        segment = Segment("x", 100, b"abcd")
        assert segment.contains(100) and segment.contains(103)
        assert not segment.contains(104)


class TestAccessors:
    def test_word_at(self):
        program = assemble(".text\nnop\nhalt\n")
        assert program.word_at(TEXT_BASE + 4) == 0

    def test_word_at_validates(self):
        program = assemble(".text\nnop\n")
        with pytest.raises(ValueError):
            program.word_at(TEXT_BASE + 2)
        with pytest.raises(ValueError):
            program.word_at(TEXT_BASE + 400)

    def test_symbol_lookup(self):
        program = assemble(".text\nfoo: nop\n")
        assert program.symbol("foo") == TEXT_BASE
        with pytest.raises(KeyError):
            program.symbol("bar")

    def test_text_end(self):
        program = assemble(".text\nnop\nnop\nnop\n")
        assert program.text_end == TEXT_BASE + 12
