"""The campaign service over HTTP: API routes, workers, end-to-end runs."""

import asyncio
import contextlib
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaign import run_campaign, summarize_journal, format_status
from repro.service import (
    CampaignScheduler,
    CampaignService,
    LocalWorkerPool,
    RemoteWorker,
    ResultStore,
    ServiceClientError,
)
from repro.service.client import ServiceClient

CONFIG_OPTIONS = {
    "trials_per_workload": 6,
    "injection_points": 4,
    "workloads": ["gcc", "gzip"],
    "seed": 7,
}


@contextlib.contextmanager
def running_service(data_dir, *, workers=2, lease_ttl=60.0, sweep_interval=0.05):
    """Run scheduler + HTTP API (+ local pool) on a background event loop.

    The local pool executes units on threads rather than processes: the
    results are identical (trial records depend only on derived seeds)
    and the tests stay fast on small machines.
    """
    store = ResultStore(":memory:")
    scheduler = CampaignScheduler(store, str(data_dir), lease_ttl=lease_ttl)
    service = CampaignService(scheduler, port=0, sweep_interval=sweep_interval)
    pool = None
    if workers:
        pool = LocalWorkerPool(
            scheduler, workers=workers,
            executor=ThreadPoolExecutor(max_workers=workers),
        )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    stopping: list = []

    async def main():
        await service.start()
        if pool is not None:
            pool.start()
        stop = asyncio.Event()
        stopping.append(stop)
        started.set()
        await stop.wait()
        if pool is not None:
            await pool.stop()
        await service.stop()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(main()), daemon=True
    )
    thread.start()
    assert started.wait(10), "service failed to start"
    try:
        yield service, scheduler
    finally:
        loop.call_soon_threadsafe(stopping[0].set)
        thread.join(timeout=10)
        loop.close()
        store.close()


def submit_payload(**overrides):
    payload = {"level": "arch", "config": dict(CONFIG_OPTIONS)}
    payload.update(overrides)
    return payload


class TestEndToEnd:
    def test_two_worker_sharded_job_equals_serial_run(self, tmp_path):
        """The headline acceptance test: a 2-worker, 2-shard job's journal
        is byte-identical to a serial ``run_campaign``, and the status
        summary of both journals agrees."""
        with running_service(tmp_path / "svc", workers=2) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload(shards=2))
            view = client.wait(view["job_id"], timeout=120)
            assert view["state"] == "done"
            metrics = client.metrics(view["job_id"])["metrics"]

            page, results = {"total": 1}, []
            offset = 0
            while offset < client.results(view["job_id"], limit=1)["total"]:
                page = client.results(view["job_id"], offset=offset, limit=7)
                results.extend(page["results"])
                offset += len(page["results"])

        serial_path = str(tmp_path / "serial.jsonl")
        from repro.service import build_config

        serial = run_campaign(
            "arch", build_config("arch", CONFIG_OPTIONS),
            journal_path=serial_path,
        )
        with open(view["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()
        def status_lines(path):
            # Identical apart from the header naming the journal file.
            return [
                line for line in
                format_status(summarize_journal(path)).splitlines()
                if not line.startswith("Campaign journal")
            ]

        assert status_lines(view["journal_path"]) == status_lines(serial_path)
        # The paginated API walk returns the same trials, in serial order.
        assert [r["key"] for r in results] == [o.key for o in serial.outcomes]
        # The merged metrics equal the serial journal's telemetry entry.
        tail = [
            json.loads(line)
            for line in open(serial_path).read().splitlines()
        ][-1]
        assert tail["kind"] == "telemetry" and metrics == tail

    def test_remote_worker_drains_the_queue_over_http(self, tmp_path):
        with running_service(tmp_path / "svc", workers=0) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload(
                config={**CONFIG_OPTIONS, "workloads": ["gcc"]}, shards=2
            ))
            worker = RemoteWorker(
                ServiceClient(service.address), "remote-1",
                exit_when_idle=True, poll_interval=0.05,
            )
            assert worker.run() == 2
            final = client.job(view["job_id"])
            assert final["state"] == "done"
            assert final["outcomes"].get("ok", 0) > 0

    def test_killed_worker_lease_expires_and_job_still_finishes(self, tmp_path):
        """A worker leases a unit over HTTP and is killed (never reports,
        never heartbeats): the sweeper requeues the unit after the TTL
        and a healthy worker finishes the job."""
        with running_service(
            tmp_path / "svc", workers=0, lease_ttl=0.3, sweep_interval=0.05
        ) as (service, scheduler):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload(
                config={**CONFIG_OPTIONS, "workloads": ["gcc"]}
            ))
            lease = client.lease("doomed")
            assert lease is not None  # ... and then the worker dies.

            healthy = RemoteWorker(
                ServiceClient(service.address), "healthy",
                exit_when_idle=False, poll_interval=0.05, max_units=1,
            )
            assert healthy.run() == 1
            final = client.wait(view["job_id"], timeout=30)
            assert final["state"] == "done"
            events = [e["event"] for e in scheduler.events(view["job_id"])]
            assert "unit_requeued" in events


class TestApiContract:
    def test_health(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            health = ServiceClient(service.address).health()
            assert health["ok"] is True and "version" in health

    def test_unknown_job_is_404(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            with pytest.raises(ServiceClientError, match="no such job") as info:
                ServiceClient(service.address).job("job-424242")
            assert info.value.status == 404

    def test_invalid_submission_is_400(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            client = ServiceClient(service.address)
            with pytest.raises(ServiceClientError, match="level") as info:
                client.submit({"config": {}})
            assert info.value.status == 400
            with pytest.raises(
                ServiceClientError, match="unknown arch config option"
            ):
                client.submit(submit_payload(config={"trails": 3}))

    def test_unknown_route_is_404(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            with pytest.raises(ServiceClientError) as info:
                ServiceClient(service.address)._request("GET", "/api/nope")
            assert info.value.status in (404, 405)

    def test_bad_pagination_is_400(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload())
            with pytest.raises(ServiceClientError, match="offset"):
                client.results(view["job_id"], offset=-1)

    def test_cancel_via_api(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload())
            cancelled = client.cancel(view["job_id"])
            assert cancelled["state"] == "cancelled"
            assert client.lease("w") is None

    def test_job_listing_paginates(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            client = ServiceClient(service.address)
            for _ in range(3):
                client.submit(submit_payload(
                    config={**CONFIG_OPTIONS, "workloads": ["gcc"]}
                ))
            page = client.jobs(offset=1, limit=1)
            assert page["total"] == 3 and len(page["jobs"]) == 1

    def test_service_metrics_route(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload())
            assert client.lease("w") is not None
            metrics = client.service_metrics()
            assert metrics["jobs"] == 1
            assert metrics["dead_letter"] == 0
            assert metrics["counters"]["leases_granted"] == 1
            assert view["job_id"]  # the submission above is the one job

    def test_dead_letter_listing_and_requeue_over_http(self, tmp_path):
        """Drive a unit to the dead-letter queue through the API, list
        it, requeue it, and drain to a clean finish."""
        with running_service(tmp_path / "svc", workers=0) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload(
                config={**CONFIG_OPTIONS, "workloads": ["gcc"]}
            ))
            job_id = view["job_id"]
            for _ in range(2):  # exhaust the unit's attempt budget
                lease = client.lease("clumsy")
                unit = lease["unit"]
                client.fail(job_id, unit["unit_id"], "clumsy", "induced")

            listing = client.dead_letter()
            assert listing["total"] == 1
            assert listing["units"][0]["unit_id"] == unit["unit_id"]
            assert client.dead_letter(job_id) == listing
            assert client.service_metrics()["dead_letter"] == 1
            # The job finalized around the dead unit, with the skip noted.
            assert client.wait(job_id, timeout=30)["error"]

            reopened = client.requeue(job_id, unit["unit_id"])
            assert reopened["state"] == "running"
            assert client.dead_letter()["total"] == 0
            worker = RemoteWorker(
                ServiceClient(service.address), "healthy",
                exit_when_idle=True, poll_interval=0.05,
            )
            assert worker.run() == 1
            final = client.wait(job_id, timeout=30)
            assert final["state"] == "done"
            assert final["error"] is None

    def test_requeue_of_live_unit_is_400(self, tmp_path):
        with running_service(tmp_path, workers=0) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload())
            with pytest.raises(
                ServiceClientError, match="not dead-lettered"
            ) as info:
                client.requeue(view["job_id"], "gcc:0of1")
            assert info.value.status == 400

    def test_sse_stream_replays_history_to_terminal_event(self, tmp_path):
        with running_service(tmp_path / "svc", workers=1) as (service, _):
            client = ServiceClient(service.address)
            view = client.submit(submit_payload(
                config={**CONFIG_OPTIONS, "workloads": ["gcc"]}
            ))
            client.wait(view["job_id"], timeout=120)

            with socket.create_connection(
                ("127.0.0.1", service.port), timeout=10
            ) as sock:
                sock.sendall(
                    f"GET /api/jobs/{view['job_id']}/events HTTP/1.1\r\n"
                    f"Host: x\r\n\r\n".encode()
                )
                sock.settimeout(10)
                blob = b""
                while b"event: done" not in blob:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    blob += chunk
            text = blob.decode()
            assert "text/event-stream" in text
            assert "event: submitted" in text
            datas = [
                json.loads(line[6:]) for line in text.splitlines()
                if line.startswith("data: ")
            ]
            assert datas[0]["event"] == "submitted"
            assert datas[-1]["event"] == "done"
