"""Section 3.1's second campaign: flips restricted to the low 32 bits.

Paper: "the exception category did indeed become smaller, losing about 25%
of its size. The slack was consumed by the cfv and mem-addr categories,
with the cfv category picking up the majority."
"""

from repro.faults import ArchCampaignConfig, ArchResultBitFlip, run_arch_campaign
from repro.util.tables import format_table

from .conftest import emit, env_int


def test_low32_flips_shift_exceptions_to_cfv(benchmark, arch_campaign):
    def run_low32():
        config = ArchCampaignConfig(
            trials_per_workload=env_int("REPRO_TRIALS_ARCH", 210),
            injection_points=env_int("REPRO_POINTS_ARCH", 70),
            fault_model=ArchResultBitFlip(low32_only=True),
        )
        return run_arch_campaign(config)

    low32 = benchmark.pedantic(run_low32, rounds=1, iterations=1)
    full = arch_campaign

    rows = []
    for label, campaign in (("full 64-bit flips", full), ("low-32 flips", low32)):
        counter = campaign.counter(100)
        rows.append(
            [
                label,
                f"{counter.proportion('exception'):.1%}",
                f"{counter.proportion('cfv'):.1%}",
                f"{counter.proportion('mem-addr'):.1%}",
                f"{counter.proportion('masked'):.1%}",
            ]
        )
    text = format_table(
        ["fault model", "exception@100", "cfv@100", "mem-addr@100", "masked"],
        rows,
        title="Section 3.1 ablation: restricting flips to the bottom 32 bits",
    )
    emit("fig2b_low32_injection", text)

    full_exc = full.counter(100).proportion("exception")
    low_exc = low32.counter(100).proportion("exception")
    full_cfv = full.counter(100).proportion("cfv")
    low_cfv = low32.counter(100).proportion("cfv")
    # Exceptions shrink: fewer wild high-bit pointer corruptions.
    assert low_exc < full_exc
    # Control-flow symptoms pick up share.
    assert low_cfv > full_cfv * 0.9
