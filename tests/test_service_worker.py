"""The resilient client and worker: retries, breakers, outbox, bounces."""

import asyncio
import os
import time

import pytest

from repro.service import (
    LocalWorkerPool,
    RemoteWorker,
    ServiceClientError,
    TransportError,
    WorkerOutbox,
)
from repro.service.client import ServiceClient
from repro.service.worker import WorkerDeliveryWarning
from repro.util.retry import RetryPolicy

FAST_RETRY = RetryPolicy(
    attempts=3, base_delay=0.0, multiplier=1.0, max_delay=0.0, jitter=0.0
)


class ScriptedTransport:
    """A transport whose responses are a scripted list of (status, body)
    tuples or exceptions; repeats the last entry once exhausted."""

    def __init__(self, *script):
        self.script = list(script)
        self.calls = []

    def send(self, method, url, data, headers, timeout):
        self.calls.append((method, url.split("?")[0]))
        action = self.script.pop(0) if self.script else (200, b"{}")
        if isinstance(action, Exception):
            raise action
        return action


def make_client(*script, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return ServiceClient(
        "http://test", transport=ScriptedTransport(*script), **kwargs
    )


class TestClientRetries:
    def test_transport_errors_retry_until_success(self):
        client = make_client(
            TransportError("down"), TransportError("down"), (200, b'{"ok": 1}')
        )
        assert client.health() == {"ok": 1}
        assert client.counters["retries"] == 2
        assert client.counters["transport_errors"] == 2

    def test_5xx_is_retryable(self):
        client = make_client(
            (500, b'{"error": "boom"}'), (200, b'{"ok": 1}')
        )
        assert client.health() == {"ok": 1}
        assert client.counters["server_errors"] == 1

    def test_truncated_body_is_retryable_corruption(self):
        client = make_client((200, b'{"ok": tru'), (200, b'{"ok": true}'))
        assert client.health() == {"ok": True}
        assert client.counters["transport_errors"] == 1

    def test_4xx_is_fatal_and_immediate(self):
        client = make_client((404, b'{"error": "no such job: j"}'))
        with pytest.raises(ServiceClientError, match="no such job") as info:
            client.job("j")
        assert info.value.status == 404
        assert not info.value.retryable
        assert len(client.transport.calls) == 1  # no retry on 4xx

    def test_exhausted_retries_raise_retryable(self):
        client = make_client(
            TransportError("down"), TransportError("down"),
            TransportError("down"),
        )
        with pytest.raises(ServiceClientError, match="cannot reach") as info:
            client.health()
        assert info.value.retryable
        assert len(client.transport.calls) == FAST_RETRY.attempts

    def test_backoff_delays_follow_the_policy(self):
        slept = []
        policy = RetryPolicy(attempts=3, base_delay=0.2, jitter=0.5)
        client = ServiceClient(
            "http://test",
            transport=ScriptedTransport(
                TransportError("x"), TransportError("x"), (200, b"{}")
            ),
            retry=policy, sleep=slept.append,
        )
        client.health()
        assert slept == [policy.delay(1, key="health"),
                         policy.delay(2, key="health")]


class TestClientBreaker:
    def test_breaker_trips_and_fast_fails_per_endpoint(self):
        client = make_client(
            *[TransportError("down")] * 9,
            breaker_threshold=3, breaker_cooldown=60.0,
        )
        # Two exhausted calls = 6 consecutive failures; the breaker
        # tripped at 3, so the second call only gets as far as its
        # remaining allowance and the third never reaches the wire.
        with pytest.raises(ServiceClientError):
            client.health()
        wire_calls = len(client.transport.calls)
        with pytest.raises(ServiceClientError, match="circuit breaker open"):
            client.health()
        assert len(client.transport.calls) == wire_calls  # fast-failed
        assert client.breaker_trips() == 1
        assert client.counters["breaker_fast_failures"] >= 1
        # Other endpoints are unaffected: breakers are per-endpoint.
        client.transport.script = [(200, b'{"unit": null}')]
        assert client.lease("w") is None

    def test_4xx_resets_the_breaker(self):
        client = make_client(
            TransportError("down"), (400, b'{"error": "bad"}'),
            breaker_threshold=2, breaker_cooldown=60.0,
        )
        with pytest.raises(ServiceClientError, match="bad"):
            client.health()
        # The 4xx proved the endpoint alive: the failure streak is gone.
        assert client._breakers["health"].failures == 0


def fake_lease(unit_id="gcc:0of1", job_id="job-000001"):
    return {
        "unit": {
            "job_id": job_id, "unit_id": unit_id, "workload": "gcc",
            "shard_index": 0, "shard_count": 1,
        },
        "spec": {"level": "arch", "config": {}},
        "lease_ttl": 60.0,
    }


class FakeClient:
    """An in-memory ServiceClient stand-in with scripted behaviours.

    ``complete_script`` / ``heartbeat_script`` hold per-call results:
    an exception instance to raise, or a value to return. Exhausted
    scripts return True (accepted / lease alive).
    """

    def __init__(self, leases=(), complete_script=(), heartbeat_script=()):
        self.leases = list(leases)
        self.complete_script = list(complete_script)
        self.heartbeat_script = list(heartbeat_script)
        self.completes = []
        self.fails = []
        self.heartbeats = 0

    def _next(self, script, default=True):
        action = script.pop(0) if script else default
        if isinstance(action, Exception):
            raise action
        return action

    def lease(self, worker):
        return self.leases.pop(0) if self.leases else None

    def heartbeat(self, job_id, unit_id, worker):
        self.heartbeats += 1
        return self._next(self.heartbeat_script)

    def complete(self, job_id, unit_id, worker, result):
        accepted = self._next(self.complete_script)
        self.completes.append((job_id, unit_id, worker))
        return accepted

    def fail(self, job_id, unit_id, worker, error):
        self.fails.append((job_id, unit_id, error))
        return True


@pytest.fixture
def stub_execute(monkeypatch):
    """Replace unit execution with a fast counting stub."""
    executed = []

    def fake_execute(spec_dict, unit_dict, cache_dir=None):
        executed.append(unit_dict["unit_id"])
        return {"outcomes": [], "skip_reason": None, "total_bits": 0,
                "metrics": None}

    monkeypatch.setattr("repro.service.worker.execute_unit", fake_execute)
    return executed


def make_worker(client, tmp_path, **kwargs):
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("exit_when_idle", True)
    return RemoteWorker(
        client, "w0", outbox_dir=str(tmp_path / "outbox"), **kwargs
    )


class TestRemoteWorkerDelivery:
    def test_flaky_complete_spools_and_replays_without_reexecution(
        self, tmp_path, stub_execute
    ):
        """The satellite regression: an unguarded ``complete`` used to
        crash the worker and lose the finished unit. Now the result is
        spooled and replayed — and the unit is never executed twice."""
        client = FakeClient(
            leases=[fake_lease()],
            complete_script=[
                ServiceClientError("unreachable", retryable=True), True
            ],
        )
        worker = make_worker(client, tmp_path)
        with pytest.warns(WorkerDeliveryWarning, match="spooled"):
            assert worker.run() == 1
        assert stub_execute == ["gcc:0of1"]  # exactly one execution
        assert client.completes == [("job-000001", "gcc:0of1", "w0")]
        assert worker.outbox_spooled == 1
        assert worker.outbox_replayed == 1
        assert worker.units_bounced == 0
        assert worker.outbox.pending() == []

    def test_exit_when_idle_waits_for_the_outbox_to_drain(
        self, tmp_path, stub_execute
    ):
        """A worker must not exit while results are spooled — stranding
        them would let the lease expire and the unit recompute."""
        client = FakeClient(
            leases=[fake_lease()],
            complete_script=[
                ServiceClientError("unreachable", retryable=True),
                ServiceClientError("unreachable", retryable=True),
                True,
            ],
        )
        worker = make_worker(client, tmp_path)
        with pytest.warns(WorkerDeliveryWarning):
            worker.run()
        assert worker.outbox.pending() == []
        assert worker.outbox_replayed == 1

    def test_fatal_rejection_bounces_instead_of_spooling(
        self, tmp_path, stub_execute
    ):
        client = FakeClient(
            leases=[fake_lease()],
            complete_script=[ServiceClientError("bad request", status=400)],
        )
        worker = make_worker(client, tmp_path)
        with pytest.warns(WorkerDeliveryWarning, match="rejected"):
            worker.run()
        assert worker.units_bounced == 1
        assert worker.outbox_spooled == 0
        assert worker.outbox.pending() == []

    def test_reissued_lease_after_fatal_rejection_fails_not_reruns(
        self, tmp_path, stub_execute
    ):
        """The scheduler re-issues a held lease on retry; if the service
        fatally rejected the unit's results, re-executing would loop
        forever producing the same rejected payload. The worker must
        surrender the lease with ``fail`` so the attempt budget (and
        dead-letter backstop) engages."""
        lease = fake_lease()
        client = FakeClient(
            leases=[lease, lease, lease],
            complete_script=[ServiceClientError("bad request", status=400)],
        )
        worker = make_worker(client, tmp_path)
        with pytest.warns(WorkerDeliveryWarning, match="rejected"):
            worker.run()
        assert stub_execute == ["gcc:0of1"]  # executed exactly once
        assert worker.units_bounced == 1
        assert worker.units_failed == 2  # one surrender per re-issue
        assert [f[:2] for f in client.fails] == [
            ("job-000001", "gcc:0of1"),
            ("job-000001", "gcc:0of1"),
        ]
        assert "undeliverable" in client.fails[0][2]

    def test_bounced_complete_is_counted(self, tmp_path, stub_execute):
        client = FakeClient(leases=[fake_lease()], complete_script=[False])
        worker = make_worker(client, tmp_path)
        with pytest.warns(WorkerDeliveryWarning, match="bounced"):
            worker.run()
        assert worker.units_bounced == 1
        assert worker.counters()["units_bounced"] == 1

    def test_bounced_fail_report_is_counted(self, tmp_path, monkeypatch):
        def explode(spec_dict, unit_dict, cache_dir=None):
            raise RuntimeError("executor died")

        monkeypatch.setattr("repro.service.worker.execute_unit", explode)
        client = FakeClient(leases=[fake_lease()])
        client.fail = lambda *args: False
        worker = make_worker(client, tmp_path)
        with pytest.warns(WorkerDeliveryWarning, match="fail report"):
            worker.run()
        assert worker.units_failed == 1
        assert worker.units_bounced == 1

    def test_lease_errors_back_off_instead_of_crashing(
        self, tmp_path, stub_execute
    ):
        client = FakeClient(leases=[fake_lease()])
        calls = {"n": 0}
        real_lease = client.lease

        def flaky_lease(worker):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServiceClientError("unreachable", retryable=True)
            return real_lease(worker)

        client.lease = flaky_lease
        worker = make_worker(client, tmp_path)
        assert worker.run() == 1
        assert calls["n"] >= 2

    def test_fatal_lease_error_raises(self, tmp_path, stub_execute):
        client = FakeClient()
        client.lease = lambda worker: (_ for _ in ()).throw(
            ServiceClientError("bad auth", status=400)
        )
        worker = make_worker(client, tmp_path)
        with pytest.raises(ServiceClientError, match="bad auth"):
            worker.run()

    def test_outbox_survives_a_worker_restart(self, tmp_path, stub_execute):
        """A successor worker pointed at the same outbox directory
        delivers its dead predecessor's results."""
        down = FakeClient(
            leases=[fake_lease()],
            complete_script=[ServiceClientError("unreachable", retryable=True)],
        )
        first = make_worker(down, tmp_path)
        # The first worker exits while the service is down (simulate a
        # crash after spooling: stop() before the final flush succeeds).
        with pytest.warns(WorkerDeliveryWarning):
            first._run_unit(fake_lease())
        assert len(first.outbox.pending()) == 1

        up = FakeClient()
        second = make_worker(up, tmp_path)
        assert second.run() == 0  # no new units; just the replay
        assert second.outbox_replayed == 1
        assert up.completes == [("job-000001", "gcc:0of1", "w0")]
        assert second.outbox.pending() == []


class TestRemoteWorkerHeartbeat:
    def _slow_execute(self, monkeypatch, duration):
        def slow(spec_dict, unit_dict, cache_dir=None):
            time.sleep(duration)
            return {"outcomes": [], "skip_reason": None, "total_bits": 0,
                    "metrics": None}

        monkeypatch.setattr("repro.service.worker.execute_unit", slow)

    def test_heartbeat_survives_transient_errors(self, tmp_path, monkeypatch):
        """The satellite regression: one failed heartbeat used to kill
        the beat thread for good, silently expiring long leases."""
        self._slow_execute(monkeypatch, 0.35)
        lease = fake_lease()
        lease["lease_ttl"] = 0.15  # beat interval: max(0.05, 0.05) = 0.05s
        client = FakeClient(
            leases=[lease],
            heartbeat_script=[
                ServiceClientError("unreachable", retryable=True),
                ServiceClientError("unreachable", retryable=True),
            ],
        )
        worker = make_worker(client, tmp_path)
        assert worker.run() == 1
        assert worker.heartbeat_retries == 2
        assert worker.leases_lost == 0
        assert client.heartbeats > 2  # it kept beating after the errors

    def test_heartbeat_stops_on_lease_lost(self, tmp_path, monkeypatch):
        self._slow_execute(monkeypatch, 0.3)
        lease = fake_lease()
        lease["lease_ttl"] = 0.15
        client = FakeClient(leases=[lease], heartbeat_script=[False])
        worker = make_worker(client, tmp_path)
        worker.run()
        assert worker.leases_lost == 1
        assert client.heartbeats == 1  # a definitive "gone" ends the loop


class TestWorkerOutbox:
    def test_spool_is_atomic_and_keyed_by_unit(self, tmp_path):
        outbox = WorkerOutbox(str(tmp_path))
        path = outbox.spool("job-1", "gcc:0of2", "w0", {"outcomes": []})
        again = outbox.spool("job-1", "gcc:0of2", "w0", {"outcomes": [1]})
        assert path == again  # re-spooling a unit overwrites, not duplicates
        assert outbox.pending() == [path]
        assert not [
            name for name in os.listdir(str(tmp_path))
            if name.startswith(".spool-")
        ]

    def test_replay_stops_on_retryable_error_keeping_the_spool(self, tmp_path):
        outbox = WorkerOutbox(str(tmp_path))
        outbox.spool("job-1", "gcc:0of2", "w0", {})
        outbox.spool("job-1", "gcc:1of2", "w0", {})

        class DownClient:
            def complete(self, *args):
                raise ServiceClientError("unreachable", retryable=True)

        delivered, bounced = outbox.replay(DownClient())
        assert (delivered, bounced) == (0, 0)
        assert len(outbox.pending()) == 2  # nothing lost

    def test_replay_discards_bounced_and_unreadable_records(self, tmp_path):
        outbox = WorkerOutbox(str(tmp_path))
        outbox.spool("job-1", "gcc:0of2", "w0", {})
        torn = os.path.join(str(tmp_path), "job-1-torn.json")
        with open(torn, "w") as handle:
            handle.write('{"job_id": "job-1", "unit')  # torn mid-write

        class BouncingClient:
            def complete(self, *args):
                return False

        with pytest.warns(WorkerDeliveryWarning):
            delivered, bounced = outbox.replay(BouncingClient())
        assert (delivered, bounced) == (0, 1)
        assert outbox.pending() == []


class TestLocalPoolBounces:
    def test_bounced_reports_are_counted(self, tmp_path):
        class FakeScheduler:
            def heartbeat(self, *args):
                return True

            def complete(self, *args):
                return False

            def fail(self, *args):
                return False

        pool = LocalWorkerPool(FakeScheduler(), workers=1)

        async def run():
            loop = asyncio.get_running_loop()
            from concurrent.futures import ThreadPoolExecutor

            pool._executor = ThreadPoolExecutor(max_workers=1)
            try:
                with pytest.warns(WorkerDeliveryWarning, match="bounced"):
                    await pool._run_unit("local-0", {
                        "unit": fake_lease()["unit"],
                        "spec": {"level": "arch",
                                 "config": {"workloads": ["gcc"],
                                            "trials_per_workload": 1,
                                            "injection_points": 1,
                                            "seed": 7}},
                        "lease_ttl": 60.0,
                    })
            finally:
                pool._executor.shutdown(wait=False)

        asyncio.run(run())
        assert pool.units_bounced == 1
