"""Two-pass assembler for the reproduction ISA.

Syntax (one statement per line, ``#`` starts a comment)::

    .text
    start:  la      r1, table           # pseudo: load a 32-bit address
            li      r2, 100             # pseudo: load an immediate
    loop:   ldq     r3, 0(r1)
            addq    r3, 7, r3           # bare numbers are literals
            stq     r3, 0(r1)
            lda     r1, 8(r1)
            subq    r2, 1, r2
            bne     r2, loop
            ret     (ra)
    .data
    table:  .quad   1, 2, 3
            .space  64
            .align  8

Directives: ``.text``, ``.data``, ``.quad``, ``.long``, ``.byte``,
``.space N``, ``.align N``, ``.asciiz "..."``.

Pseudo-instructions (expanded to fixed-length sequences so that pass one can
lay out addresses):

- ``nop``                  -> ``bis zero, zero, zero``
- ``mov rs, rd``           -> ``bis rs, rs, rd``
- ``li rd, imm``           -> ``lda`` (16-bit) or ``ldah``+``lda`` (32-bit)
- ``la rd, symbol[+off]``  -> ``ldah``+``lda`` pair (always two words)
- ``clr rd``               -> ``bis zero, zero, rd``
- ``halt``                 -> the all-zero word
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa import opcodes as op
from repro.isa import program as prog
from repro.isa.encoding import (
    HALT_WORD,
    encode_branch,
    encode_jump,
    encode_memory,
    encode_operate,
)
from repro.isa.registers import REG_RA, REG_ZERO, register_number


class AssemblerError(Exception):
    """Raised with a line number on any assembly problem."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class _Statement:
    line_number: int
    section: str
    mnemonic: str
    operands: list[str]
    address: int = 0
    size: int = 0


@dataclass
class _Assembly:
    """Mutable state threaded through both passes."""

    symbols: dict[str, int] = field(default_factory=dict)
    text_words: list[int] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_NUMBER_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_MEM_OPERAND_RE = re.compile(r"^(?P<disp>[^()]*)\((?P<base>[^()]+)\)$")


def _parse_number(text: str) -> int | None:
    text = text.strip()
    if _NUMBER_RE.match(text):
        return int(text, 0)
    return None


def _split_operands(text: str) -> list[str]:
    """Split on commas not inside quotes."""
    operands = []
    current = []
    in_string = False
    for char in text:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def _strip_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char in "#;" and not in_string:
            return line[:index]
    return line


class _Assembler:
    def __init__(self, source: str, name: str):
        self.source = source
        self.name = name
        self.state = _Assembly()
        self.statements: list[_Statement] = []

    # ------------------------------------------------------------- parsing

    def parse(self) -> None:
        section = "text"
        text_addr = prog.TEXT_BASE
        data_addr = prog.DATA_BASE
        for line_number, raw_line in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            while line:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in self.state.symbols:
                    raise AssemblerError(line_number, f"duplicate label {label!r}")
                self.state.symbols[label] = (
                    text_addr if section == "text" else data_addr
                )
                line = line[match.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            if mnemonic == ".text":
                section = "text"
                continue
            if mnemonic == ".data":
                section = "data"
                continue
            statement = _Statement(
                line_number=line_number,
                section=section,
                mnemonic=mnemonic,
                operands=_split_operands(operand_text),
            )
            statement.size = self._statement_size(statement, data_addr)
            if section == "text":
                if mnemonic.startswith("."):
                    raise AssemblerError(
                        line_number, f"directive {mnemonic} not allowed in .text"
                    )
                statement.address = text_addr
                text_addr += statement.size
            else:
                statement.address = data_addr
                data_addr += statement.size
            self.statements.append(statement)

    def _statement_size(self, statement: _Statement, data_addr: int) -> int:
        mnemonic = statement.mnemonic
        operands = statement.operands
        line = statement.line_number
        if mnemonic.startswith("."):
            if mnemonic == ".quad":
                return 8 * len(operands)
            if mnemonic == ".long":
                return 4 * len(operands)
            if mnemonic == ".byte":
                return len(operands)
            if mnemonic == ".space":
                count = _parse_number(operands[0]) if operands else None
                if count is None or count < 0:
                    raise AssemblerError(line, ".space needs a size")
                return count
            if mnemonic == ".align":
                alignment = _parse_number(operands[0]) if operands else None
                if alignment is None or alignment <= 0:
                    raise AssemblerError(line, ".align needs an alignment")
                return (-data_addr) % alignment
            if mnemonic == ".asciiz":
                if len(operands) != 1 or not operands[0].startswith('"'):
                    raise AssemblerError(line, '.asciiz needs one "string"')
                return len(self._parse_string(line, operands[0])) + 1
            raise AssemblerError(line, f"unknown directive {mnemonic}")
        return 4 * self._expansion_length(statement)

    def _expansion_length(self, statement: _Statement) -> int:
        mnemonic = statement.mnemonic
        if mnemonic == "la":
            return 2
        if mnemonic == "li":
            if len(statement.operands) != 2:
                raise AssemblerError(statement.line_number, "li rd, imm")
            value = _parse_number(statement.operands[1])
            if value is None:
                raise AssemblerError(
                    statement.line_number, "li needs a numeric immediate"
                )
            return 1 if -(1 << 15) <= value < (1 << 15) else 2
        return 1

    @staticmethod
    def _parse_string(line: int, text: str) -> bytes:
        if not (text.startswith('"') and text.endswith('"')):
            raise AssemblerError(line, f"malformed string {text}")
        body = text[1:-1]
        return body.encode("utf-8").decode("unicode_escape").encode("latin-1")

    # ----------------------------------------------------------- encoding

    def encode(self) -> prog.Program:
        for statement in self.statements:
            if statement.section == "text":
                self._encode_instruction(statement)
            else:
                self._encode_data(statement)
        return prog.Program(
            name=self.name,
            text_words=self.state.text_words,
            data_bytes=bytes(self.state.data),
            symbols=dict(self.state.symbols),
        )

    def _encode_data(self, statement: _Statement) -> None:
        mnemonic = statement.mnemonic
        line = statement.line_number
        if mnemonic == ".quad":
            for operand in statement.operands:
                value = self._eval(line, operand)
                self.state.data += (value % (1 << 64)).to_bytes(8, "little")
        elif mnemonic == ".long":
            for operand in statement.operands:
                value = self._eval(line, operand)
                self.state.data += (value % (1 << 32)).to_bytes(4, "little")
        elif mnemonic == ".byte":
            for operand in statement.operands:
                value = self._eval(line, operand)
                self.state.data += (value % 256).to_bytes(1, "little")
        elif mnemonic == ".space":
            self.state.data += bytes(statement.size)
        elif mnemonic == ".align":
            self.state.data += bytes(statement.size)
        elif mnemonic == ".asciiz":
            self.state.data += self._parse_string(line, statement.operands[0])
            self.state.data += b"\x00"
        else:  # pragma: no cover - guarded in pass one
            raise AssemblerError(line, f"unknown directive {mnemonic}")

    def _eval(self, line: int, expression: str) -> int:
        """Evaluate number | symbol | symbol+number | symbol-number."""
        text = expression.strip()
        number = _parse_number(text)
        if number is not None:
            return number
        match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\w+)?$", text)
        if not match:
            raise AssemblerError(line, f"cannot evaluate expression {text!r}")
        symbol, offset_text = match.groups()
        if symbol not in self.state.symbols:
            raise AssemblerError(line, f"undefined symbol {symbol!r}")
        value = self.state.symbols[symbol]
        if offset_text:
            offset = _parse_number(offset_text.replace(" ", ""))
            if offset is None:
                raise AssemblerError(line, f"bad offset in {text!r}")
            value += offset
        return value

    def _reg(self, line: int, text: str) -> int:
        try:
            return register_number(text)
        except ValueError as error:
            raise AssemblerError(line, str(error)) from error

    def _encode_instruction(self, statement: _Statement) -> None:
        for word in self._expand(statement):
            self.state.text_words.append(word)

    def _expand(self, statement: _Statement) -> list[int]:
        mnemonic = statement.mnemonic
        operands = statement.operands
        line = statement.line_number

        if mnemonic == "nop":
            return [encode_operate(op.OP_INTL, op.FUNC_BIS, REG_ZERO, REG_ZERO,
                                   REG_ZERO, is_literal=False)]
        if mnemonic == "halt":
            return [HALT_WORD]
        if mnemonic == "clr":
            if len(operands) != 1:
                raise AssemblerError(line, "clr rd")
            rd = self._reg(line, operands[0])
            return [encode_operate(op.OP_INTL, op.FUNC_BIS, REG_ZERO, REG_ZERO,
                                   rd, is_literal=False)]
        if mnemonic == "mov":
            if len(operands) != 2:
                raise AssemblerError(line, "mov rs, rd")
            rd = self._reg(line, operands[1])
            number = _parse_number(operands[0])
            if number is not None:
                if not 0 <= number < 256:
                    raise AssemblerError(line, "mov immediate must fit 8 bits; use li")
                return [encode_operate(op.OP_INTL, op.FUNC_BIS, REG_ZERO, number,
                                       rd, is_literal=True)]
            rs = self._reg(line, operands[0])
            return [encode_operate(op.OP_INTL, op.FUNC_BIS, rs, rs, rd,
                                   is_literal=False)]
        if mnemonic == "li":
            return self._expand_li(line, operands)
        if mnemonic == "la":
            return self._expand_la(line, operands)

        spec = op.SPEC_BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise AssemblerError(line, f"unknown mnemonic {mnemonic!r}")
        if spec.format is op.Format.OPERATE:
            return [self._encode_operate_stmt(line, spec, operands)]
        if spec.format is op.Format.MEMORY:
            return [self._encode_memory_stmt(line, spec, operands)]
        if spec.format is op.Format.JUMP:
            return [self._encode_jump_stmt(line, spec, operands)]
        if spec.format is op.Format.BRANCH:
            return [self._encode_branch_stmt(line, spec, operands, statement)]
        raise AssemblerError(line, f"cannot encode {mnemonic}")

    def _expand_li(self, line: int, operands: list[str]) -> list[int]:
        rd = self._reg(line, operands[0])
        value = _parse_number(operands[1])
        if value is None:
            raise AssemblerError(line, "li needs a numeric immediate")
        return self._load_constant(line, rd, value)

    def _expand_la(self, line: int, operands: list[str]) -> list[int]:
        if len(operands) != 2:
            raise AssemblerError(line, "la rd, symbol")
        rd = self._reg(line, operands[0])
        value = self._eval(line, operands[1])
        words = self._load_constant(line, rd, value, force_pair=True)
        return words

    def _load_constant(
        self, line: int, rd: int, value: int, force_pair: bool = False
    ) -> list[int]:
        if not force_pair and -(1 << 15) <= value < (1 << 15):
            return [encode_memory(op.OP_LDA, rd, REG_ZERO, value)]
        if not -(1 << 31) <= value < (1 << 31):
            raise AssemblerError(line, f"constant does not fit 32 bits: {value}")
        low = value & 0xFFFF
        if low >= 0x8000:
            low -= 0x10000
        high = (value - low) >> 16
        if not -(1 << 15) <= high < (1 << 15):
            raise AssemblerError(line, f"constant does not fit 32 bits: {value}")
        return [
            encode_memory(op.OP_LDAH, rd, REG_ZERO, high),
            encode_memory(op.OP_LDA, rd, rd, low),
        ]

    def _encode_operate_stmt(
        self, line: int, spec: op.OpSpec, operands: list[str]
    ) -> int:
        if len(operands) != 3:
            raise AssemblerError(line, f"{spec.mnemonic} ra, rb|imm, rc")
        ra = self._reg(line, operands[0])
        rc = self._reg(line, operands[2])
        number = _parse_number(operands[1])
        if number is not None:
            if not 0 <= number < 256:
                raise AssemblerError(
                    line, f"operate literal must be in [0, 255], got {number}"
                )
            return encode_operate(spec.opcode, spec.func, ra, number, rc,
                                  is_literal=True)
        rb = self._reg(line, operands[1])
        return encode_operate(spec.opcode, spec.func, ra, rb, rc,
                              is_literal=False)

    def _encode_memory_stmt(
        self, line: int, spec: op.OpSpec, operands: list[str]
    ) -> int:
        if len(operands) != 2:
            raise AssemblerError(line, f"{spec.mnemonic} ra, disp(rb)")
        ra = self._reg(line, operands[0])
        match = _MEM_OPERAND_RE.match(operands[1])
        if match:
            disp_text = match.group("disp").strip()
            disp = self._eval(line, disp_text) if disp_text else 0
            rb = self._reg(line, match.group("base"))
        else:
            disp = self._eval(line, operands[1])
            rb = REG_ZERO
        if not -(1 << 15) <= disp < (1 << 15):
            raise AssemblerError(line, f"displacement does not fit 16 bits: {disp}")
        return encode_memory(spec.opcode, ra, rb, disp)

    def _encode_jump_stmt(
        self, line: int, spec: op.OpSpec, operands: list[str]
    ) -> int:
        # Accept "jsr ra, (rb)", "jmp (rb)", "ret (rb)", "ret".
        if not operands:
            if spec.jump_hint == op.JUMP_HINT_RET:
                return encode_jump(REG_ZERO, REG_RA, spec.jump_hint)
            raise AssemblerError(line, f"{spec.mnemonic} needs a target register")
        if len(operands) == 1:
            ra = REG_ZERO
            target_text = operands[0]
        else:
            ra = self._reg(line, operands[0])
            target_text = operands[1]
        target_text = target_text.strip()
        if target_text.startswith("(") and target_text.endswith(")"):
            target_text = target_text[1:-1]
        rb = self._reg(line, target_text)
        return encode_jump(ra, rb, spec.jump_hint)

    def _encode_branch_stmt(
        self, line: int, spec: op.OpSpec, operands: list[str],
        statement: _Statement,
    ) -> int:
        if spec.opcode in (op.OP_BR, op.OP_BSR):
            if len(operands) == 1:
                ra = REG_RA if spec.opcode == op.OP_BSR else REG_ZERO
                target_text = operands[0]
            elif len(operands) == 2:
                ra = self._reg(line, operands[0])
                target_text = operands[1]
            else:
                raise AssemblerError(line, f"{spec.mnemonic} [ra,] label")
        else:
            if len(operands) != 2:
                raise AssemblerError(line, f"{spec.mnemonic} ra, label")
            ra = self._reg(line, operands[0])
            target_text = operands[1]
        target = self._eval(line, target_text)
        offset = target - (statement.address + 4)
        if offset % 4 != 0:
            raise AssemblerError(line, f"misaligned branch target 0x{target:x}")
        return encode_branch(spec.opcode, ra, offset // 4)


def assemble(source: str, name: str = "program") -> prog.Program:
    """Assemble source text into a :class:`~repro.isa.program.Program`."""
    assembler = _Assembler(source, name)
    assembler.parse()
    return assembler.encode()
