"""Cache and TLB timing models."""

import pytest

from repro.uarch.caches import SetAssociativeCache, Tlb


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=32)
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=32)
        cache.access(0x100)
        assert cache.access(0x11F)  # same 32-byte line

    def test_lru_eviction(self):
        cache = SetAssociativeCache(sets=1, ways=2, line_bytes=32)
        cache.access(0)      # A
        cache.access(32)     # B
        cache.access(0)      # A is now MRU
        cache.access(64)     # C evicts B
        assert cache.access(0)       # A survives
        assert not cache.access(32)  # B was evicted

    def test_probe_does_not_fill(self):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=32)
        assert not cache.probe(0x100)
        assert not cache.access(0x100)  # still a miss: probe didn't fill
        assert cache.probe(0x100)

    def test_sets_power_of_two(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(sets=3, ways=2, line_bytes=32)


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=4)
        assert not tlb.access(0x10000)
        assert tlb.access(0x10001)  # same page

    def test_fifo_replacement(self):
        tlb = Tlb(entries=2, page_shift=13)
        pages = [0, 1, 2]
        for page in pages:
            tlb.access(page << 13)
        assert not tlb.access(0)       # evicted
        assert tlb.access(2 << 13)     # recent survives
