"""Adaptive campaign planning: sequential trial allocation with early stopping.

The fixed-budget campaigns in :mod:`repro.faults` spend
``trials_per_workload`` uniformly across injection points regardless of
how quickly each point's outcome distribution converges. This package
turns a campaign into a sequential experiment:

- :class:`~repro.planner.core.CampaignPlanner` allocates trials in
  rounds, watches per-point outcome tallies, stops points whose Wilson
  margin (:func:`repro.util.stats.wilson_margin` — never degenerate at
  0/n like Wald) has reached the target, reallocates the freed budget to
  the still-wide points, and terminates when every point converged or
  the budget cap is hit.
- :func:`~repro.planner.prescreen.prescreen_dead_points` classifies
  injection points whose destination register is provably dead
  (overwritten before the next read, derived from the golden
  :class:`~repro.arch.tracing.ExecutionTrace`) as masked without
  simulating a single window — the masking-equivalence pruning idea.

Adaptive runs are deterministic for a given seed (per-trial randomness
is derived from ``(seed, workload, point, index)``, so the allocation
order never changes a record), recorded in the journal manifest,
resumable, and off by default: non-adaptive journals stay byte-identical.
"""

from repro.planner.core import (
    CampaignPlanner,
    PlannerConfig,
    PlannerProtocolError,
    aggregate_planner_summaries,
    replay_summary,
    resolve_budget,
)
from repro.planner.margins import (
    format_point_margins,
    journal_point_tallies,
    point_margins,
)
from repro.planner.prescreen import prescreen_dead_points
from repro.planner.preview import format_plan, preview_plan

__all__ = [
    "CampaignPlanner",
    "PlannerConfig",
    "PlannerProtocolError",
    "aggregate_planner_summaries",
    "format_plan",
    "format_point_margins",
    "journal_point_tallies",
    "point_margins",
    "prescreen_dead_points",
    "preview_plan",
    "replay_summary",
    "resolve_budget",
]
