"""Architectural state container."""

import pytest

from repro.arch.state import ArchState
from repro.isa.registers import NUM_REGS, REG_ZERO


class TestRegisters:
    def test_write_masks_to_64_bits(self):
        state = ArchState()
        state.write_reg(1, 1 << 70)
        assert state.read_reg(1) == (1 << 70) % (1 << 64)

    def test_r31_writes_discarded(self):
        state = ArchState()
        state.write_reg(REG_ZERO, 55)
        assert state.read_reg(REG_ZERO) == 0


class TestSnapshots:
    def test_roundtrip_includes_pc(self):
        state = ArchState()
        state.write_reg(5, 99)
        state.pc = 0x4000
        snapshot = state.snapshot_regs()
        state.write_reg(5, 0)
        state.pc = 0
        state.restore_regs(snapshot)
        assert state.read_reg(5) == 99 and state.pc == 0x4000

    def test_restore_validates_length(self):
        with pytest.raises(ValueError):
            ArchState().restore_regs((0,) * NUM_REGS)

    def test_diff_regs(self):
        a = ArchState()
        b = ArchState()
        b.write_reg(3, 1)
        b.write_reg(7, 2)
        assert a.diff_regs(b) == [3, 7]
        assert not a.regs_equal(b)
        assert a.regs_equal(ArchState())
