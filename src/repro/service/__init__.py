"""The campaign service: fault injection at fleet scale.

Statistical fault-injection campaigns (the paper's Section 3 methodology)
are embarrassingly parallel *because* of a deliberate property of this
reproduction: every trial's randomness derives from
``(seed, workload, point, index)`` alone. This package exploits that to
turn campaigns into a service — jobs sharded into ``(workload,
seed-slice)`` work units, a pull-based worker protocol with leases and
heartbeats so a dead worker's units are requeued, a SQLite result store
ingesting trial records idempotently, and an HTTP JSON API with SSE
progress streaming. A finished job's journal is **bit-identical** to a
serial ``run_campaign`` of the same spec (see
:mod:`repro.service.shard` for the invariant and DESIGN.md for why it
holds).

Layers:

- :mod:`repro.service.spec` — job specs and config reconstruction.
- :mod:`repro.service.shard` — work units and the stride-sharding model.
- :mod:`repro.service.store` — the SQLite job/unit/trial store.
- :mod:`repro.service.scheduler` — lifecycle, leases, finalization.
- :mod:`repro.service.worker` — unit execution, local pool, remote loop.
- :mod:`repro.service.api` — the asyncio HTTP front end.
- :mod:`repro.service.client` — the urllib client the CLI uses, with
  retries, retryable-vs-fatal error classification, and per-endpoint
  circuit breakers.
- :mod:`repro.service.chaos` — the seeded fault-injection transport and
  worker-killer driver the chaos tests and CI chaos-smoke job use.

CLI: ``repro serve`` runs scheduler + API + local pool; ``repro submit``
submits and optionally waits; ``repro jobs`` lists/inspects/cancels;
``repro worker`` drains the queue from another process or machine.
"""

from repro.service.api import CampaignService
from repro.service.chaos import ChaosPlan, ChaosTransport, WorkerProcess
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    TransportError,
)
from repro.service.scheduler import CampaignScheduler
from repro.service.shard import WorkUnit, shard_job
from repro.service.spec import JobSpec, ServiceError, build_config
from repro.service.store import ResultStore
from repro.service.worker import (
    LocalWorkerPool,
    RemoteWorker,
    WorkerOutbox,
    execute_unit,
)

__all__ = [
    "CampaignScheduler",
    "CampaignService",
    "ChaosPlan",
    "ChaosTransport",
    "JobSpec",
    "LocalWorkerPool",
    "RemoteWorker",
    "ResultStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "TransportError",
    "WorkUnit",
    "WorkerOutbox",
    "WorkerProcess",
    "build_config",
    "execute_unit",
    "shard_job",
]
