"""Fault model definitions."""

from repro.faults.models import ArchResultBitFlip, StateBitFlip
from repro.uarch import load_pipeline
from repro.uarch.latches import LATCH_CLASSES
from repro.util.rng import DeterministicRng
from repro.workloads import build_workload


class TestArchResultBitFlip:
    def test_full_width_model(self):
        model = ArchResultBitFlip()
        rng = DeterministicRng(1)
        bits = {model.choose_bit(rng) for _ in range(2000)}
        assert min(bits) == 0 and max(bits) == 63

    def test_low32_model(self):
        model = ArchResultBitFlip(low32_only=True)
        rng = DeterministicRng(1)
        bits = {model.choose_bit(rng) for _ in range(2000)}
        assert max(bits) == 31


class TestStateBitFlip:
    def test_targets_all_by_default(self):
        registry = load_pipeline(build_workload("gcc").program).registry
        model = StateBitFlip()
        assert len(model.targets(registry)) == len(registry.fields)

    def test_targets_filtered_by_class(self):
        registry = load_pipeline(build_workload("gcc").program).registry
        model = StateBitFlip(target_classes=LATCH_CLASSES)
        targets = model.targets(registry)
        assert targets
        assert all(field.state_class in LATCH_CLASSES for field in targets)
        assert len(targets) < len(registry.fields)
