"""Register naming conventions."""

import pytest

from repro.isa.registers import (
    NUM_REGS,
    REG_GP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    register_name,
    register_number,
)


class TestNames:
    def test_aliases(self):
        assert register_name(REG_SP) == "sp"
        assert register_name(REG_RA) == "ra"
        assert register_name(REG_GP) == "gp"
        assert register_name(REG_ZERO) == "zero"

    def test_plain_names(self):
        assert register_name(5) == "r5"
        assert register_name(0) == "r0"  # v0 renders as r0 for clarity

    def test_range_checked(self):
        with pytest.raises(ValueError):
            register_name(NUM_REGS)


class TestParsing:
    def test_roundtrip_all(self):
        for number in range(NUM_REGS):
            assert register_number(register_name(number)) == number

    def test_aliases_case_insensitive(self):
        assert register_number("SP") == REG_SP
        assert register_number(" Zero ") == REG_ZERO

    def test_invalid(self):
        for bad in ("r32", "x5", "", "r-1", "reg1"):
            with pytest.raises(ValueError):
                register_number(bad)
