"""Parity/ECC protection map ("low-hanging fruit")."""

from repro.restore.hardened import ProtectionMap, protection_overhead_bits
from repro.uarch import load_pipeline
from repro.workloads import build_workload


def registry():
    return load_pipeline(build_workload("gcc").program).registry


class TestProtectionMap:
    def test_default_classes(self):
        pmap = ProtectionMap()
        reg = registry()
        kinds = {pmap.protection_of(field) for field in reg.fields}
        assert kinds == {"ecc", "parity", None}

    def test_key_data_stores_get_ecc(self):
        pmap = ProtectionMap()
        reg = registry()
        for field in reg.fields:
            if field.state_class == "ram" and field.structure in (
                "prf", "arch_rat", "spec_rat", "fetchq",
            ):
                assert pmap.protection_of(field) == "ecc"

    def test_control_word_latches_get_parity(self):
        pmap = ProtectionMap()
        reg = registry()
        for field in reg.fields:
            if field.structure in ("rob", "sched") and field.state_class == "ctrl":
                assert pmap.protection_of(field) == "parity"

    def test_residual_unprotected_state_exists(self):
        pmap = ProtectionMap()
        reg = registry()
        unprotected = [f for f in reg.fields if pmap.protection_of(f) is None]
        assert unprotected, "ReStore needs a residual unprotected set"
        # In-flight addresses and data stay exposed, as in the paper.
        structures = {f.structure for f in unprotected}
        assert "ldq" in structures and "stq" in structures

    def test_bit_accounting(self):
        pmap = ProtectionMap()
        reg = registry()
        assert (
            pmap.protected_bits(reg) + pmap.unprotected_bits(reg)
            == reg.total_bits()
        )

    def test_selective_coverage(self):
        # The paper's lhf covers the most vulnerable portions, not everything.
        pmap = ProtectionMap()
        reg = registry()
        fraction = pmap.protected_bits(reg) / reg.total_bits()
        assert 0.3 < fraction < 0.8


class TestOverhead:
    def test_overhead_is_single_digit_percent(self):
        """The paper reports ~7% additional state for its placement."""
        reg = registry()
        overhead = protection_overhead_bits(reg, ProtectionMap())
        fraction = overhead / reg.total_bits()
        assert 0.03 < fraction < 0.10

    def test_overhead_scales_with_coverage(self):
        reg = registry()
        small = protection_overhead_bits(
            reg, ProtectionMap(ecc_structures=(), parity_structures=("rob",))
        )
        large = protection_overhead_bits(reg, ProtectionMap())
        assert large > small
