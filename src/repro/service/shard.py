"""Sharding: splitting a campaign job into resumable work units.

A work unit is ``(workload, seed-slice)``: one workload of the campaign,
restricted to the stride slice ``index % shard_count == shard_index`` of
the per-point trial index space. Because every trial's randomness is
derived from ``(seed, workload, point, index)`` — never from execution
order or from which process runs it — the slice boundaries cannot change
a single trial record: the union of a workload's shards is exactly the
serial campaign, trial for trial, bit for bit. That is the service's
**serial-equivalence invariant**, and the end-to-end tests assert it by
diffing a sharded job's journal against a serial ``run_campaign`` of the
same config and seed.

A stride (rather than a contiguous index range) is used because the
per-point trial count is only known after the workload's golden run has
been walked; stride slices partition the index space whatever that count
turns out to be.

Sharding finer than one unit per workload duplicates the workload's
golden run and prefix walk in every unit — the classic
throughput-versus-redundancy trade. One unit per workload (the default)
matches the PR 1 parallel runner's work division; more shards buy
horizontal scale across a worker fleet once trial counts dominate the
golden-run cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.spec import JobSpec


@dataclass(frozen=True)
class WorkUnit:
    """One leasable slice of a job: a workload restricted to a seed-slice."""

    job_id: str
    unit_id: str
    workload: str
    shard_index: int
    shard_count: int

    @property
    def shard(self) -> tuple[int, int] | None:
        """The executor-facing stride descriptor (None for a whole workload)."""
        if self.shard_count == 1:
            return None
        return (self.shard_index, self.shard_count)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "unit_id": self.unit_id,
            "workload": self.workload,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkUnit":
        return cls(
            job_id=data["job_id"],
            unit_id=data["unit_id"],
            workload=data["workload"],
            shard_index=int(data["shard_index"]),
            shard_count=int(data["shard_count"]),
        )


def shard_job(job_id: str, spec: JobSpec) -> list[WorkUnit]:
    """Split a job into its work units, in deterministic dispatch order.

    Units are ordered workload-major (the spec's workload order, which is
    also the serial runner's execution order) so a single worker draining
    the queue processes the job in the same order a serial run would.
    """
    units: list[WorkUnit] = []
    count = spec.shards_per_workload
    for workload in spec.config.workloads:
        for index in range(count):
            units.append(
                WorkUnit(
                    job_id=job_id,
                    unit_id=f"{workload}:{index}of{count}",
                    workload=workload,
                    shard_index=index,
                    shard_count=count,
                )
            )
    return units
