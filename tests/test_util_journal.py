"""Append-only JSONL journal and manifest helpers."""

import json

import pytest

from repro.faults import ArchCampaignConfig
from repro.util.journal import (
    JournalError,
    JournalWriter,
    config_to_dict,
    read_journal,
    repair_tail,
    stable_digest,
)


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JournalWriter(path) as writer:
            writer.write({"kind": "manifest", "seed": 7})
            writer.write({"kind": "trial", "key": "gcc:5:0"})
        entries = read_journal(path)
        assert entries == [
            {"kind": "manifest", "seed": 7},
            {"kind": "trial", "key": "gcc:5:0"},
        ]

    def test_append_mode_preserves_existing_entries(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JournalWriter(path) as writer:
            writer.write({"n": 1})
        with JournalWriter(path, append=True) as writer:
            writer.write({"n": 2})
        assert [entry["n"] for entry in read_journal(path)] == [1, 2]

    def test_write_after_close_rejected(self, tmp_path):
        writer = JournalWriter(str(tmp_path / "run.jsonl"))
        writer.close()
        with pytest.raises(JournalError):
            writer.write({"n": 1})

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "run.jsonl")
        with JournalWriter(path) as writer:
            writer.write({"n": 1})
        assert read_journal(path) == [{"n": 1}]


class TestTornLines:
    def test_torn_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"n": 1}) + "\n" + '{"kind": "trial", "key": "gc'
        )
        assert read_journal(str(path)) == [{"n": 1}]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"n": 1}\nnot json at all\n{"n": 3}\n')
        with pytest.raises(JournalError, match="corrupt"):
            read_journal(str(path))

    def test_repair_tail_truncates_torn_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"n": 1}\n{"kind": "trial", "key": "gc')
        repair_tail(str(path))
        assert path.read_text() == '{"n": 1}\n'

    def test_repair_tail_restores_missing_newline(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}')
        repair_tail(str(path))
        assert read_journal(str(path)) == [{"n": 1}, {"n": 2}]
        assert path.read_text().endswith("\n")

    def test_append_after_torn_line_keeps_journal_readable(self, tmp_path):
        # Without tail repair the appended entries would land after the
        # torn fragment, turning it into mid-file corruption that poisons
        # every later read.
        path = tmp_path / "run.jsonl"
        path.write_text('{"n": 1}\n{"kind": "trial", "key": "gc')
        with JournalWriter(str(path), append=True) as writer:
            writer.write({"n": 2})
        assert [entry["n"] for entry in read_journal(str(path))] == [1, 2]
        # A second append/read cycle must also stay clean.
        with JournalWriter(str(path), append=True) as writer:
            writer.write({"n": 3})
        assert [entry["n"] for entry in read_journal(str(path))] == [1, 2, 3]


class TestDigests:
    def test_digest_is_stable(self):
        config = ArchCampaignConfig(trials_per_workload=10, injection_points=5)
        first = stable_digest(config_to_dict(config))
        second = stable_digest(config_to_dict(
            ArchCampaignConfig(trials_per_workload=10, injection_points=5)
        ))
        assert first == second

    def test_digest_tracks_config_changes(self):
        base = config_to_dict(ArchCampaignConfig())
        changed = config_to_dict(ArchCampaignConfig(seed=2006))
        assert stable_digest(base) != stable_digest(changed)

    def test_config_dict_is_json_serializable(self):
        as_dict = config_to_dict(ArchCampaignConfig(workloads=("gcc", "mcf")))
        json.dumps(as_dict)  # must not raise
        assert as_dict["workloads"] == ["gcc", "mcf"]


class TestTearWarnings:
    """Partial final records are tolerated with a warning, never an abort."""

    def test_torn_final_line_warns_and_keeps_complete_entries(self, tmp_path):
        from repro.util.journal import JournalTearWarning

        path = tmp_path / "run.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}\n{"kind": "trial", "key": "gc')
        with pytest.warns(
            JournalTearWarning, match="2 complete entries retained"
        ):
            entries = read_journal(str(path))
        assert entries == [{"n": 1}, {"n": 2}]

    def test_intact_journal_does_not_warn(self, tmp_path):
        import warnings

        path = tmp_path / "run.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}\n')
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_journal(str(path)) == [{"n": 1}, {"n": 2}]

    def test_lone_torn_fragment_warns_and_yields_nothing(self, tmp_path):
        from repro.util.journal import JournalTearWarning

        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "manifest", "level": "ar')
        with pytest.warns(JournalTearWarning, match="0 complete entries"):
            assert read_journal(str(path)) == []

    def test_tear_warning_is_a_user_warning(self):
        from repro.util.journal import JournalTearWarning

        assert issubclass(JournalTearWarning, UserWarning)


class TestOmitDefaultFields:
    """Fields marked ``omit_default`` vanish from the dict at their default,
    so configs grown after journals existed keep old digests stable."""

    def test_local_dataclass_omits_defaults(self):
        from dataclasses import dataclass, field

        @dataclass(frozen=True)
        class Cfg:
            a: int = 1
            b: int = field(default=2, metadata={"omit_default": True})
            c: tuple = field(default=(), metadata={"omit_default": True})

        assert config_to_dict(Cfg()) == {"a": 1}
        assert config_to_dict(Cfg(b=3, c=("x",))) == {"a": 1, "b": 3,
                                                      "c": ["x"]}
        # Only an exact default is omitted.
        assert config_to_dict(Cfg(b=2, c=("x",))) == {"a": 1, "c": ["x"]}

    def test_uarch_memhier_options_omitted_at_default(self):
        from repro.faults import UarchCampaignConfig

        base = config_to_dict(UarchCampaignConfig())
        assert "memhier_targets" not in base
        assert "detectors" not in base
        on = config_to_dict(UarchCampaignConfig(
            memhier_targets=True, detectors=("miss_spike",)
        ))
        assert on["memhier_targets"] is True
        assert on["detectors"] == ["miss_spike"]
        assert stable_digest(base) != stable_digest(on)

    def test_default_factory_defaults_are_respected(self):
        from dataclasses import dataclass, field

        @dataclass(frozen=True)
        class Cfg:
            xs: list = field(default_factory=list,
                             metadata={"omit_default": True})

        assert config_to_dict(Cfg()) == {}
        assert config_to_dict(Cfg(xs=[1])) == {"xs": [1]}
