"""The campaign scheduler: job lifecycle, leases, and finalization.

The scheduler owns every state transition in the service. It shards a
submitted :class:`~repro.service.spec.JobSpec` into work units, hands
units to workers through a pull-based lease protocol (lease → heartbeat
→ complete/fail, with expiry requeue when a worker vanishes), ingests
per-unit results into the :class:`~repro.service.store.ResultStore`, and
— once a job has no unit left in flight — finalizes it by writing a
campaign journal **bit-identical to a serial ``run_campaign``** of the
same spec: the same manifest, the same trial lines in the same order,
the same workload sentinels, the same trailing telemetry aggregate.

Lease protocol invariants:

- A unit's ``attempts`` counter increments when it is leased, never when
  it is reported. A unit is retired as ``failed`` only once it has been
  attempted ``max_attempts`` times (default 2 — the serial runner's
  retry-once semantics), whether the attempts ended in explicit failure
  reports or silent lease expiries.
- Leases may be granted in batches (up to N units per call, one store
  transaction, one lease clock per batch) and results may arrive in
  bounded chunks; neither changes any completion invariant — every unit
  in a batch completes, fails, or expires individually, and chunk
  ingestion is idempotent on the trial key.
- Results are only accepted from the worker that holds the lease; a
  late report from an expired lease is dropped (its trial rows would be
  ignored anyway — trial ingestion is idempotent on the trial key).
- A permanently failed unit marks its workload's sentinel ``skipped``
  (mirroring the parallel runner's worker-died-twice classification);
  the job still finalizes.

The scheduler is synchronous and loop-agnostic: the asyncio API layer
and the in-process worker pool call into it directly, and tests drive it
with a fake clock.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Callable

from repro.campaign.outcomes import TrialOutcome, WorkloadRunOutcome
from repro.campaign.runner import (
    _emit_trial_events,
    _manifest,
    _workload_sentinel,
)
from repro.service.shard import WorkUnit, round_units, shard_job
from repro.service.spec import JobSpec, ServiceError
from repro.service.store import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_TERMINAL_STATES,
    UNIT_DONE,
    UNIT_FAILED,
    UNIT_LEASED,
    UNIT_PENDING,
    ResultStore,
)
from repro.telemetry.metrics import CounterSet
from repro.util.journal import JournalWriter

#: How many progress events each job retains for SSE replay.
EVENT_HISTORY = 256


def _lease_clock() -> float:
    """The clock lease bookkeeping runs on: monotonic, immune to NTP.

    Lease expiry compares *durations* (now vs. lease start + ttl), so a
    wall-clock step — NTP slew, DST, an operator fixing the date — must
    not mass-expire every live lease (backwards step never reaches
    expiry) or immortalise a dead one (forwards step makes expiry
    unreachable). ``time.monotonic()`` has exactly the right contract.
    """
    import time

    return time.monotonic()


def _wall_clock() -> float:
    """Wall time, used only for human-facing display fields."""
    import time

    return time.time()


class CampaignScheduler:
    """Coordinates jobs, units, workers, and results for the service.

    ``clock`` drives every lease/heartbeat/expiry comparison and defaults
    to :func:`time.monotonic`; ``wall_clock`` supplies the display-only
    ``created``/``finished`` timestamps and defaults to :func:`time.time`
    (or to ``clock`` when a test injects one fake clock for both).
    """

    def __init__(
        self,
        store: ResultStore,
        data_dir: str,
        *,
        lease_ttl: float = 60.0,
        max_attempts: int = 2,
        clock: Callable[[], float] | None = None,
        wall_clock: Callable[[], float] | None = None,
    ):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.data_dir = data_dir
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.clock = clock or _lease_clock
        self.wall_clock = wall_clock or clock or _wall_clock
        self._specs: dict[str, JobSpec] = {}
        self._events: dict[str, deque] = {}
        self._listeners: dict[str, list[Callable[[dict], None]]] = {}
        #: Protocol-level resilience tallies served by ``GET /api/metrics``.
        self.counters = CounterSet()
        os.makedirs(os.path.join(data_dir, "jobs"), exist_ok=True)
        # Monotonic timestamps do not survive a process restart (each boot
        # has its own epoch), so leases persisted by a previous scheduler
        # carry meaningless expiries. Re-arm them against this process's
        # clock: the worst case is one extra ttl of patience before a
        # genuinely dead worker's unit is requeued.
        self.store.rearm_leases(self.clock() + self.lease_ttl)
        # A crash between a round's final complete and the next round's
        # dispatch would strand an adaptive job forever: with no pending
        # units left, no future complete() re-triggers planning. Replay
        # the planner for every live job on boot — the replay is pure
        # (persisted trials in, persisted state out), so doing it
        # redundantly is harmless.
        for row in self.store.jobs(limit=-1):
            if row["state"] in JOB_TERMINAL_STATES:
                continue
            try:
                if self.spec(row["job_id"]).planner is None:
                    continue
            except ServiceError:
                continue
            self._maybe_finalize(row["job_id"])

    # ----------------------------------------------------------- events

    def _emit(self, job_id: str, kind: str, **payload) -> None:
        event = {"event": kind, "job_id": job_id, **payload}
        self._events.setdefault(job_id, deque(maxlen=EVENT_HISTORY)).append(event)
        for listener in self._listeners.get(job_id, []):
            listener(event)

    def events(self, job_id: str) -> list[dict]:
        """The retained progress-event history for a job."""
        return list(self._events.get(job_id, ()))

    def add_listener(self, job_id: str, listener: Callable[[dict], None]) -> None:
        self._listeners.setdefault(job_id, []).append(listener)

    def remove_listener(
        self, job_id: str, listener: Callable[[dict], None]
    ) -> None:
        listeners = self._listeners.get(job_id, [])
        if listener in listeners:
            listeners.remove(listener)

    # ------------------------------------------------------------- jobs

    def submit(self, spec: JobSpec) -> dict:
        """Accept a job: persist it, shard it, and queue its units."""
        seq = self.store.next_sequence()
        job_id = f"job-{seq:06d}"
        self._specs[job_id] = spec
        self.store.create_job(
            job_id, seq, spec.level, spec.to_dict(), created=self.wall_clock()
        )
        units = shard_job(job_id, spec)
        self.store.add_units(units)
        self._emit(
            job_id, "submitted",
            level=spec.level, units=len(units),
            config_digest=spec.config_digest,
        )
        return self.job_view(job_id)

    def spec(self, job_id: str) -> JobSpec:
        spec = self._specs.get(job_id)
        if spec is None:
            row = self.store.job(job_id)
            if row is None:
                raise ServiceError(f"no such job: {job_id}")
            spec = JobSpec.from_dict(json.loads(row["spec"]))
            self._specs[job_id] = spec
        return spec

    def job_view(self, job_id: str) -> dict:
        """The API-facing status object for one job."""
        row = self.store.job(job_id)
        if row is None:
            raise ServiceError(f"no such job: {job_id}")
        view = {
            "job_id": row["job_id"],
            "state": row["state"],
            "level": row["level"],
            "created": row["created"],
            "finished": row["finished"],
            "error": row["error"],
            "config_digest": self.spec(job_id).config_digest,
            "units": self.store.unit_state_counts(job_id),
            "trials": self.store.trial_count(job_id),
            "outcomes": self.store.outcome_counts(job_id),
            "journal_path": row["journal_path"],
            "trace_path": row["trace_path"],
        }
        if row["metrics"]:
            view["metrics"] = json.loads(row["metrics"])
        return view

    def jobs_view(self, offset: int = 0, limit: int = 50) -> dict:
        rows = self.store.jobs(offset=offset, limit=limit)
        return {
            "total": self.store.job_count(),
            "offset": offset,
            "limit": limit,
            "jobs": [self.job_view(row["job_id"]) for row in rows],
        }

    def cancel(self, job_id: str) -> dict:
        row = self.store.job(job_id)
        if row is None:
            raise ServiceError(f"no such job: {job_id}")
        if row["state"] not in JOB_TERMINAL_STATES:
            self.store.cancel_pending_units(job_id)
            self.store.set_job_state(
                job_id, JOB_CANCELLED, finished=self.wall_clock()
            )
            self._emit(job_id, "cancelled")
        return self.job_view(job_id)

    # ------------------------------------------------------ the lease protocol

    def lease(self, worker: str) -> dict | None:
        """Lease the next available work unit to ``worker``.

        Returns ``{"unit": ..., "spec": ...}`` or ``None`` when the queue
        is idle — the unbatched protocol, a batch of one.
        """
        leases = self.lease_batch(worker, 1)
        return leases[0] if leases else None

    def lease_batch(self, worker: str, count: int) -> list[dict]:
        """Lease up to ``count`` work units to ``worker`` in one call.

        Returns a (possibly empty) list of lease dicts, each the same
        shape as a single :meth:`lease` response. Expired leases are
        swept first so a stalled unit is re-offered before untouched
        ones of later jobs; the whole grant happens in one store
        transaction, and every fresh unit in the batch shares one lease
        clock reading — a batch expires as a whole, not raggedly.

        Units the worker already holds live leases on come first: a
        batched lease response lost in transit must be re-issued to the
        retrying worker (same units, same attempts) — answering "idle"
        would strand the grants until TTL expiry, or strand the job
        outright if the worker exits believing the queue is empty.
        """
        if count < 1:
            raise ServiceError(f"lease count must be >= 1, got {count}")
        now = self.clock()
        self.requeue_expired(now)
        units: list[dict] = []
        reissued = self.store.reissue_leases(worker, now, self.lease_ttl, count)
        for unit in reissued:
            self.counters.bump("lease_reissues")
            self._emit(
                unit["job_id"], "lease_reissued",
                unit_id=unit["unit_id"], worker=worker,
                attempt=unit["attempts"],
            )
        units.extend(reissued)
        remaining = count - len(reissued)
        if remaining > 0:
            fresh = self.store.lease_batch(
                worker, now, self.lease_ttl, remaining
            )
            if fresh:
                self.counters.bump("leases_granted", len(fresh))
                if count > 1:
                    self.counters.bump("batch_leases_granted")
                for unit in fresh:
                    job = self.store.job(unit["job_id"])
                    if job is not None and job["state"] == JOB_QUEUED:
                        self.store.set_job_state(unit["job_id"], JOB_RUNNING)
                        self._emit(unit["job_id"], "running")
                    self._emit(
                        unit["job_id"], "leased",
                        unit_id=unit["unit_id"], worker=worker,
                        attempt=unit["attempts"],
                    )
                units.extend(fresh)
        return [self._lease_view(unit) for unit in units]

    def _lease_view(self, unit: dict) -> dict:
        """The worker-facing lease payload for one leased unit row."""
        job_id = unit["job_id"]
        allocation = unit.get("allocation")
        return {
            "unit": WorkUnit(
                job_id=job_id,
                unit_id=unit["unit_id"],
                workload=unit["workload"],
                shard_index=unit["shard_index"],
                shard_count=unit["shard_count"],
                round=unit.get("round", 0) or 0,
                allocation=(
                    tuple(tuple(entry) for entry in json.loads(allocation))
                    if allocation else None
                ),
            ).to_dict(),
            "spec": self.spec(job_id).to_dict(),
            "lease_ttl": self.lease_ttl,
            "attempt": unit["attempts"],
        }

    def heartbeat(self, job_id: str, unit_id: str, worker: str) -> bool:
        """Extend a worker's lease; False means the lease is gone."""
        return self.store.heartbeat(
            job_id, unit_id, worker, self.clock() + self.lease_ttl
        )

    def complete(
        self, job_id: str, unit_id: str, worker: str, result: dict
    ) -> bool:
        """Ingest a finished unit's results. False when the lease is gone
        (a late report after expiry-requeue); the results are dropped —
        the retry attempt will regenerate the identical records.

        Idempotent per (unit, worker): redelivery of a complete the
        store already ingested — the signature of a response lost to the
        network and retried, or an outbox replay racing its own original
        — is *accepted* again (and counted) so the reporting worker
        settles instead of spooling forever. A duplicate from a
        *different* worker still bounces: its lease was forfeited and
        its copy of the results is dropped."""
        unit = self.store.unit(job_id, unit_id)
        if (
            unit is not None and unit["state"] == UNIT_DONE
            and unit["worker"] == worker
        ):
            self.counters.bump("duplicate_completes")
            self._emit(
                job_id, "duplicate_complete", unit_id=unit_id, worker=worker
            )
            return True
        accepted = self.store.complete_unit(
            job_id, unit_id, worker,
            skip_reason=result.get("skip_reason"),
            total_bits=int(result.get("total_bits", 0)),
            metrics=result.get("metrics"),
            planner_meta=result.get("planner_meta"),
        )
        if not accepted:
            self.counters.bump("bounced_completes")
            return False
        round_number = (unit.get("round", 0) or 0) if unit is not None else 0
        new = self.store.add_trials(
            job_id,
            self._trial_rows(
                job_id, result.get("outcomes", []), round_number
            ),
        )
        self._emit(
            job_id, "unit_done",
            unit_id=unit_id, worker=worker, trials=new,
            skip_reason=result.get("skip_reason"),
        )
        self._maybe_finalize(job_id)
        return True

    def complete_chunk(
        self, job_id: str, unit_id: str, worker: str, result: dict,
        index: int, count: int,
    ) -> bool:
        """Ingest one bounded chunk of a finishing unit's results.

        A unit with many trials streams its ``outcomes`` back in
        ``count`` chunks instead of one giant POST. Chunks ``0..count-2``
        carry only an outcomes slice: they are ingested into the trial
        store (idempotently — the trial key *is* the chunk's idempotency
        key, so a duplicated or redelivered chunk can never
        double-count) and refresh the lease, since a slow stream must
        not expire mid-delivery. The final chunk carries the unit-level
        result (skip reason, bit population, telemetry aggregate) plus
        the last slice, and lands through the ordinary idempotent
        :meth:`complete` path.

        Partial chunks from a worker that no longer holds the lease
        bounce (``False``) — the retry attempt regenerates identical
        records — while redelivery after this worker's own complete was
        ingested is accepted, mirroring :meth:`complete`.
        """
        if count < 1 or not 0 <= index < count:
            raise ServiceError(
                f"invalid chunk {index}/{count} for {job_id}/{unit_id}"
            )
        self.counters.bump("chunked_completes")
        if index == count - 1:
            return self.complete(job_id, unit_id, worker, result)
        unit = self.store.unit(job_id, unit_id)
        if unit is None:
            raise ServiceError(f"no such unit: {job_id}/{unit_id}")
        if unit["state"] == UNIT_DONE and unit["worker"] == worker:
            # Redelivery of a chunk the store already has: settle the
            # sender, exactly like a duplicate complete.
            self.counters.bump("duplicate_completes")
            return True
        if unit["state"] != UNIT_LEASED or unit["worker"] != worker:
            self.counters.bump("bounced_completes")
            return False
        new = self.store.add_trials(
            job_id,
            self._trial_rows(
                job_id, result.get("outcomes", []),
                unit.get("round", 0) or 0,
            ),
        )
        self.store.heartbeat(
            job_id, unit_id, worker, self.clock() + self.lease_ttl
        )
        self._emit(
            job_id, "chunk_ingested",
            unit_id=unit_id, worker=worker, chunk=index, chunks=count,
            trials=new,
        )
        return True

    def _trial_rows(
        self, job_id: str, outcomes: list[dict], round_number: int = 0
    ) -> list[tuple]:
        """Store rows for reported trial entries, keyed for serial order."""
        spec = self.spec(job_id)
        positions = {name: i for i, name in enumerate(spec.config.workloads)}
        return [
            (
                entry["key"],
                positions.get(entry["workload"], len(positions)),
                round_number,
                entry["workload"],
                entry["point"],
                entry["index"],
                entry["status"],
                json.dumps(entry),
            )
            for entry in outcomes
        ]

    def fail(
        self, job_id: str, unit_id: str, worker: str, error: str
    ) -> bool:
        """Record an attempt failure: requeue the unit, or retire it once
        it has exhausted ``max_attempts``."""
        unit = self.store.unit(job_id, unit_id)
        if unit is None or unit["state"] != UNIT_LEASED or unit["worker"] != worker:
            self.counters.bump("bounced_fails")
            return False
        self._retire_or_requeue(unit, error)
        self._maybe_finalize(job_id)
        return True

    def requeue_expired(self, now: float | None = None) -> int:
        """Sweep expired leases back into the queue (or retire them)."""
        if now is None:
            now = self.clock()
        expired = self.store.expired_units(now)
        if expired:
            self.counters.bump("lease_expiries", len(expired))
        for unit in expired:
            self._retire_or_requeue(
                unit,
                f"lease expired (worker {unit['worker']!r} stopped "
                f"heartbeating)",
            )
            self._maybe_finalize(unit["job_id"])
        return len(expired)

    def _retire_or_requeue(self, unit: dict, error: str) -> None:
        job_id, unit_id = unit["job_id"], unit["unit_id"]
        if unit["attempts"] >= self.max_attempts:
            self.store.release_unit(
                job_id, unit_id, state=UNIT_FAILED,
                error=f"{error} (attempt {unit['attempts']} of "
                      f"{self.max_attempts})",
            )
            self.counters.bump("units_dead_lettered")
            self._emit(job_id, "unit_failed", unit_id=unit_id, error=error)
        else:
            self.counters.bump("units_requeued")
            self.store.release_unit(
                job_id, unit_id, state=UNIT_PENDING, error=error
            )
            self._emit(job_id, "unit_requeued", unit_id=unit_id, error=error)

    # ----------------------------------------------- the dead-letter queue

    def dead_letter_view(self, job_id: str | None = None) -> dict:
        """Attempt-exhausted units, queryable instead of just vanished.

        A dead-lettered unit has spent its ``max_attempts`` budget on
        failure reports and/or silent lease expiries; its workload's
        sentinel is marked skipped but the unit itself stays addressable
        so an operator can inspect the error chain and requeue it."""
        if job_id is not None and self.store.job(job_id) is None:
            raise ServiceError(f"no such job: {job_id}")
        units = self.store.dead_letter_units(job_id)
        return {
            "total": len(units),
            "units": [
                {
                    "job_id": unit["job_id"],
                    "unit_id": unit["unit_id"],
                    "workload": unit["workload"],
                    "attempts": unit["attempts"],
                    "error": unit["error"],
                }
                for unit in units
            ],
        }

    def requeue_unit(self, job_id: str, unit_id: str) -> dict:
        """Return a dead-lettered unit to the queue with a fresh attempt
        budget, reopening a finalized job so it re-finalizes (and its
        journal is rebuilt without the skip sentinel) once the unit
        completes."""
        job = self.store.job(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id}")
        if job["state"] == JOB_CANCELLED:
            raise ServiceError(f"{job_id} is cancelled; cannot requeue units")
        unit = self.store.unit(job_id, unit_id)
        if unit is None:
            raise ServiceError(f"no such unit: {job_id}/{unit_id}")
        if not self.store.requeue_unit(job_id, unit_id):
            raise ServiceError(
                f"unit {job_id}/{unit_id} is not dead-lettered "
                f"(state: {unit['state']})"
            )
        self.counters.bump("dead_letter_requeues")
        if job["state"] == JOB_DONE:
            self.store.set_job_state(job_id, JOB_RUNNING)
            self._emit(job_id, "reopened", unit_id=unit_id)
        self._emit(
            job_id, "unit_requeued", unit_id=unit_id,
            error="requeued from dead-letter queue",
        )
        return self.job_view(job_id)

    def service_metrics(self) -> dict:
        """The service-wide resilience counters for ``GET /api/metrics``."""
        return {
            "counters": self.counters.to_entry(),
            "dead_letter": self.store.dead_letter_count(),
            "jobs": self.store.job_count(),
        }

    # ------------------------------------------------- adaptive planning

    def _advance_planner(self, job_id: str) -> None:
        """Drive an adaptive job's round progression, workload by workload.

        Called after every unit completion (and at startup for running
        jobs, so a scheduler restart between a round's last complete and
        the next round's dispatch cannot strand the job). All planner
        state is reconstructed from the store — done units' persisted
        metadata plus ingested trial rows — by replaying the planner's
        deterministic round structure, so the scheduler never relies on
        in-memory state surviving.
        """
        spec = self.spec(job_id)
        if spec.planner is None:
            return
        by_workload: dict[str, list[dict]] = {}
        for unit in self.store.units(job_id):
            by_workload.setdefault(unit["workload"], []).append(unit)
        for workload in spec.config.workloads:
            self._advance_workload_planner(
                job_id, spec, workload, by_workload.get(workload, [])
            )

    def _advance_workload_planner(
        self, job_id: str, spec: JobSpec, workload: str, units: list[dict]
    ) -> None:
        from repro.planner import CampaignPlanner, resolve_budget

        state = self.store.planner_state(job_id, workload)
        if state is None:
            round0 = [u for u in units if (u["round"] or 0) == 0]
            done = [u for u in round0 if u["state"] == UNIT_DONE]
            if not round0 or len(done) < len(round0):
                return  # round 0 still in flight (or failed: halt here)
            if any(u["skip_reason"] for u in done):
                # The workload's golden run failed; there are no rounds.
                self.store.set_planner_state(
                    job_id, workload, {"skipped": True}
                )
                return
            meta = next(
                (json.loads(u["planner_meta"])
                 for u in done if u["planner_meta"]),
                None,
            )
            if meta is None:
                return  # no metadata reported; cannot plan further rounds
            state = {
                "points": meta["points"],
                "prescreened": meta["prescreened"],
            }
            self.store.set_planner_state(job_id, workload, state)
        if state.get("skipped") or "summary" in state or not state.get("points"):
            return
        if any(u["state"] == UNIT_FAILED for u in units):
            return  # a dead-lettered round halts progression until requeued
        planner = CampaignPlanner(
            spec.planner, state["points"], state.get("prescreened", ()),
            budget=resolve_budget(spec.planner, spec.config),
        )
        entries = self.store.trial_entries(job_id, workload=workload, limit=-1)
        observed = {
            (entry["point"], entry["index"]): (
                entry["status"] == "ok",
                bool((entry.get("record") or {}).get("failing")),
            )
            for entry in entries
        }
        emitted = {u["unit_id"] for u in units}
        round_number = 0
        while True:
            allocation = planner.plan_round()
            if not allocation:
                state["summary"] = planner.summary()
                self.store.set_planner_state(job_id, workload, state)
                return
            have_all = all(
                (point, index) in observed
                for point, start, count in allocation
                for index in range(start, start + count)
            )
            if have_all:
                for point, start, count in allocation:
                    for index in range(start, start + count):
                        ok, failing = observed[(point, index)]
                        planner.observe(point, ok=ok, failing=failing)
                round_number += 1
                continue
            # This round's trials are incomplete: dispatch its units if
            # they have not been emitted yet, then wait for completes.
            shards = spec.shards_per_workload
            if f"{workload}:r{round_number}:0of{shards}" not in emitted:
                new_units = round_units(
                    job_id, spec, workload, round_number, list(allocation)
                )
                self.store.add_units(new_units)
                self.counters.bump("planner_rounds_dispatched")
                self._emit(
                    job_id, "planner_round",
                    workload=workload, round=round_number,
                    units=len(new_units),
                    trials=sum(count for _, _, count in allocation),
                )
            return

    # ----------------------------------------------------- finalization

    def _maybe_finalize(self, job_id: str) -> None:
        job = self.store.job(job_id)
        if job is None or job["state"] in JOB_TERMINAL_STATES:
            return
        # Adaptive jobs plan before they settle: dispatching the next
        # round here (rather than only in complete()) means every path
        # that could finalize — completes, failures, lease expiries,
        # startup recovery — first checks whether more rounds are owed,
        # so a job can never finalize with rounds undispatched.
        self._advance_planner(job_id)
        counts = self.store.unit_state_counts(job_id)
        if counts.get(UNIT_PENDING, 0) or counts.get(UNIT_LEASED, 0):
            return
        self._finalize(job_id)

    def _finalize(self, job_id: str) -> None:
        """Assemble the job's journal — bit-identical to a serial run's.

        A serial ``run_campaign`` writes: the manifest; then, workload by
        workload in config order, each trial line in (point, index) order
        followed by the workload sentinel; then one telemetry aggregate.
        The store indexes trials by (workload position, point, index) and
        the per-unit metrics merge exactly (integer tallies), so this
        reconstruction reproduces that byte stream without re-running
        anything — the serial-equivalence invariant the end-to-end tests
        pin down.
        """
        from repro.telemetry.metrics import (
            CampaignMetrics,
            aggregate_campaign,
            merge_campaign_metrics,
        )

        spec = self.spec(job_id)
        level = spec.level
        units = self.store.units(job_id)
        by_workload: dict[str, list[dict]] = {}
        for unit in units:
            by_workload.setdefault(unit["workload"], []).append(unit)

        journal_path = os.path.join(self.data_dir, "jobs", f"{job_id}.jsonl")
        trace_path: str | None = None
        trace_sink = None
        if spec.trace:
            from repro.telemetry.sinks import JsonlTraceSink

            trace_path = os.path.join(
                self.data_dir, "jobs", f"{job_id}.trace.jsonl"
            )
            trace_sink = JsonlTraceSink(trace_path)

        part_metrics: list[CampaignMetrics] = []
        skipped: list[str] = []
        try:
            with JournalWriter(journal_path) as writer:
                writer.write(_manifest(level, spec.config, spec.planner))
                for workload in spec.config.workloads:
                    workload_units = by_workload.get(workload, [])
                    entries = self.store.trial_entries(
                        job_id, workload=workload, limit=-1
                    )
                    for entry in entries:
                        writer.write(entry)
                        if trace_sink is not None:
                            _emit_trial_events(
                                trace_sink, level,
                                TrialOutcome.from_entry(entry, level),
                            )
                    failed = [
                        u for u in workload_units if u["state"] == UNIT_FAILED
                    ]
                    done = [
                        u for u in workload_units if u["state"] == UNIT_DONE
                    ]
                    skip_reason = None
                    if failed:
                        skip_reason = "; ".join(
                            f"unit {u['unit_id']}: {u['error']}" for u in failed
                        )
                        skipped.append(workload)
                    elif done and done[0]["skip_reason"]:
                        # The workload itself could not run (its golden run
                        # failed) — every shard reports the identical reason,
                        # which is exactly the serial runner's sentinel.
                        skip_reason = done[0]["skip_reason"]
                        skipped.append(workload)
                    elif not done:
                        # Every unit was cancelled before running.
                        continue
                    planner_points = None
                    prescreened_points = None
                    if spec.planner is not None and skip_reason is None:
                        state = self.store.planner_state(job_id, workload)
                        if state and state.get("points"):
                            planner_points = tuple(state["points"])
                            prescreened_points = tuple(
                                state.get("prescreened", ())
                            )
                    writer.write(_workload_sentinel(WorkloadRunOutcome(
                        workload,
                        skip_reason=skip_reason,
                        total_bits=max(
                            (u["total_bits"] or 0 for u in workload_units),
                            default=0,
                        ),
                        planner_points=planner_points,
                        prescreened_points=prescreened_points,
                    )))
                    for unit in workload_units:
                        if unit["state"] == UNIT_DONE and unit["metrics"]:
                            part_metrics.append(
                                CampaignMetrics.from_entry(
                                    json.loads(unit["metrics"])
                                )
                            )
                if part_metrics:
                    metrics = merge_campaign_metrics(part_metrics)
                else:
                    metrics = aggregate_campaign(
                        level,
                        [],
                        extra_symptoms=tuple(
                            getattr(spec.config, "detectors", ()) or ()
                        ),
                    )
                if spec.planner is not None:
                    from repro.planner import aggregate_planner_summaries

                    summaries = []
                    for workload in spec.config.workloads:
                        state = self.store.planner_state(job_id, workload)
                        if state and state.get("summary"):
                            summaries.append(state["summary"])
                    totals = aggregate_planner_summaries(
                        spec.planner, summaries
                    )
                    metrics.planner = totals
                    self.counters.bump(
                        "planner_trials_saved", totals["trials_saved"]
                    )
                    self.counters.bump(
                        "planner_prescreen_trials", totals["prescreen_trials"]
                    )
                metrics_entry = metrics.to_entry()
                writer.write(metrics_entry)
        finally:
            if trace_sink is not None:
                trace_sink.close()

        error = None
        if skipped:
            error = f"skipped workloads: {', '.join(skipped)}"
        # ``error`` is written unconditionally (even as None): a job
        # re-finalized after a dead-letter requeue must shed the stale
        # "skipped workloads" note once every unit has completed.
        self.store.finalize_job(
            job_id, state=JOB_DONE, journal_path=journal_path,
            trace_path=trace_path, metrics=metrics_entry,
            finished=self.wall_clock(), error=error,
        )
        self._emit(
            job_id, "done",
            journal_path=journal_path, trials=self.store.trial_count(job_id),
            skipped=skipped,
        )
