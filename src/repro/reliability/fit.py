"""Silent-data-corruption FIT rates under device scaling (Figure 8).

Section 5.3: "we assumed a raw FIT of 0.001 per bit [Hazucha-Svensson],
a widely accepted estimate for per-bit FIT rate in SRAMs. ... The FIT
extrapolations are made assuming that the soft error masking rate of the
larger designs remains constant as design size is scaled. A reliability
goal of 1000 MTBF, or mean time (years) between failures is reflected by
the horizontal line at 115 FIT."

The SDC FIT of a design is therefore::

    FIT(bits, config) = bits x 0.001 x failure_fraction(config)

where ``failure_fraction`` is the per-fault probability of silent data
corruption measured by the injection campaigns (Figures 4-6): ~7% for the
unprotected baseline, ~3.5% with ReStore at a 100-instruction interval,
~3% with the parity/ECC "low-hanging fruit", and ~1% with both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import format_table

RAW_FIT_PER_BIT = 0.001

# FIT value of the paper's 1000-year-MTBF goal line.
MTBF_GOAL_FIT = 115.0

HOURS_PER_YEAR = 24 * 365.25

# Figure 8's x-axis: bits of "interesting" storage per design.
FIGURE8_DESIGN_SIZES: tuple[int, ...] = (
    50_000, 100_000, 200_000, 400_000, 800_000,
    1_600_000, 3_200_000, 6_400_000, 12_800_000, 25_600_000,
)

CONFIG_NAMES = ("baseline", "ReStore", "lhf", "lhf+ReStore")


@dataclass(frozen=True)
class ConfigFailureFractions:
    """Per-fault silent-failure probability of each configuration."""

    baseline: float
    restore: float
    lhf: float
    lhf_restore: float

    def of(self, config: str) -> float:
        mapping = {
            "baseline": self.baseline,
            "ReStore": self.restore,
            "lhf": self.lhf,
            "lhf+ReStore": self.lhf_restore,
        }
        if config not in mapping:
            raise KeyError(f"unknown configuration {config!r}")
        return mapping[config]


# The paper's measured fractions (Section 5.2.2).
PAPER_FAILURE_FRACTIONS = ConfigFailureFractions(
    baseline=0.07, restore=0.035, lhf=0.03, lhf_restore=0.01
)


def fit_rate(bits: int, failure_fraction: float,
             raw_fit_per_bit: float = RAW_FIT_PER_BIT) -> float:
    """SDC FIT (failures per billion hours) of a design."""
    if bits < 0:
        raise ValueError("bits must be non-negative")
    if not 0.0 <= failure_fraction <= 1.0:
        raise ValueError("failure_fraction must lie in [0, 1]")
    return bits * raw_fit_per_bit * failure_fraction


def mtbf_years(fit: float) -> float:
    """Mean time between failures in years for a FIT rate."""
    if fit <= 0:
        return float("inf")
    return 1e9 / fit / HOURS_PER_YEAR


def max_bits_within_goal(
    failure_fraction: float,
    goal_fit: float = MTBF_GOAL_FIT,
    raw_fit_per_bit: float = RAW_FIT_PER_BIT,
) -> float:
    """Largest design (bits) that still meets the FIT goal."""
    if failure_fraction <= 0:
        return float("inf")
    return goal_fit / (raw_fit_per_bit * failure_fraction)


def equivalent_design_factor(
    fractions: ConfigFailureFractions,
    config: str = "lhf+ReStore",
    reference: str = "baseline",
) -> float:
    """How much larger a protected design can be at equal FIT.

    The paper: "the lhf+ReStore configuration yields a MTBF comparable to a
    design 1/7th the size" — i.e. this factor is ~7 for lhf+ReStore.
    """
    protected = fractions.of(config)
    base = fractions.of(reference)
    if protected <= 0:
        return float("inf")
    return base / protected


def fit_scaling_table(
    fractions: ConfigFailureFractions,
    design_sizes: tuple[int, ...] = FIGURE8_DESIGN_SIZES,
    goal_fit: float = MTBF_GOAL_FIT,
) -> str:
    """Render Figure 8 as a table: FIT per configuration per design size."""
    rows = []
    for bits in design_sizes:
        row = [f"{bits:,}"]
        for config in CONFIG_NAMES:
            fit = fit_rate(bits, fractions.of(config))
            marker = " *" if fit > goal_fit else ""
            row.append(f"{fit:.2f}{marker}")
        rows.append(row)
    table = format_table(
        ["design bits"] + list(CONFIG_NAMES),
        rows,
        title=(
            "Figure 8: SDC FIT vs design size "
            f"(* exceeds the {goal_fit:.0f}-FIT / 1000-year-MTBF goal)"
        ),
    )
    return table
