"""Trial outcome records and the paper's category classification.

Architectural study (Figure 2 / Table 1), category precedence from the
paper — "a trial that fits in both the exception and cfv categories is
placed in the exception category", with lower (earlier-listed) categories
taking precedence::

    masked > exception > cfv > mem-addr > mem-data > register

Microarchitectural study (Figures 4-6 / Table 2)::

    masked, deadlock > exception > cfv > sdc, latent, other

A symptom only counts toward a window (checkpoint interval) L if it occurred
within L retired instructions of the injection; failing trials whose
symptoms all lie beyond L fall into the data-corruption categories for that
window. This is exactly how the paper's bars migrate as the x-axis latency
grows.
"""

from __future__ import annotations

from dataclasses import dataclass

ARCH_CATEGORIES = ("masked", "exception", "cfv", "mem-addr", "mem-data", "register")

ARCH_CATEGORY_DESCRIPTIONS = {
    "masked": "The injected fault was masked (did not cause failure)",
    "exception": "Instruction Set Architecture defined exception",
    "cfv": "Control flow violation - incorrect instruction executed",
    "mem-addr": "Address of a memory operation was affected",
    "mem-data": "A store instruction wrote incorrect data to memory",
    "register": "Only registers were corrupted",
}

UARCH_CATEGORIES = ("masked", "deadlock", "exception", "cfv", "sdc", "latent", "other")

UARCH_CATEGORY_DESCRIPTIONS = {
    "masked": "The fault was masked or overwritten",
    "deadlock": "Failure occurred in the form of a deadlock",
    "exception": "The fault propagated into an ISA defined exception",
    "cfv": "The fault caused a control flow violation",
    "sdc": "Register file or memory state corruption",
    "latent": "No failure detected yet, but fault still latent",
    "other": "Other - failure unlikely",
}


@dataclass(frozen=True)
class ArchTrialResult:
    """Outcome of one virtual-machine fault-injection trial.

    Latencies are retired instructions from injection to the first event of
    each kind, or ``None`` if the event never occurred.
    """

    workload: str
    inject_step: int
    bit: int
    exception_latency: int | None = None
    cfv_latency: int | None = None
    memaddr_latency: int | None = None
    memdata_latency: int | None = None
    failing: bool = False

    @property
    def masked(self) -> bool:
        return not self.failing


def classify_arch_trial(trial: ArchTrialResult, window: int | None) -> str:
    """Category of a trial when symptoms within ``window`` instructions count.

    ``window=None`` means an unbounded detection window ("inf" in Figure 2).
    """
    if trial.masked:
        return "masked"

    def within(latency: int | None) -> bool:
        if latency is None:
            return False
        return window is None or latency <= window

    if within(trial.exception_latency):
        return "exception"
    if within(trial.cfv_latency):
        return "cfv"
    if within(trial.memaddr_latency):
        return "mem-addr"
    if within(trial.memdata_latency):
        return "mem-data"
    return "register"


@dataclass(frozen=True)
class UarchTrialResult:
    """Outcome of one microarchitectural fault-injection trial.

    ``deadlock_latency`` / ``exception_latency`` / ``cfv_latency`` are
    retired instructions from injection to that symptom (or ``None``).
    ``cfv_detected_latency`` is the latency at which a ReStore-detectable
    control-flow symptom fired (a high-confidence branch misprediction);
    it is ``None`` when the JRS predictor did not flag the violation.
    ``arch_corrupt`` means architectural state differed from golden at trial
    end; ``uarch_latent`` means non-architectural state still differed;
    ``latent_arch_relevant`` distinguishes latent flips sitting in
    architecturally-relevant storage (counted as failures) from flips parked
    in failure-unlikely state (the paper's *other* category).
    ``protected`` marks trials whose flip landed on a parity/ECC-protected
    bit in the hardened-pipeline study and was corrected.
    ``inject_retired`` is the architectural position (retired-instruction
    count) at injection time; together with a symptom latency it pins down
    the symptom's architectural position, which telemetry uses to derive
    rollback distances. It defaults to 0 so journals written before the
    field existed still replay.
    """

    workload: str
    inject_cycle: int
    target: str
    state_class: str
    bit: int
    inject_retired: int = 0
    deadlock_latency: int | None = None
    exception_latency: int | None = None
    cfv_latency: int | None = None
    cfv_detected_latency: int | None = None
    arch_corrupt: bool = False
    uarch_latent: bool = False
    latent_arch_relevant: bool = False
    protected: bool = False
    # Memory-hierarchy detector firings (retired instructions from
    # injection to the detector's first trigger, or None). Present only in
    # campaigns configured with the corresponding detectors; journal
    # entries omit them when None so existing journals stay byte-identical.
    # They are detections, not failure modes, so `failing` ignores them.
    miss_spike_latency: int | None = None
    stall_outlier_latency: int | None = None
    spurious_memop_latency: int | None = None

    @property
    def failing(self) -> bool:
        if self.protected:
            return False
        return (
            self.deadlock_latency is not None
            or self.exception_latency is not None
            or self.cfv_latency is not None
            or self.arch_corrupt
            or (self.uarch_latent and self.latent_arch_relevant)
        )


def classify_uarch_trial(
    trial: UarchTrialResult,
    interval: int | None,
    require_confident_cfv: bool = False,
) -> str:
    """Category at a checkpoint interval.

    A symptom covers the trial only if it fired within ``interval`` retired
    instructions of the injection, so that rollback to the previous
    checkpoint predates the corruption. ``require_confident_cfv`` switches
    the cfv category from perfect control-flow-violation identification
    (Figure 4) to JRS-gated high-confidence mispredictions only (Figure 5);
    undetected violations then count as silent data corruption.
    """
    if not trial.failing:
        if trial.protected or not trial.uarch_latent:
            return "masked"
        return "other"

    def within(latency: int | None) -> bool:
        if latency is None:
            return False
        return interval is None or latency <= interval

    if trial.deadlock_latency is not None:
        # A deadlock is cleared by the pipeline flush itself ("can often be
        # recovered by flushing the pipeline"), so the watchdog symptom is
        # effective regardless of the checkpoint interval.
        return "deadlock"
    if within(trial.exception_latency):
        return "exception"
    cfv_latency = (
        trial.cfv_detected_latency if require_confident_cfv else trial.cfv_latency
    )
    if within(cfv_latency):
        return "cfv"
    if trial.arch_corrupt or trial.cfv_latency is not None:
        # Uncovered corruption (including control-flow divergence that the
        # detector missed or that fell outside the interval).
        return "sdc"
    if trial.exception_latency is not None:
        # The symptom exists but fired beyond the rollback window.
        return "sdc"
    return "latent"
