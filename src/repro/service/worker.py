"""Workers: the processes that actually run leased work units.

:func:`execute_unit` is the single entry point a worker of any kind
runs: rebuild the spec and unit, run the workload's stride slice under a
:class:`~repro.campaign.guard.TrialGuard`, and return a JSON-able result
(trial entries, skip reason, bit population, and this slice's telemetry
aggregate). It is a top-level function of picklable arguments so a
:class:`~concurrent.futures.ProcessPoolExecutor` can ship it across a
fork, and it takes/returns plain dicts so the same code serves the HTTP
worker protocol unchanged.

Two drivers wrap it:

- :class:`LocalWorkerPool` — asyncio tasks inside the ``repro serve``
  process, each looping lease → execute (in an executor, so the event
  loop keeps serving HTTP) → complete/fail, with a concurrent heartbeat
  keeping the lease alive for long units.
- :class:`RemoteWorker` — a standalone ``repro worker`` process that
  speaks the same protocol over HTTP through
  :class:`~repro.service.client.ServiceClient`, so a fleet on other
  machines can drain the queue. Heartbeats run on a daemon thread while
  the unit executes.

A finished trial is the most expensive thing a worker holds, so the
remote driver treats result delivery as a transaction against a hostile
network: a ``complete()`` whose retries are exhausted spools the result
to the on-disk :class:`WorkerOutbox` and replays it before the next
lease, heartbeats retry with backoff and only stop when the scheduler
says the lease is gone, and a *bounced* report (the scheduler refused it
because the lease expired — meaning the unit will run twice) is counted
in ``units_bounced`` and surfaced as a :class:`WorkerDeliveryWarning`
instead of vanishing. Failures inside ``execute_unit`` (beyond what the
guard already contains) still become ``fail`` reports, and the
scheduler's attempt accounting decides whether the unit is requeued or
dead-lettered.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor

from repro.campaign.guard import TrialGuard
from repro.campaign.outcomes import OUTCOME_OK
from repro.campaign.runner import _campaign_module
from repro.service.client import ServiceClientError
from repro.service.shard import WorkUnit
from repro.service.spec import JobSpec


class WorkerDeliveryWarning(UserWarning):
    """A unit report bounced or had to be spooled — work may repeat."""


def execute_unit(
    spec_dict: dict, unit_dict: dict, cache_dir: str | None = None
) -> dict:
    """Run one work unit and return its JSON-able result payload.

    ``cache_dir`` is a worker-deployment knob, not part of the job spec:
    pointing every worker of a fleet at one shared directory lets the
    first to reach a (workload, config) pay for its golden run and every
    other shard load it. The ``golden_cache`` field of the result is
    observability only — trial entries are bit-identical either way.
    """
    spec = JobSpec.from_dict(spec_dict)
    unit = WorkUnit.from_dict(unit_dict)
    module = _campaign_module(spec.level)
    guard = TrialGuard(timeout=spec.trial_timeout)
    cache = None
    if cache_dir is not None:
        from repro.cache import GoldenArtifactCache

        cache = GoldenArtifactCache(cache_dir)
    extra: dict = {}
    if spec.planner is not None:
        # Adaptive units execute exactly one planner round: round 0 is
        # derived from the golden trace (the worker reports the point
        # set and prescreen verdicts back as planner metadata), later
        # rounds run the explicit allocation the scheduler attached.
        extra.update(
            planner=spec.planner,
            planner_round=unit.round,
            allocation=unit.allocation,
        )
    outcome = module.run_workload_trials(
        spec.config, unit.workload, guard=guard, shard=unit.shard,
        cache=cache, **extra,
    )
    from repro.telemetry.metrics import aggregate_campaign

    metrics = aggregate_campaign(
        spec.level,
        [o.record for o in outcome.outcomes if o.status == OUTCOME_OK],
        extra_symptoms=tuple(getattr(spec.config, "detectors", ()) or ()),
    )
    result = {
        "outcomes": [o.to_entry() for o in outcome.outcomes],
        "skip_reason": outcome.skip_reason,
        "total_bits": outcome.total_bits,
        "metrics": metrics.to_entry(),
        "golden_cache": outcome.golden_cache,
    }
    if unit.round == 0 and outcome.planner_points is not None:
        result["planner_meta"] = {
            "points": list(outcome.planner_points),
            "prescreened": list(outcome.prescreened_points or ()),
        }
    return result


class WorkerOutbox:
    """A durable spool of completed-unit results awaiting delivery.

    One JSON file per undelivered result, written atomically (private
    temp file + ``os.replace``) so a worker killed mid-spool leaves
    either a complete record or nothing — the journal's torn-tail rule
    applied to the worker's side of the protocol. Replay walks the spool
    oldest-first; a retryable delivery error stops the walk (the service
    is unreachable — later files would fail too), a bounce or fatal
    rejection discards the file (the scheduler has authoritatively moved
    on). Files survive worker restarts: a new worker pointed at the same
    directory delivers its predecessor's results instead of letting the
    lease expire and the unit recompute.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, job_id: str, unit_id: str) -> str:
        tag = hashlib.sha256(f"{job_id}:{unit_id}".encode()).hexdigest()[:16]
        return os.path.join(self.directory, f"{job_id}-{tag}.json")

    def spool(
        self, job_id: str, unit_id: str, worker: str, result: dict
    ) -> str:
        record = {
            "job_id": job_id, "unit_id": unit_id, "worker": worker,
            "result": result,
        }
        path = self._path(job_id, unit_id)
        handle, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".spool-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as out:
                json.dump(record, out)
                out.flush()
                os.fsync(out.fileno())
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return path

    def pending(self) -> list[str]:
        """Spooled record paths, oldest first."""
        names = [
            name for name in os.listdir(self.directory)
            if name.endswith(".json")
        ]
        paths = [os.path.join(self.directory, name) for name in names]
        return sorted(paths, key=lambda p: (os.path.getmtime(p), p))

    def replay(self, client, chunk_size: int | None = None) -> tuple[int, int]:
        """Attempt to deliver every spooled result through ``client``.

        Returns ``(delivered, bounced)``. Stops early on a retryable
        error (the service is unreachable; the spool stays intact for
        the next attempt). With ``chunk_size`` set, replay streams each
        record in bounded chunks just like first-time delivery; records
        always hold the whole result, so a replay that follows a
        partially delivered stream simply re-sends chunks the trial
        store dedupes.
        """
        delivered = bounced = 0
        for path in self.pending():
            try:
                with open(path) as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                # A torn or unreadable record cannot be delivered, ever.
                warnings.warn(
                    f"outbox: discarding unreadable spool file {path}",
                    WorkerDeliveryWarning, stacklevel=2,
                )
                os.unlink(path)
                continue
            try:
                if chunk_size is not None:
                    accepted = client.complete_chunked(
                        record["job_id"], record["unit_id"],
                        record["worker"], record["result"], chunk_size,
                    )
                else:
                    accepted = client.complete(
                        record["job_id"], record["unit_id"],
                        record["worker"], record["result"],
                    )
            except ServiceClientError as exc:
                if exc.retryable:
                    break
                warnings.warn(
                    f"outbox: service rejected spooled result for "
                    f"{record['job_id']}/{record['unit_id']}: {exc}",
                    WorkerDeliveryWarning, stacklevel=2,
                )
                os.unlink(path)
                continue
            if accepted:
                delivered += 1
            else:
                bounced += 1
                warnings.warn(
                    f"outbox: spooled result for {record['job_id']}/"
                    f"{record['unit_id']} bounced (lease lost — the unit "
                    f"ran elsewhere)",
                    WorkerDeliveryWarning, stacklevel=2,
                )
            os.unlink(path)
        return delivered, bounced


class LocalWorkerPool:
    """In-process workers for ``repro serve``: asyncio loops over a pool.

    Each of the ``workers`` loops leases up to ``lease_batch`` units
    directly from the scheduler (no HTTP round trip for the built-in
    fleet) and pipelines the whole batch through ``executor`` — a
    process pool by default (``executor_kind="process"``), so trial
    execution parallelizes across cores while the event loop keeps
    serving HTTP; the golden-artifact cache at ``cache_dir`` is the
    fleet's shared warm store, so only the first process to reach a
    (workload, config) pays for its golden run. Completed units are
    reported as each finishes (no batch barrier), and the loop
    heartbeats every still-running lease at a third of the TTL. Reports
    the scheduler refuses (the lease expired under us) are counted in
    ``units_bounced`` — a bounced complete means the unit will execute
    twice, which operators should see.
    """

    def __init__(
        self,
        scheduler,
        workers: int = 1,
        *,
        executor: Executor | None = None,
        executor_kind: str = "process",
        lease_batch: int = 1,
        poll_interval: float = 0.2,
        cache_dir: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor_kind not in ("process", "thread"):
            raise ValueError(
                f"executor_kind must be 'process' or 'thread', "
                f"got {executor_kind!r}"
            )
        if lease_batch < 1:
            raise ValueError(f"lease_batch must be >= 1, got {lease_batch}")
        self.scheduler = scheduler
        self.workers = workers
        self.executor_kind = executor_kind
        self.lease_batch = lease_batch
        self.poll_interval = poll_interval
        self.cache_dir = cache_dir
        self._executor = executor
        self._owns_executor = executor is None
        self._tasks: list[asyncio.Task] = []
        self.units_done = 0
        self.units_failed = 0
        self.units_bounced = 0

    def start(self) -> None:
        if self._executor is None:
            if self.executor_kind == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._worker_loop(f"local-{index}"))
            for index in range(self.workers)
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _bounce(self, job_id: str, unit_id: str, kind: str) -> None:
        self.units_bounced += 1
        warnings.warn(
            f"{kind} report for {job_id}/{unit_id} bounced (lease "
            f"expired) — the unit may execute twice",
            WorkerDeliveryWarning, stacklevel=2,
        )

    async def _worker_loop(self, name: str) -> None:
        while True:
            leases = self.scheduler.lease_batch(name, self.lease_batch)
            if not leases:
                await asyncio.sleep(self.poll_interval)
                continue
            await self._run_batch(name, leases)

    async def _run_unit(self, name: str, lease: dict) -> None:
        """Run a single leased unit (batch of one)."""
        await self._run_batch(name, [lease])

    async def _run_batch(self, name: str, leases: list[dict]) -> None:
        """Pipeline a leased batch through the executor.

        All units are submitted at once so the pool stays saturated;
        each is completed or failed the moment its future resolves (no
        barrier — unit A's complete never waits on unit B's execution),
        and every still-pending lease is heartbeated between wakeups.
        """
        loop = asyncio.get_running_loop()
        pending: dict = {}
        interval = max(
            0.05,
            min(lease.get("lease_ttl", 60.0) for lease in leases) / 3,
        )
        for lease in leases:
            unit = lease["unit"]
            future = loop.run_in_executor(
                self._executor, execute_unit,
                lease["spec"], unit, self.cache_dir,
            )
            pending[future] = unit
        try:
            while pending:
                done, _ = await asyncio.wait(
                    set(pending), timeout=interval,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for future in done:
                    unit = pending.pop(future)
                    self._report(name, unit, future)
                for unit in pending.values():
                    self.scheduler.heartbeat(
                        unit["job_id"], unit["unit_id"], name
                    )
        except asyncio.CancelledError:
            for unit in pending.values():
                self.scheduler.fail(
                    unit["job_id"], unit["unit_id"], name, "worker shut down"
                )
            raise

    def _report(self, name: str, unit: dict, future) -> None:
        """Deliver one finished future's outcome to the scheduler."""
        job_id, unit_id = unit["job_id"], unit["unit_id"]
        try:
            result = future.result()
        except Exception as exc:
            self.units_failed += 1
            if not self.scheduler.fail(job_id, unit_id, name, repr(exc)):
                self._bounce(job_id, unit_id, "fail")
            return
        self.units_done += 1
        if not self.scheduler.complete(job_id, unit_id, name, result):
            self._bounce(job_id, unit_id, "complete")


class RemoteWorker:
    """A pull-based worker process speaking the HTTP lease protocol.

    With ``lease_batch`` > 1 the worker leases up to that many units per
    round trip (the scheduler grants them under one lease clock) and
    heartbeats the whole batch while draining it unit by unit; with
    ``complete_chunk`` set, each finished unit's results stream back in
    bounded chunks instead of one giant POST. Both knobs amortize the
    per-unit protocol cost that otherwise caps fleet scaling.

    Resilience posture (all counters are public attributes):

    - ``lease()`` failures (service unreachable, breaker open) back off
      for ``poll_interval`` and try again — a worker never dies because
      the scheduler restarted.
    - Heartbeats retry on any delivery error (``heartbeat_retries``) and
      stop only when the scheduler answers ``ok: false`` — a single
      transient error must not silently expire a live lease
      (``leases_lost`` counts genuine evictions).
    - A ``complete()`` that exhausts its retries spools the result to
      the :class:`WorkerOutbox` (``outbox_spooled``) and replays it
      before the next lease (``outbox_replayed``) — a finished trial is
      never recomputed because the network hiccuped.
    - Bounced reports (``units_bounced``) are warned about, since they
      mean duplicate execution somewhere in the fleet.
    """

    def __init__(
        self,
        client,
        name: str,
        *,
        poll_interval: float = 0.5,
        max_units: int | None = None,
        exit_when_idle: bool = False,
        cache_dir: str | None = None,
        outbox_dir: str | None = None,
        lease_batch: int = 1,
        complete_chunk: int | None = None,
    ):
        if lease_batch < 1:
            raise ValueError(f"lease_batch must be >= 1, got {lease_batch}")
        if complete_chunk is not None and complete_chunk < 1:
            raise ValueError(
                f"complete_chunk must be >= 1, got {complete_chunk}"
            )
        self.client = client
        self.name = name
        self.poll_interval = poll_interval
        self.max_units = max_units
        self.exit_when_idle = exit_when_idle
        self.cache_dir = cache_dir
        self.lease_batch = lease_batch
        self.complete_chunk = complete_chunk
        if outbox_dir is None:
            outbox_dir = tempfile.mkdtemp(prefix=f"repro-outbox-{name}-")
        self.outbox = WorkerOutbox(outbox_dir)
        self.units_done = 0
        self.units_failed = 0
        self.units_bounced = 0
        self.outbox_spooled = 0
        self.outbox_replayed = 0
        self.heartbeat_retries = 0
        self.leases_lost = 0
        self._stop = threading.Event()
        # Units whose results the service fatally rejected: we still hold
        # their lease, so the scheduler will re-issue them to us — but
        # re-executing yields the same rejected payload. Fail them
        # instead, so the attempt budget (and dead-letter backstop)
        # engages rather than a delivery livelock.
        self._rejected: set[tuple[str, str]] = set()

    def stop(self) -> None:
        self._stop.set()

    def counters(self) -> dict[str, int]:
        """The worker's resilience tallies, for logs and tests."""
        return {
            "units_done": self.units_done,
            "units_failed": self.units_failed,
            "units_bounced": self.units_bounced,
            "outbox_spooled": self.outbox_spooled,
            "outbox_replayed": self.outbox_replayed,
            "heartbeat_retries": self.heartbeat_retries,
            "leases_lost": self.leases_lost,
        }

    def run(self) -> int:
        """Drain the queue until stopped; returns units completed."""
        while not self._stop.is_set():
            outbox_pending = self._flush_outbox()
            if self.max_units is not None and (
                self.units_done + self.units_failed >= self.max_units
            ):
                break
            try:
                leases = self._lease()
            except ServiceClientError as exc:
                if not exc.retryable:
                    raise
                # Unreachable or breaker-open: the queue will come back.
                self._stop.wait(self.poll_interval)
                continue
            if not leases:
                if self.exit_when_idle and not outbox_pending:
                    break
                self._stop.wait(self.poll_interval)
                continue
            self._run_batch(leases)
        self._flush_outbox()
        return self.units_done

    def _lease(self) -> list[dict]:
        """Lease the next batch of work (one unit when unbatched)."""
        count = self.lease_batch
        if self.max_units is not None:
            count = min(
                count,
                max(1, self.max_units - self.units_done - self.units_failed),
            )
        if count > 1:
            return self.client.lease_batch(self.name, count)
        lease = self.client.lease(self.name)
        return [lease] if lease is not None else []

    def _fail_rejected(self, job_id: str, unit_id: str) -> None:
        """Surrender a re-issued lease whose results the service rejects."""
        self.units_failed += 1
        try:
            self.client.fail(
                job_id, unit_id, self.name,
                "results undeliverable (rejected by service)",
            )
        except ServiceClientError:
            self._stop.wait(self.poll_interval)

    def _flush_outbox(self) -> bool:
        """Replay spooled results; returns True if any remain spooled."""
        if not self.outbox.pending():
            return False
        try:
            delivered, bounced = self.outbox.replay(
                self.client, self.complete_chunk
            )
        except ServiceClientError:
            return True
        self.outbox_replayed += delivered
        self.units_bounced += bounced
        return bool(self.outbox.pending())

    def _run_unit(self, lease: dict) -> None:
        """Run one leased unit (the unbatched protocol: a batch of one)."""
        self._run_batch([lease])

    def _run_batch(self, leases: list[dict]) -> None:
        """Execute a leased batch, unit by unit, under one beat thread.

        Units execute sequentially (a remote worker is one process), but
        every lease in the batch is heartbeated concurrently so the
        units still queued behind the running one never expire. A unit
        whose lease the scheduler reports gone is skipped — it will run
        elsewhere — and each finished unit's results are delivered as it
        completes, not at a batch barrier.
        """
        lock = threading.Lock()
        held: dict[tuple[str, str], dict] = {}
        lost: set[tuple[str, str]] = set()
        for lease in leases:
            unit = lease["unit"]
            held[(unit["job_id"], unit["unit_id"])] = unit
        interval = max(
            0.05,
            min(float(lease.get("lease_ttl", 60.0)) for lease in leases) / 3,
        )
        beat_stop = threading.Event()

        def beat() -> None:
            # Retry forever on delivery errors (the client already
            # applies per-call backoff); only a definitive "ok: false"
            # from the scheduler — that lease is gone — drops a unit
            # from the heartbeat set (and from the work list).
            while not beat_stop.wait(interval):
                with lock:
                    targets = list(held)
                for job_id, unit_id in targets:
                    try:
                        alive = self.client.heartbeat(
                            job_id, unit_id, self.name
                        )
                    except ServiceClientError:
                        self.heartbeat_retries += 1
                        continue
                    if not alive:
                        self.leases_lost += 1
                        with lock:
                            held.pop((job_id, unit_id), None)
                            lost.add((job_id, unit_id))

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            for lease in leases:
                unit = lease["unit"]
                job_id, unit_id = unit["job_id"], unit["unit_id"]
                key = (job_id, unit_id)
                if self._stop.is_set():
                    # Surrender the rest of the batch so it requeues now
                    # instead of after a TTL of silence.
                    with lock:
                        if key in lost:
                            continue
                        held.pop(key, None)
                    try:
                        self.client.fail(
                            job_id, unit_id, self.name, "worker shut down"
                        )
                    except ServiceClientError:
                        pass  # the lease TTL will requeue the attempt
                    continue
                with lock:
                    if key in lost:
                        continue  # expired while queued; runs elsewhere
                if key in self._rejected:
                    with lock:
                        held.pop(key, None)
                    self._fail_rejected(job_id, unit_id)
                    continue
                try:
                    result = execute_unit(lease["spec"], unit, self.cache_dir)
                except Exception as exc:
                    with lock:
                        held.pop(key, None)
                    self.units_failed += 1
                    try:
                        if not self.client.fail(
                            job_id, unit_id, self.name, repr(exc)
                        ):
                            self.units_bounced += 1
                            warnings.warn(
                                f"fail report for {job_id}/{unit_id} bounced "
                                f"(lease expired) — the unit may execute "
                                f"twice",
                                WorkerDeliveryWarning, stacklevel=2,
                            )
                    except ServiceClientError:
                        pass  # the lease TTL will requeue the attempt
                    continue
                with lock:
                    held.pop(key, None)
                self.units_done += 1
                self._deliver(job_id, unit_id, result)
        finally:
            beat_stop.set()
            beater.join(timeout=1.0)

    def _deliver(self, job_id: str, unit_id: str, result: dict) -> None:
        """Report a completed unit, spooling the result if delivery fails.

        Delivery is chunked when ``complete_chunk`` is set; a stream
        that dies mid-chunk spools the *whole* result (never a torn
        suffix) — replay re-sends every chunk, and the ones that already
        landed dedupe on their trial keys.
        """
        try:
            if self.complete_chunk is not None:
                accepted = self.client.complete_chunked(
                    job_id, unit_id, self.name, result, self.complete_chunk
                )
            else:
                accepted = self.client.complete(
                    job_id, unit_id, self.name, result
                )
        except ServiceClientError as exc:
            if exc.retryable:
                self.outbox.spool(job_id, unit_id, self.name, result)
                self.outbox_spooled += 1
                warnings.warn(
                    f"complete for {job_id}/{unit_id} undeliverable "
                    f"({exc}); result spooled to {self.outbox.directory} "
                    f"for replay",
                    WorkerDeliveryWarning, stacklevel=2,
                )
                return
            self.units_bounced += 1
            self._rejected.add((job_id, unit_id))
            warnings.warn(
                f"service rejected result for {job_id}/{unit_id}: {exc}",
                WorkerDeliveryWarning, stacklevel=2,
            )
            return
        if not accepted:
            self.units_bounced += 1
            warnings.warn(
                f"complete report for {job_id}/{unit_id} bounced (lease "
                f"expired) — the unit may execute twice",
                WorkerDeliveryWarning, stacklevel=2,
            )
