#!/usr/bin/env python
"""A miniature fault-injection study, end to end.

Reproduces the paper's two campaigns at demo scale and prints the stacked
category figures (Figure 2 and Figures 4/5 style) plus the headline
coverage numbers. Scale it up with ``--trials``.

Run: ``python examples/fault_injection_study.py [--trials N]``
"""

import argparse

from repro.faults import (
    ARCH_CATEGORIES,
    ArchCampaignConfig,
    UARCH_CATEGORIES,
    UarchCampaignConfig,
    run_arch_campaign,
    run_uarch_campaign,
)
from repro.util.tables import render_stacked_bars


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=60,
                        help="trials per workload per campaign")
    parser.add_argument("--workloads", default="gcc,gzip,mcf",
                        help="comma-separated workload names")
    args = parser.parse_args()
    workloads = tuple(name.strip() for name in args.workloads.split(","))

    print("=== Architectural (virtual machine) campaign: Figure 2 ===")
    arch = run_arch_campaign(
        ArchCampaignConfig(
            trials_per_workload=args.trials,
            injection_points=max(8, args.trials // 3),
            workloads=workloads,
        )
    )
    bars = {
        str(window) if window else "inf": arch.fractions(window)
        for window in (25, 100, 1000, None)
    }
    print(render_stacked_bars(list(ARCH_CATEGORIES), bars,
                              title="outcome shares vs symptom latency"))
    print(f"masked: {arch.masked_estimate}")
    print(f"failure coverage @100 (exc+cfv): {arch.failure_coverage(100)}\n")

    print("=== Microarchitectural campaign: Figures 4 and 5 ===")
    uarch = run_uarch_campaign(
        UarchCampaignConfig(
            trials_per_workload=args.trials,
            injection_points=max(8, args.trials // 3),
            window_cycles=1500,
            workloads=workloads,
        )
    )
    bars = {}
    for interval in (25, 100, 1000):
        counter = uarch.counter(interval)
        bars[str(interval)] = {
            name: counter.proportion(name) for name in UARCH_CATEGORIES
        }
    print(render_stacked_bars(list(UARCH_CATEGORIES), bars, floor=0.5,
                              title="coverage vs checkpoint interval"))
    print(f"benign (masked+other): {uarch.masked_estimate()}")
    print(f"baseline failures:     {uarch.baseline_failure_estimate()}")
    print(f"coverage @100 (perfect cfv): {uarch.coverage_of_failures(100)}")
    print(f"coverage @100 (JRS-gated):   "
          f"{uarch.coverage_of_failures(100, require_confident_cfv=True)}")
    print(f"injectable state: {uarch.total_bits:,} bits "
          "(paper's model: ~46,000)")


if __name__ == "__main__":
    main()
