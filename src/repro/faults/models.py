"""Fault models.

The paper uses two:

- For the virtual-machine study: "a single bit flip in the result of a
  randomly chosen instruction", with a variant restricted to the bottom
  32 bits of each 64-bit result (Section 3.1's second campaign).
- For the microarchitectural study: "a single bit flip of a state element",
  targeting latches and RAM cells, excluding caches and predictor tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class ArchResultBitFlip:
    """Flip one bit of a randomly chosen instruction's register result.

    ``low32_only`` restricts flips to the bottom 32 bits, modelling the
    paper's investigation of machines with smaller virtual address spaces.
    """

    low32_only: bool = False

    def choose_bit(self, rng: DeterministicRng) -> int:
        return rng.randrange(32 if self.low32_only else 64)


@dataclass(frozen=True)
class StateBitFlip:
    """Flip one bit of a randomly chosen microarchitectural state element.

    ``target_classes`` optionally restricts injection to a subset of state
    classes (e.g. only ``latch`` for the Section 5.1.2 study); ``None``
    targets all eligible state.
    """

    target_classes: tuple[str, ...] | None = None

    def targets(self, registry) -> list:
        """Eligible fields of a :class:`~repro.uarch.latches.StateRegistry`."""
        fields = registry.injectable_fields()
        if self.target_classes is None:
            return fields
        allowed = set(self.target_classes)
        return [field for field in fields if field.state_class in allowed]
