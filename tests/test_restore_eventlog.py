"""Branch outcome log and load value queue."""

from repro.restore.eventlog import BranchOutcomeLog, LoadValueQueue


class TestRecording:
    def test_record_and_lookup(self):
        log = BranchOutcomeLog()
        log.record(10, 0x100, True)
        assert log.outcome_at(10) == (0x100, True)
        assert log.outcome_at(11) is None

    def test_overwrite_same_position(self):
        log = BranchOutcomeLog()
        log.record(10, 0x100, True)
        log.record(10, 0x100, False)
        assert log.outcome_at(10) == (0x100, False)
        assert len(log) == 1

    def test_capacity_evicts_oldest(self):
        log = BranchOutcomeLog(capacity=3)
        for position in range(5):
            log.record(position, 0x100, True)
        assert log.outcome_at(0) is None
        assert log.outcome_at(4) is not None

    def test_prune_before(self):
        log = BranchOutcomeLog()
        for position in range(10):
            log.record(position, 0x100, True)
        log.prune_before(7)
        assert log.outcome_at(6) is None
        assert log.outcome_at(7) is not None
        assert len(log) == 3


class TestReplayOracle:
    def build_replaying_log(self):
        log = BranchOutcomeLog()
        outcomes = [(100, 0x10, True), (101, 0x20, False), (102, 0x10, False)]
        for position, pc, taken in outcomes:
            log.record(position, pc, taken)
        log.begin_replay(from_position=100)
        return log

    def test_predict_per_pc_in_order(self):
        log = self.build_replaying_log()
        assert log.predict(0x10) is True
        assert log.predict(0x10) is False
        assert log.predict(0x10) is None  # exhausted
        assert log.predict(0x20) is False

    def test_unknown_pc_gives_no_hint(self):
        log = self.build_replaying_log()
        assert log.predict(0x999) is None

    def test_flush_rewinds_unretired_peeks(self):
        log = self.build_replaying_log()
        assert log.predict(0x10) is True   # fetched speculatively
        log.on_flush()                      # squashed before retiring
        assert log.predict(0x10) is True   # must replay the same outcome

    def test_retire_consumes(self):
        log = self.build_replaying_log()
        assert log.predict(0x10) is True
        log.on_retire(0x10)
        log.on_flush()
        assert log.predict(0x10) is False  # first occurrence is consumed

    def test_not_replaying_gives_no_hints(self):
        log = BranchOutcomeLog()
        log.record(0, 0x10, True)
        assert log.predict(0x10) is None

    def test_end_replay(self):
        log = self.build_replaying_log()
        log.end_replay()
        assert not log.replaying
        assert log.predict(0x10) is None

    def test_begin_replay_filters_older_positions(self):
        log = BranchOutcomeLog()
        log.record(5, 0x10, True)
        log.record(100, 0x10, False)
        log.begin_replay(from_position=50)
        assert log.predict(0x10) is False


class TestLoadValueQueue:
    def test_record_and_compare(self):
        lvq = LoadValueQueue()
        lvq.record(3, 0x1000, 42)
        assert lvq.entry_at(3) == (0x1000, 42)
        assert lvq.entry_at(4) is None

    def test_capacity(self):
        lvq = LoadValueQueue(capacity=2)
        for position in range(4):
            lvq.record(position, position, position)
        assert lvq.entry_at(0) is None
        assert lvq.entry_at(3) is not None

    def test_prune(self):
        lvq = LoadValueQueue()
        for position in range(6):
            lvq.record(position, 0, 0)
        lvq.prune_before(4)
        assert len(lvq) == 2


class TestConstantTimeEviction:
    """Eviction/pruning must be O(1) deque operations, not list.pop(0)."""

    def test_order_structures_are_deques(self):
        from collections import deque

        assert isinstance(BranchOutcomeLog()._order, deque)
        assert isinstance(LoadValueQueue()._order, deque)

    def test_branch_log_eviction_behaviour_preserved(self):
        log = BranchOutcomeLog(capacity=4)
        for position in range(10):
            log.record(position, 0x100 + position, position % 2 == 0)
        assert len(log) == 4
        assert log.outcome_at(5) is None
        for position in range(6, 10):
            assert log.outcome_at(position) == (0x100 + position,
                                                position % 2 == 0)

    def test_branch_log_reexec_rerecording_does_not_grow_order(self):
        log = BranchOutcomeLog(capacity=8)
        for position in range(5):
            log.record(position, 0x100, True)
        # Re-execution re-records the same positions with fresh outcomes.
        for position in range(5):
            log.record(position, 0x100, False)
        assert len(log) == 5
        assert log.outcome_at(3) == (0x100, False)

    def test_lvq_eviction_and_prune_behaviour_preserved(self):
        lvq = LoadValueQueue(capacity=3)
        for position in range(6):
            lvq.record(position, position * 8, position * 100)
        assert len(lvq) == 3
        assert lvq.entry_at(2) is None
        assert lvq.entry_at(5) == (40, 500)
        lvq.prune_before(5)
        assert len(lvq) == 1
        assert lvq.entry_at(4) is None

    def test_interleaved_prune_and_record(self):
        log = BranchOutcomeLog()
        for position in range(0, 100, 2):
            log.record(position, position, True)
        log.prune_before(50)
        assert len(log) == 25
        log.record(100, 100, False)
        log.prune_before(98)
        assert log.outcome_at(98) == (98, True)
        assert log.outcome_at(100) == (100, False)
        assert len(log) == 2
