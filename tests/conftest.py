"""Shared fixtures: workloads and golden runs are built once per session."""

from __future__ import annotations

import pytest

from repro.arch import load_program
from repro.uarch import load_pipeline
from repro.workloads import WORKLOAD_NAMES, build_workload


@pytest.fixture(scope="session")
def bundles():
    """All seven workload bundles (built once)."""
    return {name: build_workload(name) for name in WORKLOAD_NAMES}


@pytest.fixture(scope="session")
def gcc_bundle(bundles):
    return bundles["gcc"]


@pytest.fixture(scope="session")
def arch_traces(bundles):
    """Golden architectural traces for every workload."""
    traces = {}
    for name, bundle in bundles.items():
        simulator = load_program(bundle.program)
        traces[name] = simulator.run_with_trace(400_000)
    return traces


@pytest.fixture(scope="session")
def pipeline_runs(bundles):
    """Completed golden pipeline runs (collecting retired logs)."""
    runs = {}
    for name, bundle in bundles.items():
        pipeline = load_pipeline(bundle.program, collect_retired=True)
        pipeline.run(600_000)
        runs[name] = pipeline
    return runs


def assemble_and_run(source: str, max_instructions: int = 10_000):
    """Helper: assemble, run on the architectural simulator, return it."""
    from repro.isa import assemble

    program = assemble(source, "test")
    simulator = load_program(program)
    simulator.run(max_instructions)
    return simulator, program
