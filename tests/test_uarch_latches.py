"""State registry: registration, sampling, snapshots."""

import pytest
from hypothesis import given, strategies as st

from repro.uarch.latches import LATCH_CLASSES, StateRegistry
from repro.util.rng import DeterministicRng


def build_registry():
    registry = StateRegistry()
    storage_a = [0] * 4
    storage_b = [0] * 2
    registry.register_list("alpha", "ram", "alpha.v", storage_a, 8)
    registry.register_list("beta", "ctrl", "beta.v", storage_b, 3)
    return registry, storage_a, storage_b


class TestRegistration:
    def test_field_counts_and_bits(self):
        registry, _, _ = build_registry()
        assert len(registry.fields) == 6
        assert registry.total_bits() == 4 * 8 + 2 * 3
        assert registry.total_bits(("ctrl",)) == 6

    def test_bits_by_structure(self):
        registry, _, _ = build_registry()
        assert registry.bits_by_structure() == {"alpha": 32, "beta": 6}

    def test_width_validation(self):
        registry = StateRegistry()
        with pytest.raises(ValueError):
            registry.register("x", "s", "ram", 0, lambda: 0, lambda v: None)

    def test_state_class_validation(self):
        registry = StateRegistry()
        with pytest.raises(ValueError):
            registry.register("x", "s", "bogus", 1, lambda: 0, lambda v: None)

    def test_latch_classes(self):
        assert set(LATCH_CLASSES) == {"ctrl", "data"}


class TestAccessors:
    def test_setter_masks_to_width(self):
        registry, storage, _ = build_registry()
        registry.fields[0].set(0x1FF)
        assert storage[0] == 0xFF

    def test_flip_changes_storage(self):
        registry, storage, _ = build_registry()
        registry.fields[1].flip(3)
        assert storage[1] == 8
        registry.fields[1].flip(3)
        assert storage[1] == 0

    def test_flip_validates_bit(self):
        registry, _, _ = build_registry()
        with pytest.raises(ValueError):
            registry.fields[0].flip(8)

    def test_fields_of_classes(self):
        registry, _, _ = build_registry()
        assert len(registry.fields_of_classes(("ram",))) == 4
        assert len(registry.fields_of_classes(("ram", "ctrl"))) == 6


class TestSampling:
    def test_pick_bit_uniform_over_bits(self):
        registry, _, _ = build_registry()
        rng = DeterministicRng(42)
        counts = {"alpha": 0, "beta": 0}
        for _ in range(3000):
            field, bit = registry.pick_bit(rng)
            counts[field.structure] += 1
            assert 0 <= bit < field.width
        # alpha has 32 of 38 bits ~ 84%.
        fraction = counts["alpha"] / 3000
        assert 0.78 < fraction < 0.90

    def test_pick_bit_with_class_filter(self):
        registry, _, _ = build_registry()
        rng = DeterministicRng(1)
        for _ in range(50):
            field, _ = registry.pick_bit(rng, classes=("ctrl",))
            assert field.state_class == "ctrl"

    def test_pick_bit_empty_filter(self):
        registry, _, _ = build_registry()
        with pytest.raises(ValueError):
            registry.pick_bit(DeterministicRng(1), classes=("data",))


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        registry, storage_a, storage_b = build_registry()
        storage_a[2] = 17
        storage_b[0] = 5
        snapshot = registry.snapshot()
        storage_a[2] = 0
        storage_b[0] = 0
        registry.restore(snapshot)
        assert storage_a[2] == 17 and storage_b[0] == 5

    def test_diff_indices(self):
        registry, storage_a, _ = build_registry()
        before = registry.snapshot()
        storage_a[1] = 9
        after = registry.snapshot()
        assert registry.diff_indices(before, after) == [1]

    def test_diff_validates_length(self):
        registry, _, _ = build_registry()
        with pytest.raises(ValueError):
            registry.diff_indices([0], registry.snapshot())

    @given(st.integers(0, 3), st.integers(0, 7))
    def test_flip_shows_in_diff(self, index, bit):
        registry, _, _ = build_registry()
        before = registry.snapshot()
        registry.fields[index].flip(bit)
        diff = registry.diff_indices(before, registry.snapshot())
        assert diff == [index]
