"""The chaos harness: seeded fault injection for the service's own stack.

ReStore's methodology — inject faults, detect symptoms, recover to a
checkpoint, verify the output is still bit-exact — applies to our own
fleet as much as to the simulated pipeline. This module is the
injection half of that discipline turned on the campaign service: a
transport shim that drops, delays, duplicates, truncates, and
connection-resets HTTP exchanges on a **seeded, replayable schedule**,
plus a driver that hard-kills real worker processes. The recovery half
(client retries, worker outbox, lease expiry, dead-letter requeue) is
asserted by the chaos end-to-end tests: under any such schedule the
finalized journal must stay byte-identical to a serial run.

Determinism model: each chaos decision is drawn from a
:class:`~repro.util.rng.DeterministicRng` stream keyed by the plan seed
and a global request counter. The *schedule* (which request number
suffers which fault) is therefore a pure function of the seed; with
concurrent workers the assignment of requests to workers varies with
thread timing, but the fault mix, fault count, and — by the service's
serial-equivalence invariant — the final journal do not. ``max_faults``
bounds the total injections so every retry/requeue loop provably
converges.

Fault semantics (one fault at most per exchange, drawn first):

- ``drop``      the request never reaches the service → ``TransportError``.
- ``reset``     the request reaches the service and takes effect, but the
  response is lost → ``TransportError``. The nastiest case: it forces
  idempotent redelivery (duplicate complete, stranded lease).
- ``duplicate`` the request is delivered twice (a retransmit the service
  sees as two calls); the second response is returned.
- ``truncate``  the response body is cut in half → the client sees a
  malformed payload and must classify it as retryable corruption.
- ``delay``     the exchange is held for a bounded time first (can stack
  with a clean delivery; exercises timeout/heartbeat margins).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from repro.service.client import TransportError, UrllibTransport
from repro.util.rng import DeterministicRng, derive_seed

#: Fault kinds in the order the schedule draws them.
FAULT_KINDS = ("drop", "reset", "duplicate", "truncate")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded description of how hostile the network should be.

    Rates are per-exchange probabilities; ``drop + reset + duplicate +
    truncate`` must stay <= 1 (they are mutually exclusive per exchange).
    ``delay_rate`` is drawn independently and can accompany a clean
    delivery. ``max_faults`` (None = unbounded) is the total injection
    budget across all fault kinds — after it is spent the transport is
    clean, which makes "the job eventually finishes" a theorem instead
    of a probability.
    """

    seed: int = 2005
    drop: float = 0.05
    reset: float = 0.05
    duplicate: float = 0.05
    truncate: float = 0.05
    delay_rate: float = 0.05
    max_delay: float = 0.05
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for name in ("drop", "reset", "duplicate", "truncate", "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = self.drop + self.reset + self.duplicate + self.truncate
        if total > 1.0:
            raise ValueError(
                f"drop+reset+duplicate+truncate must be <= 1, got {total}"
            )
        if self.max_delay < 0:
            raise ValueError(
                f"max_delay must be non-negative, got {self.max_delay}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(
                f"max_faults must be non-negative, got {self.max_faults}"
            )

    @classmethod
    def uniform(
        cls, seed: int, rate: float, *,
        max_delay: float = 0.05, max_faults: int | None = None,
    ) -> "ChaosPlan":
        """The CLI's one-knob plan: the same rate for every fault kind."""
        return cls(
            seed=seed, drop=rate, reset=rate, duplicate=rate, truncate=rate,
            delay_rate=rate, max_delay=max_delay, max_faults=max_faults,
        )


class ChaosTransport:
    """A fault-injecting wrapper around a real client transport.

    Thread-safe: the draw sequence is serialized under a lock so the
    schedule stays a pure function of the plan seed. ``counters`` tallies
    injected faults by kind for test assertions and post-mortems.
    """

    def __init__(self, plan: ChaosPlan, inner=None, *, sleep=time.sleep):
        self.plan = plan
        self.inner = inner if inner is not None else UrllibTransport()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rng = DeterministicRng(derive_seed(plan.seed, "chaos-transport"))
        self.exchanges = 0
        self.counters = {kind: 0 for kind in FAULT_KINDS}
        self.counters["delay"] = 0

    def _draw(self) -> tuple[str | None, float]:
        """The (fault, delay) decision for the next exchange."""
        with self._lock:
            self.exchanges += 1
            fault_budget_left = (
                self.plan.max_faults is None
                or sum(self.counters.values()) < self.plan.max_faults
            )
            roll = self._rng.random()
            delay_roll = self._rng.random()
            delay_span = self._rng.random()
            if not fault_budget_left:
                return None, 0.0
            fault = None
            edge = 0.0
            for kind in FAULT_KINDS:
                edge += getattr(self.plan, kind)
                if roll < edge:
                    fault = kind
                    break
            delay = 0.0
            if delay_roll < self.plan.delay_rate:
                delay = delay_span * self.plan.max_delay
            if fault is not None:
                self.counters[fault] += 1
            if delay > 0.0:
                self.counters["delay"] += 1
            return fault, delay

    def send(
        self, method: str, url: str, data: bytes | None,
        headers: dict, timeout: float,
    ) -> tuple[int, bytes]:
        fault, delay = self._draw()
        if delay > 0.0:
            self._sleep(delay)
        if fault == "drop":
            raise TransportError("chaos: request dropped before delivery")
        status, body = self.inner.send(method, url, data, headers, timeout)
        if fault == "reset":
            # The service processed the request; the client never learns.
            raise TransportError("chaos: connection reset before response")
        if fault == "duplicate":
            status, body = self.inner.send(method, url, data, headers, timeout)
        if fault == "truncate":
            body = body[: len(body) // 2]
        return status, body

    def faults_injected(self) -> int:
        return sum(self.counters.values())


class WorkerProcess:
    """A real ``repro worker`` OS process the chaos tests can kill -9.

    Thread- or monkeypatch-level "kills" cannot model a worker death
    faithfully — a SIGKILLed process stops heartbeating *and* never
    reports, which is exactly the case the lease TTL exists for. This
    driver spawns the stock CLI worker as a subprocess (PYTHONPATH
    pointed at this checkout) so tests and the CI chaos job can murder
    it mid-unit and assert the scheduler requeues its lease.
    """

    def __init__(
        self, url: str, name: str, *, extra_args: tuple[str, ...] = (),
        poll_interval: float = 0.05,
    ):
        self.url = url
        self.name = name
        self.extra_args = tuple(extra_args)
        self.poll_interval = poll_interval
        self.process: subprocess.Popen | None = None

    def start(self) -> "WorkerProcess":
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--url", self.url, "--name", self.name,
                "--poll", str(self.poll_interval), *self.extra_args,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        return self

    def kill(self) -> None:
        """SIGKILL — no goodbye fail report, no final heartbeat."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10)

    def wait(self, timeout: float | None = None) -> int | None:
        if self.process is None:
            return None
        return self.process.wait(timeout=timeout)

    def __enter__(self) -> "WorkerProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.kill()
