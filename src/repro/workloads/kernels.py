"""The seven SPEC2000int-like kernels.

Each generator builds an assembly program whose dominant behaviour mirrors
one of the paper's benchmarks, assembles it, computes the expected outputs
with an independent Python model of the same algorithm, and returns a
:class:`~repro.workloads.registry.WorkloadBundle`.

Besides the algorithmic skeleton, the kernels deliberately include the
structures responsible for the high (~59%) software-level fault masking the
paper measures in real SPEC code:

- *32-bit data*: SPECint data is dominated by C ``int``s, so counters,
  indices, and table entries here live in ``.long`` cells accessed with
  ``ldl``/``stl`` and combined with ``addl``/``subl``/``mull``; corruption in
  the upper 32 bits of a 64-bit register dies at the next truncating use;
- *dead and transitively-dead values*: per-iteration scratch computations
  that are overwritten every iteration and consumed only on rare paths;
- *masked consumers*: hash and index values narrowed with ``and`` before
  use, so high-bit corruption never escapes.

Pointers remain full 64-bit values, which is why corrupted pointers still
sail off into the (mostly unmapped) virtual address space and raise
memory-access exceptions — the paper's dominant symptom.

All kernels follow the same conventions: inputs live in the data segment
(generated from the seed), results are stored to the ``out`` symbol (and
sometimes ``out2``) before ``halt``.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.util.bitops import MASK64, sign_extend
from repro.util.rng import DeterministicRng
from repro.workloads.registry import WorkloadBundle, workload


def _byte_lines(label: str, data: list[int]) -> str:
    """Emit a labelled ``.byte`` block, 16 values per line."""
    lines = [f"{label}:"]
    for start in range(0, len(data), 16):
        chunk = ", ".join(str(value & 0xFF) for value in data[start:start + 16])
        lines.append(f"        .byte {chunk}")
    return "\n".join(lines)


def _quad_lines(label: str, values: list[object]) -> str:
    """Emit a labelled ``.quad`` block, 4 values per line."""
    lines = [f"{label}:"]
    for start in range(0, len(values), 4):
        chunk = ", ".join(str(value) for value in values[start:start + 4])
        lines.append(f"        .quad {chunk}")
    return "\n".join(lines)


def _long_lines(label: str, values: list[int]) -> str:
    """Emit a labelled ``.long`` block, 8 values per line."""
    lines = [f"{label}:"]
    for start in range(0, len(values), 8):
        chunk = ", ".join(str(value) for value in values[start:start + 8])
        lines.append(f"        .long {chunk}")
    return "\n".join(lines)


# --------------------------------------------------------------------- gzip


@workload("gzip")
def generate_gzip(scale: int, seed: int) -> WorkloadBundle:
    """LZ77-style hashing: rolling hash, hash-table probe, match counting.

    Mirrors gzip's deflate inner loop: for each input byte, update a rolling
    hash, look up the previous position with that hash (a 32-bit position
    table, as in deflate), compare bytes, and record the current position.
    """
    rng = DeterministicRng(seed).child("gzip")
    count = 320 * scale
    data = [rng.randint(0, 63) for _ in range(count)]

    source = f"""
.text
start:  la      r1, input
        mov     r1, r13         # input base for match addressing
        li      r2, {count}
        la      r3, htab
        clr     r4              # rolling hash
        clr     r5              # match count
        clr     r19             # position counter
loop:   ldbu    r6, 0(r1)
        addl    r19, 1, r19
        sll     r4, 5, r7
        xor     r7, r6, r4
        and     r4, 255, r4
        mull    r6, 167, r15    # bookkeeping mix, used only on rare path
        xor     r6, r4, r27     # profiling scratch, overwritten every pass
        srl     r6, 4, r17      # symbol-class histogram: only 2 bits live
        and     r17, 3, r17
        addl    r18, r17, r18
        sll     r4, 2, r8
        addq    r3, r8, r8
        ldl     r9, 0(r8)       # previous position with this hash
        stl     r19, 0(r8)
        beq     r9, nomatch
        addq    r13, r9, r10    # &input[prev]  (positions are 1-based)
        ldbu    r10, -1(r10)
        cmpeq   r10, r6, r11
        addl    r5, r11, r5
nomatch:
        xor     r6, 42, r11     # rare path: "literal emit" bookkeeping
        bne     r11, norare
        addl    r5, r15, r5
norare: lda     r1, 1(r1)
        subl    r2, 1, r2
        bne     r2, loop
        la      r12, out
        stq     r5, 0(r12)
        la      r12, out2
        stq     r18, 0(r12)
        la      r3, htab        # reset the window table for the next block
        li      r2, 256
htz:    stl     zero, 0(r3)
        lda     r3, 4(r3)
        subl    r2, 1, r2
        bne     r2, htz
        halt
.data
{_byte_lines("input", data)}
        .align  8
htab:   .space  1024
out:    .quad   0
out2:   .quad   0
"""
    table = [0] * 256
    hash_value = 0
    result = 0
    histogram = 0
    for index, byte in enumerate(data):
        hash_value = ((hash_value << 5) ^ byte) & 0xFF
        histogram += (byte >> 4) & 3
        previous = table[hash_value]
        table[hash_value] = index + 1  # 1-based position
        if previous and data[previous - 1] == byte:
            result += 1
        if byte == 42:
            result += byte * 167
    program = assemble(source, "gzip")
    return WorkloadBundle(
        "gzip", program, {"out": result & MASK64, "out2": histogram & MASK64}
    )


# -------------------------------------------------------------------- bzip2


@workload("bzip2")
def generate_bzip2(scale: int, seed: int) -> WorkloadBundle:
    """Move-to-front coding: linear scan, block shift, index accumulation.

    Mirrors bzip2's MTF stage: branchy scans over a small 32-bit table plus
    a data-movement loop — heavy in short loops and data-dependent branches.
    """
    rng = DeterministicRng(seed).child("bzip2")
    count = 100 * scale
    alphabet = 32
    # Exponentially skewed symbols, as MTF inputs are after a BWT.
    data = [min(alphabet - 1, int(alphabet * rng.random() ** 2))
            for _ in range(count)]

    source = f"""
.text
start:  la      r1, input
        li      r2, {count}
        la      r20, table
        clr     r12             # accumulated indices
outer:  ldbu    r5, 0(r1)
        clr     r6              # scan index j
        mov     r20, r7
        mull    r5, 13, r27     # rank-statistics scratch, dead most passes
scan:   ldl     r8, 0(r7)
        xor     r8, r5, r9
        beq     r9, found
        lda     r7, 4(r7)
        addl    r6, 1, r6
        br      scan
found:  and     r6, 31, r11
        addl    r12, r11, r12
        xor     r6, 31, r9      # rare path: worst-case scan bookkeeping
        bne     r9, shift
        addl    r12, r27, r12
shift:  cmpult  r20, r7, r9
        beq     r9, shiftdone
        ldl     r10, -4(r7)
        stl     r10, 0(r7)
        lda     r7, -4(r7)
        br      shift
shiftdone:
        stl     r5, 0(r20)
        lda     r1, 1(r1)
        subl    r2, 1, r2
        bne     r2, outer
        la      r13, out
        stq     r12, 0(r13)
        mov     r20, r7         # reset the MTF table for the next block
        clr     r6
mtz:    stl     r6, 0(r7)
        lda     r7, 4(r7)
        addl    r6, 1, r6
        xor     r6, 32, r9
        bne     r9, mtz
        halt
.data
{_byte_lines("input", data)}
        .align  8
{_long_lines("table", list(range(alphabet)))}
out:    .quad   0
"""
    table = list(range(alphabet))
    accumulated = 0
    for symbol in data:
        index = table.index(symbol)
        accumulated += index & 31
        if index == 31:
            accumulated += symbol * 13
        del table[index]
        table.insert(0, symbol)
    program = assemble(source, "bzip2")
    return WorkloadBundle("bzip2", program, {"out": accumulated & MASK64})


# ---------------------------------------------------------------------- mcf


@workload("mcf")
def generate_mcf(scale: int, seed: int) -> WorkloadBundle:
    """Pointer chasing over a linked node list with field updates.

    Mirrors mcf's network-simplex behaviour: loads of ``next`` pointers
    dominate, so corrupted pointers dereference wild addresses — the
    paper's canonical source of memory-access-fault symptoms. Node payload
    fields (cost, flow) are 32-bit ints, as in mcf's structs.
    """
    rng = DeterministicRng(seed).child("mcf")
    nodes = 120
    rounds = 4 * scale
    order = list(range(nodes))
    rng.shuffle(order)
    costs = [rng.randint(1, 1000) for _ in range(nodes)]

    # Node layout: next pointer (8 bytes), cost (4), flow (4) = 16 bytes.
    next_address = ["0"] * nodes
    for position in range(nodes - 1):
        successor = order[position + 1]
        next_address[order[position]] = f"nodes+{16 * successor}"
    node_quads: list[object] = []
    for index in range(nodes):
        packed_payload = costs[index]  # low long = cost, high long = flow(0)
        node_quads.extend([next_address[index], packed_payload])

    head_offset = 16 * order[0]
    source = f"""
.text
start:  li      r14, {rounds}
        clr     r16             # rare-path accumulator
outer:  la      r1, nodes+{head_offset}
        clr     r2              # accumulated cost
chase:  ldl     r3, 8(r1)       # cost
        addl    r2, r3, r2
        stl     r2, 12(r1)      # flow field
        and     r3, 7, r15      # residual-class scratch
        xor     r15, 7, r27     # pricing heuristic, rarely triggers
        bne     r27, advance
        addl    r16, r15, r16
advance:
        ldq     r1, 0(r1)       # next pointer
        bne     r1, chase
        la      r4, out
        ldl     r5, 0(r4)
        addl    r5, r2, r5
        stl     r5, 0(r4)
        subl    r14, 1, r14
        bne     r14, outer
        la      r6, out2
        stq     r16, 0(r6)
        la      r1, nodes       # reset flow fields for the next iteration
        li      r2, {nodes}
ftz:    stl     zero, 12(r1)
        lda     r1, 16(r1)
        subl    r2, 1, r2
        bne     r2, ftz
        halt
.data
{_quad_lines("nodes", node_quads)}
out:    .quad   0
out2:   .quad   0
"""
    chain_total = sum(costs[node] for node in order)
    rare = sum(7 for node in order if costs[node] & 7 == 7) * rounds
    program = assemble(source, "mcf")
    return WorkloadBundle(
        "mcf",
        program,
        {"out": (rounds * chain_total) & MASK64, "out2": rare & MASK64},
    )


# ---------------------------------------------------------------------- gcc


@workload("gcc")
def generate_gcc(scale: int, seed: int) -> WorkloadBundle:
    """Table-driven state machine over a token stream.

    Mirrors compiler front-end behaviour: indexed loads from a 32-bit
    transition table, per-state counters, and a mixing checksum — indirect,
    table-dependent control of data flow.
    """
    rng = DeterministicRng(seed).child("gcc")
    count = 350 * scale
    states = 8
    inputs = 4
    tokens = [rng.randint(0, inputs - 1) for _ in range(count)]
    transitions = [rng.randint(0, states - 1) for _ in range(states * inputs)]

    source = f"""
.text
start:  la      r1, tokens
        li      r2, {count}
        la      r3, ttab
        la      r4, counts
        clr     r5              # state
loop:   ldbu    r6, 0(r1)
        sll     r5, 2, r7
        addq    r7, r6, r7
        sll     r7, 2, r7
        addq    r3, r7, r7
        ldl     r5, 0(r7)
        and     r5, 7, r5       # defensive bound, as table code does
        xor     r5, r6, r27     # diagnostics scratch, dead
        mull    r27, 5, r27     # diagnostics mix, still dead
        and     r5, 1, r17      # parity-of-state statistic: 1 live bit
        addl    r18, r17, r18
        sll     r5, 2, r8
        addq    r4, r8, r8
        ldl     r9, 0(r8)
        addl    r9, 1, r9
        stl     r9, 0(r8)
        lda     r1, 1(r1)
        subl    r2, 1, r2
        bne     r2, loop
        la      r15, out2
        stq     r18, 0(r15)
        clr     r10             # checksum
        li      r11, {states}
        mov     r4, r12
csum:   ldl     r13, 0(r12)
        addl    r10, r13, r10
        mull    r10, 3, r10
        stl     zero, 0(r12)    # reset the counter for the next unit
        lda     r12, 4(r12)
        subl    r11, 1, r11
        bne     r11, csum
        la      r14, out
        stq     r10, 0(r14)
        halt
.data
{_byte_lines("tokens", tokens)}
        .align  8
{_long_lines("ttab", transitions)}
{_long_lines("counts", [0] * states)}
out:    .quad   0
out2:   .quad   0
"""
    counts = [0] * states
    state = 0
    parity_total = 0
    for token in tokens:
        state = transitions[state * inputs + token] & 7
        counts[state] += 1
        parity_total += state & 1
    checksum = 0
    for value in counts:
        checksum = (checksum + value) & MASK64
        checksum = sign_extend((checksum * 3) & 0xFFFFFFFF, 32)
    program = assemble(source, "gcc")
    return WorkloadBundle(
        "gcc", program, {"out": checksum, "out2": parity_total & MASK64}
    )


# ------------------------------------------------------------------- parser


def _expression(rng: DeterministicRng, depth: int) -> str:
    if depth == 0 or rng.random() < 0.3:
        return "x"
    children = rng.randint(2, 4)
    return "(" + "".join(_expression(rng, depth - 1) for _ in range(children)) + ")"


def _expression_value(text: str, position: int = 0) -> tuple[int, int]:
    """Value of the expression at ``position``; returns (value, next_pos)."""
    if text[position] != "(":
        return 1, position + 1
    position += 1
    total = 0
    while text[position] != ")":
        value, position = _expression_value(text, position)
        total += value
    return (2 * total + 1) & MASK64, position + 1


@workload("parser")
def generate_parser(scale: int, seed: int) -> WorkloadBundle:
    """Recursive descent over a nested expression string.

    Mirrors parser's link-grammar recursion: deep call chains through
    BSR/RET, stack traffic, and unpredictable data-dependent branches.
    Node values are ints, saved to the stack as 32-bit words.
    """
    rng = DeterministicRng(seed).child("parser")
    text = "(" + "".join(_expression(rng, 5) for _ in range(6 * scale)) + ")"

    source = f"""
.text
start:  la      r1, expr        # cursor
        bsr     ra, parse
        la      r2, out
        stq     r0, 0(r2)
        halt

# parse: consumes one expression at cursor r1, returns value in r0.
parse:  subq    sp, 16, sp
        stq     ra, 0(sp)
        stl     r10, 8(sp)
        ldbu    r2, 0(r1)
        lda     r1, 1(r1)
        mull    r2, 31, r27     # token-statistics scratch, dead
        xor     r2, 40, r4      # '('
        bne     r4, leaf
        clr     r10
ploop:  ldbu    r2, 0(r1)
        xor     r2, 41, r5      # ')'
        beq     r5, pdone
        bsr     ra, parse
        addl    r10, r0, r10
        br      ploop
pdone:  lda     r1, 1(r1)
        addl    r10, r10, r0
        addl    r0, 1, r0
        br      pret
leaf:   li      r0, 1
pret:   ldq     ra, 0(sp)
        ldl     r10, 8(sp)
        addq    sp, 16, sp
        ret     (ra)
.data
expr:   .asciiz "{text}"
        .align  8
out:    .quad   0
"""
    value, _ = _expression_value(text)
    program = assemble(source, "parser")
    return WorkloadBundle("parser", program, {"out": value})


# ------------------------------------------------------------------- vortex


@workload("vortex")
def generate_vortex(scale: int, seed: int) -> WorkloadBundle:
    """Open-addressing hash table: insert then look up object keys.

    Mirrors vortex's object-database behaviour: hashing, probing with
    wrap-around, and key comparison loads. Keys are 64-bit object ids;
    the stored attributes are 32-bit ints.
    """
    rng = DeterministicRng(seed).child("vortex")
    count = 64 * scale
    slots = 256
    keys = [rng.bits(63) | 1 for _ in range(count)]  # non-zero keys
    multiplier = 0x61C88647

    source = f"""
.text
start:  la      r20, keys
        li      r21, {count}
        la      r22, htable
        li      r23, {multiplier}
        clr     r24             # insertion counter
insert: ldq     r1, 0(r20)
        mulq    r1, r23, r2
        srl     r2, 24, r2
        and     r2, 255, r2     # slot index
        xor     r2, r24, r27    # load-factor scratch, dead
iprobe: sll     r2, 4, r3
        addq    r22, r3, r3     # &htable[idx]
        ldq     r4, 0(r3)
        beq     r4, iempty
        xor     r4, r1, r5
        beq     r5, inext       # duplicate key: skip
        addl    r2, 1, r2
        and     r2, 255, r2
        br      iprobe
iempty: stq     r1, 0(r3)
        addl    r24, 1, r24
        stl     r24, 8(r3)      # value = insertion order (an int)
inext:  lda     r20, 8(r20)
        subl    r21, 1, r21
        bne     r21, insert

        la      r20, keys
        li      r21, {count}
        clr     r25             # lookup accumulator
        clr     r26             # bucket-depth statistic
lookup: ldq     r1, 0(r20)
        mulq    r1, r23, r2
        srl     r2, 24, r2
        and     r2, 255, r2
        xor     r1, r25, r27    # cache-audit scratch, dead
lprobe: sll     r2, 4, r3
        addq    r22, r3, r3
        ldq     r4, 0(r3)
        xor     r4, r1, r5
        beq     r5, lfound
        addl    r2, 1, r2
        and     r2, 255, r2
        br      lprobe
lfound: ldl     r6, 8(r3)
        addl    r25, r6, r25
        and     r6, 7, r17      # object-class statistic: 3 live bits
        addl    r26, r17, r26
        lda     r20, 8(r20)
        subl    r21, 1, r21
        bne     r21, lookup
        la      r7, out
        stq     r25, 0(r7)
        la      r7, out2
        stq     r26, 0(r7)
        mov     r22, r3         # drop the table: object database teardown
        li      r21, 256
vtz:    stq     zero, 0(r3)
        stq     zero, 8(r3)
        lda     r3, 16(r3)
        subl    r21, 1, r21
        bne     r21, vtz
        halt
.data
{_quad_lines("keys", keys)}
htable: .space  {slots * 16}
out:    .quad   0
out2:   .quad   0
"""
    table_keys = [0] * slots
    table_values = [0] * slots
    inserted = 0
    for key in keys:
        index = ((key * multiplier) & MASK64) >> 24 & 0xFF
        while True:
            if table_keys[index] == 0:
                table_keys[index] = key
                inserted += 1
                table_values[index] = inserted
                break
            if table_keys[index] == key:
                break
            index = (index + 1) & 0xFF
    accumulator = 0
    class_total = 0
    for key in keys:
        index = ((key * multiplier) & MASK64) >> 24 & 0xFF
        while table_keys[index] != key:
            index = (index + 1) & 0xFF
        accumulator = (accumulator + table_values[index]) & MASK64
        class_total += table_values[index] & 7
    program = assemble(source, "vortex")
    return WorkloadBundle(
        "vortex", program, {"out": accumulator, "out2": class_total & MASK64}
    )


# ---------------------------------------------------------------------- gap


@workload("gap")
def generate_gap(scale: int, seed: int) -> WorkloadBundle:
    """Modular exponentiation sweep (square-and-multiply).

    Mirrors gap's computational-algebra behaviour: multiply-dominated
    arithmetic with data-dependent branch decisions on exponent bits.
    Inputs are 31-bit values in 32-bit cells.
    """
    rng = DeterministicRng(seed).child("gap")
    count = 40 * scale
    values = [rng.bits(31) | 1 for _ in range(count)]
    exponents = [rng.randint(3, 255) for _ in range(count)]

    source = f"""
.text
start:  la      r1, vals
        la      r2, exps
        la      r17, results
        li      r3, {count}
        clr     r4              # accumulator
        li      r16, 1
        sll     r16, 61, r16
        subq    r16, 1, r16     # modulus mask 2^61-1
vloop:  ldl     r5, 0(r1)       # base
        ldl     r6, 0(r2)       # exponent
        li      r7, 1           # result
        and     r5, 63, r27     # residue scratch, dead
mexp:   beq     r6, mdone
        and     r6, 1, r8
        beq     r8, msq
        mulq    r7, r5, r7
        and     r7, r16, r7
msq:    mulq    r5, r5, r5
        and     r5, r16, r5
        srl     r6, 1, r6
        br      mexp
mdone:  xor     r4, r7, r4
        stl     r7, 0(r17)      # record the element's power
        lda     r17, 4(r17)
        lda     r1, 4(r1)
        lda     r2, 4(r2)
        subl    r3, 1, r3
        bne     r3, vloop
        addl    r4, 0, r4       # results reported as 32-bit words
        la      r9, out
        stq     r4, 0(r9)
        halt
.data
{_long_lines("vals", values)}
{_long_lines("exps", exponents)}
results:
        .space  {4 * count}
out:    .quad   0
"""
    mask = (1 << 61) - 1
    accumulator = 0
    for base, exponent in zip(values, exponents):
        result = 1
        b = base
        e = exponent
        while e:
            if e & 1:
                result = (result * b) & mask
            b = (b * b) & mask
            e >>= 1
        accumulator ^= result
    accumulator = sign_extend(accumulator & 0xFFFFFFFF, 32)
    program = assemble(source, "gap")
    return WorkloadBundle("gap", program, {"out": accumulator})


# ------------------------------------------------------------------- crafty


@workload("crafty")
def generate_crafty(scale: int, seed: int) -> WorkloadBundle:
    """Bitboard population counting (an optional extra kernel).

    Mirrors crafty's move-generation behaviour: 64-bit bitboard values
    consumed bit-serially with data-dependent loop trip counts. Not one of
    the paper's seven benchmarks, but useful for widening campaigns.
    """
    rng = DeterministicRng(seed).child("crafty")
    count = 32 * scale
    boards = [rng.bits(64) for _ in range(count)]

    source = f"""
.text
start:  la      r1, boards
        la      r2, counts
        li      r3, {count}
        clr     r10             # total population
bloop:  ldq     r4, 0(r1)
        clr     r5              # this board's population
        beq     r4, bdone
pop:    and     r4, 1, r6
        addl    r5, r6, r5
        srl     r4, 1, r4
        bne     r4, pop
bdone:  stl     r5, 0(r2)
        addl    r10, r5, r10
        lda     r1, 8(r1)
        lda     r2, 4(r2)
        subl    r3, 1, r3
        bne     r3, bloop
        la      r7, out
        stq     r10, 0(r7)
        halt
.data
{_quad_lines("boards", boards)}
counts: .space  {4 * count}
out:    .quad   0
"""
    total = sum(bin(board).count("1") for board in boards)
    program = assemble(source, "crafty")
    return WorkloadBundle("crafty", program, {"out": total & MASK64})


# -------------------------------------------------------------------- twolf


@workload("twolf")
def generate_twolf(scale: int, seed: int) -> WorkloadBundle:
    """Randomised cell-swap placement (an optional extra kernel).

    Mirrors twolf's annealing inner loop: an in-register LCG picks cell
    pairs, a data-dependent comparison decides whether to swap them, and a
    narrow statistic accumulates. Not one of the paper's seven benchmarks.
    """
    rng = DeterministicRng(seed).child("twolf")
    cells = 64
    steps = 150 * scale
    positions = [rng.bits(16) for _ in range(cells)]
    lcg_a = 1103515245
    lcg_c = 12345

    source = f"""
.text
start:  la      r20, cells
        li      r2, {steps}
        li      r21, {lcg_a}
        li      r22, {lcg_c}
        li      r23, 1          # LCG state
        clr     r12             # acceptance statistic
sloop:  mull    r23, r21, r23
        addl    r23, r22, r23
        srl     r23, 8, r4
        and     r4, 63, r4      # cell i
        mull    r23, r21, r23
        addl    r23, r22, r23
        srl     r23, 8, r5
        and     r5, 63, r5      # cell j
        sll     r4, 2, r6
        addq    r20, r6, r6
        sll     r5, 2, r7
        addq    r20, r7, r7
        ldl     r8, 0(r6)       # position of cell i
        ldl     r9, 0(r7)       # position of cell j
        cmple   r8, r9, r10
        bne     r10, noswap     # already ordered: reject the move
        stl     r9, 0(r6)
        stl     r8, 0(r7)
        and     r8, 7, r11      # narrow cost statistic
        addl    r12, r11, r12
noswap: subl    r2, 1, r2
        bne     r2, sloop
        la      r13, out
        stq     r12, 0(r13)
        halt
.data
{_long_lines("cells", positions)}
out:    .quad   0
"""
    table = list(positions)
    state = 1
    statistic = 0

    def lcg(value: int) -> int:
        return sign_extend((value * lcg_a + lcg_c) & 0xFFFFFFFF, 32)

    for _ in range(steps):
        state = lcg(state)
        i = (state >> 8) & 63
        state = lcg(state)
        j = (state >> 8) & 63
        a, b = table[i], table[j]
        signed_a = a if a < (1 << 63) else a - (1 << 64)
        signed_b = b if b < (1 << 63) else b - (1 << 64)
        if not signed_a <= signed_b:
            table[i], table[j] = b, a
            statistic += a & 7
    program = assemble(source, "twolf")
    return WorkloadBundle("twolf", program, {"out": statistic & MASK64})
