"""Fault-injection campaign drivers (small but real runs)."""

import pytest

from repro.faults import (
    ArchCampaignConfig,
    ArchResultBitFlip,
    StateBitFlip,
    UarchCampaignConfig,
    run_arch_campaign,
    run_uarch_campaign,
)
from repro.restore.hardened import ProtectionMap
from repro.uarch.latches import LATCH_CLASSES


@pytest.fixture(scope="module")
def arch_result():
    config = ArchCampaignConfig(
        trials_per_workload=30, injection_points=10, workloads=("gcc", "gzip")
    )
    return run_arch_campaign(config)


@pytest.fixture(scope="module")
def uarch_result():
    config = UarchCampaignConfig(
        trials_per_workload=36,
        injection_points=12,
        window_cycles=1200,
        workloads=("gcc", "mcf"),
    )
    return run_uarch_campaign(config)


class TestArchCampaign:
    def test_trial_count(self, arch_result):
        assert len(arch_result.trials) == 60

    def test_fractions_sum_to_one(self, arch_result):
        for window in (25, 100, None):
            assert sum(arch_result.fractions(window).values()) == pytest.approx(1.0)

    def test_coverage_monotonic_in_window(self, arch_result):
        coverage = [
            arch_result.failure_coverage(window).proportion
            for window in (25, 100, 1000, None)
        ]
        assert coverage == sorted(coverage)

    def test_some_masking_and_some_failures(self, arch_result):
        masked = arch_result.masked_estimate.proportion
        assert 0.05 < masked < 0.95

    def test_table_renders(self, arch_result):
        text = arch_result.table((25, 100, None))
        assert "exception" in text and "inf" in text

    def test_deterministic(self):
        config = ArchCampaignConfig(
            trials_per_workload=10, injection_points=5, workloads=("gcc",)
        )
        first = run_arch_campaign(config)
        second = run_arch_campaign(config)
        assert first.trials == second.trials

    def test_low32_model_changes_mix(self):
        wide = ArchCampaignConfig(
            trials_per_workload=40, injection_points=12, workloads=("mcf",)
        )
        narrow = ArchCampaignConfig(
            trials_per_workload=40,
            injection_points=12,
            workloads=("mcf",),
            fault_model=ArchResultBitFlip(low32_only=True),
        )
        wide_result = run_arch_campaign(wide)
        narrow_result = run_arch_campaign(narrow)
        assert all(trial.bit < 32 for trial in narrow_result.trials)
        assert any(trial.bit >= 32 for trial in wide_result.trials)


class TestUarchCampaign:
    def test_trial_count_and_bits(self, uarch_result):
        assert len(uarch_result.trials) == 72
        assert uarch_result.total_bits > 30_000

    def test_counter_totals(self, uarch_result):
        counter = uarch_result.counter(100)
        assert counter.total == len(uarch_result.trials)

    def test_coverage_monotonic(self, uarch_result):
        coverage = [
            uarch_result.coverage_of_failures(interval).proportion
            for interval in (25, 100, 1000, None)
        ]
        assert coverage == sorted(coverage)

    def test_confident_cfv_is_subset_of_perfect(self, uarch_result):
        perfect = uarch_result.counter(100).count("cfv")
        gated = uarch_result.counter(100, require_confident_cfv=True).count("cfv")
        assert gated <= perfect

    def test_protection_reduces_failures(self, uarch_result):
        pmap = ProtectionMap()
        unprotected = uarch_result.failure_estimate(100).proportion
        protected = uarch_result.failure_estimate(100, protection=pmap).proportion
        assert protected <= unprotected

    def test_latch_only_view_filters(self, uarch_result):
        view = uarch_result.latch_only_view()
        assert all(t.state_class in LATCH_CLASSES for t in view.trials)
        assert 0 < len(view.trials) < len(uarch_result.trials)

    def test_latch_only_fault_model(self):
        config = UarchCampaignConfig(
            trials_per_workload=12,
            injection_points=6,
            window_cycles=800,
            workloads=("gcc",),
            fault_model=StateBitFlip(target_classes=LATCH_CLASSES),
        )
        result = run_uarch_campaign(config)
        assert all(t.state_class in LATCH_CLASSES for t in result.trials)

    def test_masked_plus_other_dominates(self, uarch_result):
        """Paper: ~92-93% of microarchitectural flips are benign."""
        benign = uarch_result.masked_estimate().proportion
        assert benign > 0.6

    def test_table_renders(self, uarch_result):
        text = uarch_result.table((25, 100))
        assert "deadlock" in text and "latent" in text


class TestExactTrialBudget:
    """Regression: per-point allocation used ``ceil(trials / points)``
    everywhere, so any non-divisible budget overran — 7 trials over 3
    points ran 9. Exactly the requested count must run, with the
    remainder going to the earliest injection points."""

    def test_arch_runs_exactly_the_requested_trials(self):
        config = ArchCampaignConfig(
            trials_per_workload=7, injection_points=3, workloads=("gcc",)
        )
        assert len(run_arch_campaign(config).trials) == 7

    def test_arch_remainder_lands_on_the_earliest_points(self):
        from collections import Counter

        from repro.faults import arch_campaign

        config = ArchCampaignConfig(
            trials_per_workload=7, injection_points=3, workloads=("gcc",)
        )
        outcome = arch_campaign.run_workload_trials(config, "gcc")
        counts = Counter(o.to_entry()["point"] for o in outcome.outcomes)
        assert [counts[point] for point in sorted(counts)] == [3, 2, 2]

    def test_uarch_runs_exactly_the_requested_trials(self):
        config = UarchCampaignConfig(
            trials_per_workload=8, injection_points=3,
            window_cycles=1200, workloads=("gcc",),
        )
        assert len(run_uarch_campaign(config).trials) == 8
