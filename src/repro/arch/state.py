"""Architectural machine state: register file, PC, and memory."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.memory import SparseMemory
from repro.isa.registers import NUM_REGS, REG_ZERO
from repro.util.bitops import MASK64


@dataclass
class ArchState:
    """The software-visible state of the machine.

    ``regs[31]`` is kept at zero by construction: the simulator never writes
    it (writes to R31 are discarded at decode time via ``dest_reg``).
    """

    regs: list[int] = field(default_factory=lambda: [0] * NUM_REGS)
    pc: int = 0
    memory: SparseMemory = field(default_factory=SparseMemory)

    def read_reg(self, number: int) -> int:
        return self.regs[number]

    def write_reg(self, number: int, value: int) -> None:
        if number != REG_ZERO:
            self.regs[number] = value & MASK64

    def snapshot_regs(self) -> tuple[int, ...]:
        """An immutable copy of the register file plus PC."""
        return tuple(self.regs) + (self.pc,)

    def restore_regs(self, snapshot: tuple[int, ...]) -> None:
        if len(snapshot) != NUM_REGS + 1:
            raise ValueError("bad register snapshot length")
        self.regs[:] = snapshot[:NUM_REGS]
        self.pc = snapshot[NUM_REGS]

    def regs_equal(self, other: "ArchState") -> bool:
        return self.regs == other.regs

    def diff_regs(self, other: "ArchState") -> list[int]:
        """Register numbers whose values differ from ``other``."""
        return [
            number
            for number in range(NUM_REGS)
            if self.regs[number] != other.regs[number]
        ]
