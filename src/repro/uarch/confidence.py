"""The JRS branch-confidence estimator.

Jacobsen, Rotenberg, and Smith's estimator (MICRO-29, reference [12] of the
paper): a table of saturating "resetting counters" indexed by PC xor global
history. A counter increments on every correct prediction of branches
mapping to it and resets to zero on a misprediction, so a high counter
value means the predictor has recently been consistently right — the
prediction is *high confidence*.

ReStore uses it to gate the control-flow symptom: a mispredicted branch
that the estimator had marked high-confidence is suspicious — maybe the
"misprediction" is really a soft error (Section 3.2.2). The paper selected
JRS "prioritizing performance over coverage": it is conservative, so few
error-free mispredictions are flagged (few false positives), at the cost of
missing some genuine error-induced violations.
"""

from __future__ import annotations

from repro.uarch.config import PipelineConfig


class JrsConfidenceEstimator:
    """Table of resetting counters; high confidence at saturation."""

    def __init__(self, config: PipelineConfig):
        self.entries = config.jrs_entries
        self.max_value = (1 << config.jrs_counter_bits) - 1
        self.threshold = config.jrs_threshold
        self.table = [0] * self.entries

    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) % self.entries

    def estimate(self, pc: int, history: int) -> bool:
        """True when the upcoming prediction is high confidence."""
        return self.table[self._index(pc, history)] >= self.threshold

    def update(self, pc: int, history: int, correct: bool) -> None:
        """Train with the resolved outcome (resetting counter discipline)."""
        index = self._index(pc, history)
        if correct:
            self.table[index] = min(self.max_value, self.table[index] + 1)
        else:
            self.table[index] = 0


class PerfectConfidenceEstimator:
    """Oracle estimator for the ablation in Section 5.2.1.

    The paper notes "a perfect confidence predictor would yield nearly twice
    the error coverage": with an oracle, *every* control-flow violation from
    a soft error is flagged, while genuine (error-free) mispredictions are
    not. We approximate the oracle by always reporting high confidence; in
    coverage campaigns this flags every misprediction symptom, and the
    performance model pairs it with the measured error-free misprediction
    rate instead of the JRS-gated rate.
    """

    def estimate(self, pc: int, history: int) -> bool:
        return True

    def update(self, pc: int, history: int, correct: bool) -> None:
        """Oracles do not train."""


class NeverConfidentEstimator:
    """Disables the control-flow symptom (exceptions-only ReStore)."""

    def estimate(self, pc: int, history: int) -> bool:
        return False

    def update(self, pc: int, history: int, correct: bool) -> None:
        """Nothing to train."""
