"""Pipeline configuration defaults (the paper's machine)."""

from repro.uarch.config import PipelineConfig


class TestPaperParameters:
    def test_issue_width(self):
        """Paper: 'up to 6 instructions are selected for execution'."""
        assert PipelineConfig().issue_width == 6

    def test_scheduler_size(self):
        """Paper: 'a dynamic scheduler of 32 entries'."""
        assert PipelineConfig().scheduler_entries == 32

    def test_rob_size(self):
        """Paper's Figure 3: '64-Entry ReOrder Buffer'."""
        assert PipelineConfig().rob_entries == 64

    def test_fetch_queue(self):
        """Paper's Figure 3: '32 Entry Fetch Queue'."""
        assert PipelineConfig().fetch_queue_entries == 32

    def test_in_flight_capacity(self):
        """Paper: 'up to 132 instructions in-flight'."""
        assert 100 <= PipelineConfig().max_in_flight <= 160

    def test_functional_units(self):
        """Paper's Figure 3: ALU ALU ALU Br AGEN AGEN."""
        config = PipelineConfig()
        assert (config.alu_units, config.branch_units, config.agen_units) == (3, 1, 2)

    def test_custom_config(self):
        config = PipelineConfig(rob_entries=128, issue_width=8)
        assert config.rob_entries == 128
        assert config.max_in_flight > PipelineConfig().max_in_flight
