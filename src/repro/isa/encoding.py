"""Encoding and decoding of 32-bit instruction words."""

from __future__ import annotations

from repro.isa import opcodes as op
from repro.isa.instructions import DecodedInst
from repro.util.bitops import extract_bits, sign_extend

WORD_MASK = (1 << 32) - 1


class IllegalInstructionError(Exception):
    """Raised when a word does not decode to any defined instruction.

    The architectural simulator converts this into an ISA-defined exception;
    the pipeline model tags the instruction and raises the exception at
    retirement, as real hardware does.
    """

    def __init__(self, word: int):
        super().__init__(f"illegal instruction word 0x{word:08x}")
        self.word = word


def encode_operate(
    opcode: int, func: int, ra: int, rb_or_lit: int, rc: int, is_literal: bool
) -> int:
    """Encode an operate-format instruction (register or literal form)."""
    word = (opcode & 0x3F) << 26
    word |= (ra & 0x1F) << 21
    if is_literal:
        if not 0 <= rb_or_lit < 256:
            raise ValueError(f"literal out of range [0, 255]: {rb_or_lit}")
        word |= (rb_or_lit & 0xFF) << 13
        word |= 1 << 12
    else:
        word |= (rb_or_lit & 0x1F) << 16
    word |= (func & 0x7F) << 5
    word |= rc & 0x1F
    return word


def encode_memory(opcode: int, ra: int, rb: int, disp: int) -> int:
    """Encode a memory-format instruction; ``disp`` is a signed byte offset."""
    if not -(1 << 15) <= disp < (1 << 15):
        raise ValueError(f"16-bit displacement out of range: {disp}")
    word = (opcode & 0x3F) << 26
    word |= (ra & 0x1F) << 21
    word |= (rb & 0x1F) << 16
    word |= disp & 0xFFFF
    return word


def encode_jump(ra: int, rb: int, hint: int) -> int:
    """Encode a jump-format instruction (JMP/JSR/RET/JSR_COROUTINE)."""
    word = (op.OP_JMP & 0x3F) << 26
    word |= (ra & 0x1F) << 21
    word |= (rb & 0x1F) << 16
    word |= (hint & 0x3) << 14
    return word


def encode_branch(opcode: int, ra: int, disp_words: int) -> int:
    """Encode a branch; ``disp_words`` is the signed word offset from PC+4."""
    if not -(1 << 20) <= disp_words < (1 << 20):
        raise ValueError(f"21-bit branch displacement out of range: {disp_words}")
    word = (opcode & 0x3F) << 26
    word |= (ra & 0x1F) << 21
    word |= disp_words & 0x1FFFFF
    return word


HALT_WORD = 0x00000000


def decode_word(word: int) -> DecodedInst:
    """Decode one instruction word; raises IllegalInstructionError."""
    word &= WORD_MASK
    opcode = extract_bits(word, 26, 6)
    ra = extract_bits(word, 21, 5)

    if opcode == op.OP_PAL:
        if word == HALT_WORD:
            return DecodedInst(
                spec=op.SPEC_BY_MNEMONIC["halt"], word=word, ra=31, rb=31, rc=31
            )
        raise IllegalInstructionError(word)

    if opcode in op.OPERATE_OPCODES:
        func = extract_bits(word, 5, 7)
        spec = op.SPEC_BY_OPCODE_FUNC.get((opcode, func))
        if spec is None:
            raise IllegalInstructionError(word)
        rc = extract_bits(word, 0, 5)
        if extract_bits(word, 12, 1):
            literal = extract_bits(word, 13, 8)
            return DecodedInst(
                spec=spec, word=word, ra=ra, rb=31, rc=rc,
                is_literal=True, literal=literal,
            )
        rb = extract_bits(word, 16, 5)
        return DecodedInst(spec=spec, word=word, ra=ra, rb=rb, rc=rc)

    if opcode == op.OP_JMP:
        rb = extract_bits(word, 16, 5)
        hint = extract_bits(word, 14, 2)
        spec = op.SPEC_BY_JUMP_HINT[hint]
        return DecodedInst(spec=spec, word=word, ra=ra, rb=rb, rc=31)

    spec = op.SPEC_BY_OPCODE.get(opcode)
    if spec is None:
        raise IllegalInstructionError(word)

    if spec.format is op.Format.MEMORY:
        rb = extract_bits(word, 16, 5)
        disp = sign_extend(extract_bits(word, 0, 16), 16)
        return DecodedInst(spec=spec, word=word, ra=ra, rb=rb, rc=31, disp=disp)

    # Branch format.
    disp = sign_extend(extract_bits(word, 0, 21), 21)
    return DecodedInst(spec=spec, word=word, ra=ra, rb=31, rc=31, disp=disp)


def try_decode_word(word: int) -> DecodedInst | None:
    """Decode one word, returning None for illegal encodings."""
    try:
        return decode_word(word)
    except IllegalInstructionError:
        return None
