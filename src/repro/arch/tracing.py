"""Execution traces captured from golden (fault-free) runs.

A trace records exactly what the fault-injection comparators need: the
retired PC stream (control-flow divergence detection), the memory-operation
stream (address/data divergence detection), which dynamic instructions wrote
a register (eligible fault-injection points for the paper's
"bit flip in the result of a randomly chosen instruction" model), and the
final architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.arch.exceptions import IsaException
    from repro.arch.memory import SparseMemory

# A memory operation: ("L" | "S", effective address, value).
MemoryOp = tuple[str, int, int]


@dataclass(frozen=True)
class ArchSnapshot:
    """Full architectural state captured mid-run, after ``retired``
    instructions have retired (the instruction at trace index ``retired``
    has not executed yet). Restoring one and resuming is bit-identical to
    having stepped the simulator from reset — architectural state is only
    regs + pc + memory; decode caches and the like are derived."""

    retired: int
    pc: int
    regs: tuple[int, ...]
    memory: "SparseMemory"


@dataclass
class ExecutionTrace:
    """Everything recorded from one golden run."""

    pcs: list[int] = field(default_factory=list)
    memops: list[MemoryOp] = field(default_factory=list)
    writer_steps: list[int] = field(default_factory=list)
    # memop_counts[i] == number of memory operations retired up to and
    # including step i (so step i's own memop, when it has one, is
    # memops[memop_counts[i] - 1]). Recorded while the golden run executes
    # rather than re-derived later by decoding instruction words out of the
    # final memory image, which silently misattributes memops when an
    # executed word on a writable page is overwritten by a later store.
    memop_counts: list[int] = field(default_factory=list)
    final_regs: tuple[int, ...] | None = None
    final_memory: "SparseMemory | None" = None
    exception: "IsaException | None" = None
    halted: bool = False
    # Periodic checkpoints (optional; populated when the golden run is
    # captured for the golden-artifact cache).
    snapshots: list[ArchSnapshot] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Number of retired instructions."""
        return len(self.pcs)

    def pc_at(self, step: int) -> int:
        return self.pcs[step]
