"""ISA-defined exceptions.

These are the paper's primary soft-error symptom: "About 24% of all fault
injections ... result in an ISA defined exception within 100 instructions.
Most of these are memory access faults ... while a small portion consist of
arithmetic overflow or memory alignment exceptions."
"""

from __future__ import annotations

from enum import Enum


class ExceptionKind(Enum):
    """The exception classes the machine can raise."""

    ACCESS_VIOLATION = "access_violation"  # unmapped page or protection
    ALIGNMENT_FAULT = "alignment_fault"
    ARITHMETIC_TRAP = "arithmetic_trap"  # signed overflow in *V opcodes
    ILLEGAL_OPCODE = "illegal_opcode"


class IsaException(Exception):
    """Base class for ISA-defined exceptions raised during execution."""

    kind: ExceptionKind

    def __init__(self, message: str, pc: int | None = None, address: int | None = None):
        super().__init__(message)
        self.pc = pc
        self.address = address

    def located(self, pc: int) -> "IsaException":
        """Attach the faulting PC (used when raised below the simulator)."""
        self.pc = pc
        return self


class AccessViolation(IsaException):
    """Access to an unmapped page or a write to a read-only page."""

    kind = ExceptionKind.ACCESS_VIOLATION

    def __init__(self, address: int, operation: str, pc: int | None = None):
        super().__init__(
            f"access violation: {operation} at 0x{address:016x}",
            pc=pc,
            address=address,
        )
        self.operation = operation


class AlignmentFault(IsaException):
    """A memory access whose address is not a multiple of its size."""

    kind = ExceptionKind.ALIGNMENT_FAULT

    def __init__(self, address: int, size: int, pc: int | None = None):
        super().__init__(
            f"alignment fault: {size}-byte access at 0x{address:016x}",
            pc=pc,
            address=address,
        )
        self.size = size


class ArithmeticTrap(IsaException):
    """Signed overflow in a trapping arithmetic instruction."""

    kind = ExceptionKind.ARITHMETIC_TRAP

    def __init__(self, mnemonic: str, pc: int | None = None):
        super().__init__(f"arithmetic trap in {mnemonic}", pc=pc)
        self.mnemonic = mnemonic


class IllegalOpcode(IsaException):
    """An instruction word with no defined decoding."""

    kind = ExceptionKind.ILLEGAL_OPCODE

    def __init__(self, word: int, pc: int | None = None):
        super().__init__(f"illegal opcode 0x{word:08x}", pc=pc)
        self.word = word
