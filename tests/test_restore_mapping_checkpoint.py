"""Mapping-based checkpointing (the paper's second register scheme)."""

import pytest

from repro.restore.checkpoint import CheckpointManager, MappingCheckpointManager
from repro.uarch import PipelineConfig, load_pipeline
from repro.workloads import WORKLOAD_NAMES, build_workload


def make(workload="gcc", interval=100, config=None):
    bundle = build_workload(workload)
    pipeline = load_pipeline(bundle.program, config=config)
    manager = MappingCheckpointManager(pipeline, interval)
    pipeline.on_retire = manager.note_retirement
    return bundle, pipeline, manager


class TestPinning:
    def test_checkpoints_pin_their_mapping(self):
        _, pipeline, manager = make()
        pipeline.run(1_500)
        pinned = manager.pinned_registers()
        assert pinned
        for checkpoint in manager.checkpoints:
            assert set(checkpoint.rat) <= pinned

    def test_pinned_registers_stay_out_of_the_free_list(self):
        _, pipeline, manager = make()
        pipeline.run(1_500)
        freelist = pipeline.freelist
        free = {
            freelist.slots[(freelist._head[0] + i) % freelist.capacity]
            for i in range(freelist.count)
        }
        assert free.isdisjoint(manager.pinned_registers())

    def test_values_are_not_copied(self):
        _, pipeline, manager = make()
        pipeline.run(1_500)
        assert all(c.reg_values == () for c in manager.checkpoints)

    def test_release_unpins(self):
        _, pipeline, manager = make(interval=50)
        pipeline.run(3_000)
        # Only the two live checkpoints' mappings may be pinned.
        live = set()
        for checkpoint in manager.checkpoints:
            live |= set(checkpoint.rat)
        assert manager.pinned_registers() == live


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestCorrectness:
    def test_fault_free_execution(self, name):
        bundle, pipeline, _ = make(name)
        pipeline.run(3_000_000)
        assert pipeline.halted
        assert bundle.check(pipeline.memory) == []

    def test_rollback_and_resume(self, name):
        bundle, pipeline, manager = make(name)
        pipeline.run(2_000)
        if pipeline.running:
            manager.rollback()
        pipeline.run(3_000_000)
        assert pipeline.halted
        assert bundle.check(pipeline.memory) == []


class TestEquivalenceWithValueCopy:
    def test_rollback_restores_identical_registers(self):
        bundle = build_workload("gzip")
        runs = {}
        for cls in (CheckpointManager, MappingCheckpointManager):
            pipeline = load_pipeline(bundle.program)
            manager = cls(pipeline, 100)
            pipeline.on_retire = manager.note_retirement
            pipeline.run(2_000)
            manager.rollback()
            runs[cls.__name__] = (
                pipeline.arch_reg_values(),
                pipeline.retired_count,
            )
        assert runs["CheckpointManager"] == runs["MappingCheckpointManager"]

    def test_repeated_rollbacks(self):
        bundle, pipeline, manager = make("mcf", interval=50)
        for _ in range(4):
            pipeline.run(800)
            if not pipeline.running:
                break
            manager.rollback()
        pipeline.run(3_000_000)
        assert pipeline.halted
        assert bundle.check(pipeline.memory) == []


class TestRegisterPressure:
    def test_small_prf_forces_early_releases(self):
        """With a small physical register file, pinning two RAT snapshots
        starves rename; the manager must force early checkpoints instead of
        deadlocking."""
        config = PipelineConfig(physical_registers=96)
        bundle, pipeline, manager = make("gcc", interval=1_000, config=config)
        pipeline.run(3_000_000)
        assert pipeline.halted
        assert bundle.check(pipeline.memory) == []
        assert manager.forced_by_pressure > 0
