"""The adaptive campaign planner: allocation, prescreen, determinism.

Three layers are pinned here:

1. The planner core as a pure sequential-experiment machine — round
   structure, widest-first reallocation, budget caps, protocol errors,
   and summary replay.
2. The masking prescreen's soundness *differentially*: every point it
   classifies dead must produce, under full simulation, exactly the
   masked record the prescreen fabricates — across every default kernel
   and several bit positions.
3. Adaptive campaign determinism end to end: the same seed and margin
   produce byte-identical journals across serial/parallel runs, a resume
   interrupted mid-round, and a sharded service job (including a
   scheduler restart between rounds).
"""

import filecmp
import math
import os

import pytest

from repro.campaign import run_campaign
from repro.faults import ArchCampaignConfig
from repro.planner import (
    CampaignPlanner,
    PlannerConfig,
    PlannerProtocolError,
    aggregate_planner_summaries,
    format_point_margins,
    journal_point_tallies,
    point_margins,
    prescreen_dead_points,
    preview_plan,
    replay_summary,
    resolve_budget,
)
from repro.util.journal import JournalError, read_journal

# Small but multi-round: 4 points, round 0 spends 8 of the 40 budget
# (2 per point — too few to converge even an all-masked point at the
# 0.3 margin), so round 1 must top up every point before stopping.
PLANNER = PlannerConfig(margin=0.3, min_trials=2, round_trials=2)
ARCH_CONFIG = ArchCampaignConfig(
    trials_per_workload=40,
    injection_points=4,
    workloads=("gcc",),
    seed=7,
)


class TestPlannerConfig:
    def test_defaults_and_round_trip(self):
        config = PlannerConfig()
        assert config.margin == 0.05
        assert config.prescreen is True
        assert PlannerConfig.from_dict(config.to_dict()) == config

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PlannerConfig(margin=0.0)
        with pytest.raises(ValueError):
            PlannerConfig(margin=1.0)
        with pytest.raises(ValueError):
            PlannerConfig(min_trials=0)
        with pytest.raises(ValueError):
            PlannerConfig(round_trials=0)
        with pytest.raises(ValueError):
            PlannerConfig(max_trials=0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown planner options"):
            PlannerConfig.from_dict({"margin": 0.1, "rounds": 3})

    def test_budget_defaults_to_uniform_trials(self):
        assert resolve_budget(PLANNER, ARCH_CONFIG) == 40
        capped = PlannerConfig(margin=0.3, max_trials=12)
        assert resolve_budget(capped, ARCH_CONFIG) == 12


class TestCampaignPlanner:
    def test_round_zero_gives_every_point_min_trials(self):
        planner = CampaignPlanner(
            PlannerConfig(margin=0.3, min_trials=4, round_trials=2),
            [5, 2, 9], budget=100,
        )
        assert planner.plan_round() == [(2, 0, 4), (5, 0, 4), (9, 0, 4)]

    def test_converged_points_stop_getting_budget(self):
        planner = CampaignPlanner(
            PlannerConfig(margin=0.2, min_trials=10, round_trials=2),
            [1, 2], budget=100,
        )
        for point, _start, count in planner.plan_round():
            for i in range(count):
                # Point 1 all-masked (narrow); point 2 split 50/50 (wide).
                planner.observe(point, ok=True, failing=(point == 2 and i % 2 == 0))
        # 0/10 failing: Wilson margin ~= 0.139 <= 0.2 -> converged;
        # 5/10 failing: ~= 0.263 -> still wide.
        assert planner.converged(1)
        assert not planner.converged(2)
        assert planner.plan_round() == [(2, 10, 2)]

    def test_widest_first_when_budget_is_short(self):
        planner = CampaignPlanner(
            PlannerConfig(margin=0.01, min_trials=2, round_trials=2),
            [1, 2], budget=6,
        )
        for point, _start, count in planner.plan_round():
            for i in range(count):
                # Point 2's 1/2 split is wider than point 1's 0/2.
                planner.observe(point, ok=True, failing=(point == 2 and i == 0))
        assert planner.margin(2) > planner.margin(1)
        # 2 budget left: the widest point takes the whole top-up.
        assert planner.plan_round() == [(2, 2, 2)]

    def test_budget_cap_terminates_the_loop(self):
        planner = CampaignPlanner(
            PlannerConfig(margin=0.001, min_trials=4, round_trials=4),
            [1], budget=10,
        )
        executed = 0
        while True:
            allocation = planner.plan_round()
            if not allocation:
                break
            for point, _start, count in allocation:
                executed += count
                for _ in range(count):
                    planner.observe(point, ok=True, failing=False)
        assert executed == 10
        assert planner.finished
        assert planner.summary()["trials_saved"] == 0

    def test_harness_outcomes_spend_budget_without_tally(self):
        planner = CampaignPlanner(
            PlannerConfig(margin=0.3, min_trials=3, round_trials=1),
            [1], budget=3,
        )
        for point, _start, count in planner.plan_round():
            for _ in range(count):
                planner.observe(point, ok=False, failing=False)
        assert math.isinf(planner.margin(1))
        assert planner.plan_round() == []  # budget spent, point still wide
        summary = planner.summary()
        assert summary["executed"] == 3
        assert summary["points"][0]["trials"] == 0
        assert summary["points"][0]["margin"] is None

    def test_prescreened_points_are_budget_free_and_converged(self):
        planner = CampaignPlanner(
            PlannerConfig(margin=0.3, min_trials=4, round_trials=2),
            [1, 2], prescreened=[2], budget=4,
        )
        assert planner.margin(2) == 0.0
        allocation = planner.plan_round()
        assert allocation == [(1, 0, 4), (2, 0, 4)]
        for point, _start, count in allocation:
            for _ in range(count):
                planner.observe(point, ok=True, failing=False)
        assert planner.executed == 4  # point 2's trials cost nothing
        assert planner.prescreen_trials == 4
        summary = planner.summary()
        assert summary["prescreen_points"] == 1
        assert summary["points"][1]["prescreened"] is True

    def test_protocol_violations_raise(self):
        planner = CampaignPlanner(PLANNER, [1], budget=10)
        with pytest.raises(PlannerProtocolError):
            planner.observe(1, ok=True, failing=False)  # nothing allocated
        planner.plan_round()
        with pytest.raises(PlannerProtocolError):
            planner.plan_round()  # previous round not fully observed
        with pytest.raises(PlannerProtocolError):
            planner.observe(99, ok=True, failing=False)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            CampaignPlanner(PLANNER, [], budget=10)
        with pytest.raises(ValueError):
            CampaignPlanner(PLANNER, [1, 1], budget=10)
        with pytest.raises(ValueError):
            CampaignPlanner(PLANNER, [1], prescreened=[2], budget=10)
        with pytest.raises(ValueError):
            CampaignPlanner(PLANNER, [1], budget=0)

    def test_replay_reconstructs_the_summary(self):
        outcomes = {}
        planner = CampaignPlanner(PLANNER, [1, 2, 3], budget=30)
        while True:
            allocation = planner.plan_round()
            if not allocation:
                break
            for point, start, count in allocation:
                for index in range(start, start + count):
                    verdict = (True, (point * 7 + index) % 3 == 0)
                    outcomes[(point, index)] = verdict
                    planner.observe(point, ok=verdict[0], failing=verdict[1])
        replayed = replay_summary(
            PLANNER, [1, 2, 3], (), budget=30, outcomes=outcomes
        )
        assert replayed == planner.summary()

    def test_aggregate_sums_integer_tallies(self):
        summary = {
            "budget": 10, "executed": 6, "trials_saved": 4,
            "prescreen_points": 1, "prescreen_trials": 4, "rounds": 2,
            "total_points": 3, "converged_points": 3, "points": [],
        }
        totals = aggregate_planner_summaries(PLANNER, [summary, summary])
        assert totals["workloads"] == 2
        assert totals["executed"] == 12
        assert totals["trials_saved"] == 8
        assert totals["rounds_max"] == 2
        assert totals["margin"] == PLANNER.margin


class TestPrescreenDifferential:
    def test_prescreen_verdicts_match_full_simulation(self):
        """Every prescreened point, on every default kernel, simulates to
        exactly the fabricated masked record — for multiple bits."""
        from repro.faults.arch_campaign import (
            _load_golden,
            _prefix_simulator,
            _run_trial,
        )
        from repro.faults.classify import ArchTrialResult
        from repro.util.rng import DeterministicRng

        config = ArchCampaignConfig(trials_per_workload=40, injection_points=20)
        total_dead = 0
        for workload in config.workloads:
            wrng = (
                DeterministicRng(config.seed)
                .child("arch-campaign")
                .child(workload)
            )
            bundle, trace, _ = _load_golden(config, workload, None)
            count = min(config.injection_points, len(trace.writer_steps))
            points = sorted(
                wrng.child("points").sample(trace.writer_steps, count)
            )
            dead = prescreen_dead_points(trace, points)
            assert dead <= set(points)
            total_dead += len(dead)
            for point in sorted(dead):
                for bit in (0, 31, 63):
                    prefix = _prefix_simulator(bundle, trace, point)
                    if prefix.retired < point and prefix.running:
                        prefix.run(point - prefix.retired)
                    record = _run_trial(
                        workload, prefix, trace, trace.memop_counts,
                        point, bit, config,
                    )
                    assert record == ArchTrialResult(
                        workload=workload, inject_step=point, bit=bit
                    ), f"{workload} point {point} bit {bit} is not dead"
        assert total_dead > 0  # the sweep must actually exercise the claim


def _adaptive_journal(tmp_path, name, **kwargs):
    path = str(tmp_path / name)
    report = run_campaign(
        "arch", ARCH_CONFIG, planner=PLANNER, journal_path=path, **kwargs
    )
    return path, report


class TestAdaptiveDeterminism:
    def test_serial_and_parallel_journals_are_byte_identical(self, tmp_path):
        serial, _ = _adaptive_journal(tmp_path, "serial.jsonl", jobs=1)
        parallel, _ = _adaptive_journal(tmp_path, "parallel.jsonl", jobs=4)
        assert filecmp.cmp(serial, parallel, shallow=False)

    def test_resume_mid_round_is_byte_identical(self, tmp_path):
        full, full_report = _adaptive_journal(tmp_path, "full.jsonl")
        lines = open(full).read().splitlines(keepends=True)
        trial_lines = [
            i for i, line in enumerate(lines) if '"kind": "trial"' in line
        ]
        # Cut inside round 1: past round 0's 8 trials, mid-journal.
        assert len(trial_lines) > 12
        cut = trial_lines[11]
        partial = str(tmp_path / "partial.jsonl")
        with open(partial, "w") as out:
            out.writelines(lines[:cut])
        report = run_campaign(
            "arch", ARCH_CONFIG, planner=PLANNER, journal_path=partial,
            resume=True,
        )
        assert report.resumed > 0
        assert filecmp.cmp(full, partial, shallow=False)
        assert report.planner_totals == full_report.planner_totals

    def test_adaptive_saves_trials_within_budget(self, tmp_path):
        _path, report = _adaptive_journal(tmp_path, "save.jsonl")
        totals = report.planner_totals
        assert totals["workloads"] == 1
        assert totals["budget"] == 40
        assert totals["executed"] + totals["trials_saved"] == totals["budget"]
        assert totals["trials_saved"] > 0
        assert totals["converged_points"] == totals["total_points"]

    def test_manifest_records_planner_and_gates_resume(self, tmp_path):
        path, _ = _adaptive_journal(tmp_path, "adaptive.jsonl")
        manifest = read_journal(path)[0]
        assert manifest["planner"] == PLANNER.to_dict()
        with pytest.raises(JournalError):
            run_campaign(
                "arch", ARCH_CONFIG, journal_path=path, resume=True
            )  # uniform resume of an adaptive journal
        with pytest.raises(JournalError):
            run_campaign(
                "arch", ARCH_CONFIG, journal_path=path, resume=True,
                planner=PlannerConfig(margin=0.2, min_trials=4,
                                      round_trials=2),
            )  # different planner settings

    def test_uniform_manifest_has_no_planner_key(self, tmp_path):
        path = str(tmp_path / "uniform.jsonl")
        run_campaign("arch", ARCH_CONFIG, journal_path=path)
        manifest = read_journal(path)[0]
        assert "planner" not in manifest
        # And the sentinel lines carry no planner fields either.
        for entry in read_journal(path)[1:]:
            if entry.get("kind") == "workload":
                assert "planner_points" not in entry

    def test_adaptive_rejected_for_uarch(self):
        from repro.faults import UarchCampaignConfig

        with pytest.raises(ValueError, match="arch"):
            run_campaign(
                "uarch",
                UarchCampaignConfig(
                    trials_per_workload=8, injection_points=4,
                    workloads=("gcc",), seed=7,
                ),
                planner=PLANNER,
            )

    def test_point_converged_events_are_emitted(self):
        from repro.telemetry import RingBufferTraceSink

        sink = RingBufferTraceSink(capacity=4096)
        run_campaign("arch", ARCH_CONFIG, planner=PLANNER, trace=sink)
        events = [
            e for e in sink.events() if e.get("kind") == "point_converged"
        ]
        assert events, "adaptive runs must announce converged points"
        for event in events:
            assert event["workload"] == "gcc"
            assert event["trials"] >= 0
            assert 0.0 <= event["margin"] <= 1.0


class TestServiceAdaptive:
    def _drain(self, scheduler, job_id):
        from repro.service.worker import execute_unit

        for _ in range(200):
            lease = scheduler.lease("w0")
            if lease is None:
                if scheduler.job_view(job_id)["state"] == "done":
                    return
                continue
            result = execute_unit(lease["spec"], lease["unit"])
            assert scheduler.complete(
                lease["unit"]["job_id"], lease["unit"]["unit_id"], "w0",
                result,
            )
        raise AssertionError("service job did not finish")

    def _scheduler(self, tmp_path, tag):
        from repro.service.scheduler import CampaignScheduler
        from repro.service.store import ResultStore

        store = ResultStore(str(tmp_path / f"{tag}.db"))
        return CampaignScheduler(store, str(tmp_path / tag))

    def test_sharded_adaptive_job_matches_local_journal(self, tmp_path):
        from repro.service.spec import JobSpec

        local, _ = _adaptive_journal(tmp_path, "local.jsonl")
        scheduler = self._scheduler(tmp_path, "svc")
        job = scheduler.submit(JobSpec(
            level="arch", config=ARCH_CONFIG, shards_per_workload=2,
            planner=PLANNER,
        ))
        self._drain(scheduler, job["job_id"])
        view = scheduler.job_view(job["job_id"])
        assert view["state"] == "done"
        assert filecmp.cmp(local, view["journal_path"], shallow=False)
        assert view["metrics"]["planner"]["trials_saved"] > 0

    def test_scheduler_restart_between_rounds_recovers(self, tmp_path):
        from repro.service.scheduler import CampaignScheduler
        from repro.service.spec import JobSpec
        from repro.service.store import ResultStore
        from repro.service.worker import execute_unit

        local, _ = _adaptive_journal(tmp_path, "local.jsonl")
        db = str(tmp_path / "svc.db")
        data = str(tmp_path / "svc-data")
        store = ResultStore(db)
        first = CampaignScheduler(store, data)
        job = first.submit(JobSpec(
            level="arch", config=ARCH_CONFIG, shards_per_workload=2,
            planner=PLANNER,
        ))
        # Crash simulation: round 0's trials are persisted, but the
        # process dies inside complete() before the planner dispatches
        # the next round (or finalizes anything).
        first._maybe_finalize = lambda job_id: None
        while (lease := first.lease("w0")) is not None:
            result = execute_unit(lease["spec"], lease["unit"])
            first.complete(
                lease["unit"]["job_id"], lease["unit"]["unit_id"], "w0",
                result,
            )
        assert first.job_view(job["job_id"])["state"] == "running"
        store.close()

        # A fresh scheduler over the same store must replay the planner
        # at boot, dispatch the stranded round, and finish the job.
        store = ResultStore(db)
        second = CampaignScheduler(store, data)
        self._drain(second, job["job_id"])
        view = second.job_view(job["job_id"])
        assert view["state"] == "done"
        assert filecmp.cmp(local, view["journal_path"], shallow=False)
        store.close()

    def test_spec_rejects_planner_for_uarch(self):
        from repro.service.spec import JobSpec, ServiceError, build_config

        with pytest.raises(ServiceError, match="arch"):
            JobSpec(
                level="uarch",
                config=build_config("uarch", {
                    "trials_per_workload": 8, "injection_points": 4,
                    "workloads": ["gcc"], "seed": 7,
                }),
                planner=PLANNER,
            )

    def test_spec_round_trips_planner(self):
        from repro.service.spec import JobSpec

        spec = JobSpec(level="arch", config=ARCH_CONFIG, planner=PLANNER)
        data = spec.to_dict()
        assert data["planner"] == PLANNER.to_dict()
        rebuilt = JobSpec.from_dict(data)
        assert rebuilt.planner == PLANNER
        uniform = JobSpec(level="arch", config=ARCH_CONFIG)
        assert "planner" not in uniform.to_dict()


class TestMarginHelpers:
    def _entries(self):
        return [
            {"kind": "trial", "status": "ok", "key": "gcc:1:0",
             "workload": "gcc", "point": 1, "index": 0,
             "record": {"failing": True}},
            {"kind": "trial", "status": "ok", "key": "gcc:1:1",
             "workload": "gcc", "point": 1, "index": 1,
             "record": {"failing": False}},
            {"kind": "trial", "status": "ok", "key": "gcc:1:1",  # dup key
             "workload": "gcc", "point": 1, "index": 1,
             "record": {"failing": False}},
            {"kind": "trial", "status": "harness-crash", "key": "gcc:2:0",
             "workload": "gcc", "point": 2, "index": 0},
            {"kind": "workload", "workload": "gcc"},
        ]

    def test_tallies_dedupe_and_skip_harness_outcomes(self):
        tallies = journal_point_tallies(self._entries())
        assert tallies == {"gcc": {1: [2, 1]}}

    def test_point_margins_match_wilson(self):
        from repro.util.stats import wilson_margin

        rows = point_margins(journal_point_tallies(self._entries()))
        assert rows["gcc"][0]["margin"] == pytest.approx(wilson_margin(1, 2))

    def test_format_reports_convergence_against_target(self):
        text = format_point_margins(
            journal_point_tallies(self._entries()), target=0.5
        )
        assert "gcc" in text
        assert "<= 0.5" in text


class TestPreview:
    def test_preview_matches_the_run(self, tmp_path):
        rows = preview_plan(ARCH_CONFIG, PLANNER)
        assert len(rows) == 1
        row = rows[0]
        assert row["workload"] == "gcc"
        assert row["budget"] == 40
        path, report = _adaptive_journal(tmp_path, "run.jsonl")
        sentinel = next(
            e for e in read_journal(path) if e.get("kind") == "workload"
        )
        assert len(sentinel["planner_points"]) == row["points"]
        assert len(sentinel["prescreened_points"]) == row["prescreened"]
