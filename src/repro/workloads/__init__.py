"""Synthetic SPEC2000int-like workload kernels.

The paper's campaigns run seven SPEC2000 integer benchmarks: bzip2, gap,
gcc, gzip, mcf, parser, and vortex. We cannot ship SPEC binaries, so each
benchmark is replaced by a small assembly kernel that mimics its dominant
computational behaviour (see each generator's docstring). What the
fault-injection studies measure — how a corrupted value propagates through
address arithmetic, data computation, and control flow — depends on that
instruction mix, not on the benchmark's full semantics.

Every kernel writes its results to known symbols and the generator returns
the expected values (computed independently in Python), so the test suite
can verify both simulators execute the kernels correctly.
"""

from repro.workloads.registry import (
    EXTRA_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    WorkloadBundle,
    build_workload,
    build_all_workloads,
)

__all__ = [
    "EXTRA_WORKLOAD_NAMES",
    "WORKLOAD_NAMES",
    "WorkloadBundle",
    "build_all_workloads",
    "build_workload",
]
