"""The campaign service: fault injection at fleet scale.

Statistical fault-injection campaigns (the paper's Section 3 methodology)
are embarrassingly parallel *because* of a deliberate property of this
reproduction: every trial's randomness derives from
``(seed, workload, point, index)`` alone. This package exploits that to
turn campaigns into a service — jobs sharded into ``(workload,
seed-slice)`` work units, a pull-based worker protocol with leases and
heartbeats so a dead worker's units are requeued, a SQLite result store
ingesting trial records idempotently, and an HTTP JSON API with SSE
progress streaming. A finished job's journal is **bit-identical** to a
serial ``run_campaign`` of the same spec (see
:mod:`repro.service.shard` for the invariant and DESIGN.md for why it
holds).

Layers:

- :mod:`repro.service.spec` — job specs and config reconstruction.
- :mod:`repro.service.shard` — work units and the stride-sharding model.
- :mod:`repro.service.store` — the SQLite job/unit/trial store.
- :mod:`repro.service.scheduler` — lifecycle, leases, finalization.
- :mod:`repro.service.worker` — unit execution, local pool, remote loop.
- :mod:`repro.service.api` — the asyncio HTTP front end.
- :mod:`repro.service.client` — the urllib client the CLI uses.

CLI: ``repro serve`` runs scheduler + API + local pool; ``repro submit``
submits and optionally waits; ``repro jobs`` lists/inspects/cancels;
``repro worker`` drains the queue from another process or machine.
"""

from repro.service.api import CampaignService
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.scheduler import CampaignScheduler
from repro.service.shard import WorkUnit, shard_job
from repro.service.spec import JobSpec, ServiceError, build_config
from repro.service.store import ResultStore
from repro.service.worker import LocalWorkerPool, RemoteWorker, execute_unit

__all__ = [
    "CampaignScheduler",
    "CampaignService",
    "JobSpec",
    "LocalWorkerPool",
    "RemoteWorker",
    "ResultStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "WorkUnit",
    "build_config",
    "execute_unit",
    "shard_job",
]
