"""Differential testing: random programs on both simulators.

Hypothesis generates random (but well-formed) instruction sequences; the
architectural simulator and the out-of-order pipeline must agree on the
final architectural state. This is the strongest guard on the equivalence
the fault campaigns rely on.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import load_program
from repro.isa.assembler import assemble
from repro.uarch import load_pipeline

OPERATES = ("addq", "subq", "addl", "subl", "and", "bis", "xor",
            "sll", "srl", "sra", "cmpeq", "cmplt", "cmpult", "mulq", "mull")
REGS = [f"r{n}" for n in range(1, 9)]


@st.composite
def straight_line_program(draw):
    lines = [".text", "start:"]
    # Seed registers with small immediates.
    for reg in REGS[:4]:
        lines.append(f"  li {reg}, {draw(st.integers(0, 30000))}")
    for _ in range(draw(st.integers(3, 25))):
        mnemonic = draw(st.sampled_from(OPERATES))
        ra = draw(st.sampled_from(REGS))
        use_literal = draw(st.booleans())
        rb = str(draw(st.integers(0, 255))) if use_literal else draw(st.sampled_from(REGS))
        rc = draw(st.sampled_from(REGS))
        lines.append(f"  {mnemonic} {ra}, {rb}, {rc}")
    lines.append("  halt")
    return "\n".join(lines) + "\n"


@st.composite
def memory_program(draw):
    lines = [
        ".text",
        "start:  la r9, buffer",
    ]
    for reg in REGS[:3]:
        lines.append(f"  li {reg}, {draw(st.integers(0, 30000))}")
    for _ in range(draw(st.integers(3, 15))):
        action = draw(st.sampled_from(["store", "load", "alu"]))
        slot = draw(st.integers(0, 7)) * 8
        reg = draw(st.sampled_from(REGS[:6]))
        if action == "store":
            lines.append(f"  stq {reg}, {slot}(r9)")
        elif action == "load":
            lines.append(f"  ldq {reg}, {slot}(r9)")
        else:
            other = draw(st.sampled_from(REGS[:6]))
            lines.append(f"  addq {reg}, {other}, {reg}")
    lines.append("  halt")
    lines.append(".data")
    values = ", ".join(str(draw(st.integers(0, 2**32))) for _ in range(8))
    lines.append(f"buffer: .quad {values}")
    return "\n".join(lines) + "\n"


@st.composite
def loop_program(draw):
    count = draw(st.integers(1, 12))
    body = []
    for _ in range(draw(st.integers(1, 6))):
        mnemonic = draw(st.sampled_from(("addq", "xor", "sll", "addl")))
        reg = draw(st.sampled_from(REGS[:4]))
        literal = draw(st.integers(0, 255))
        body.append(f"  {mnemonic} {reg}, {literal}, {reg}")
    lines = (
        [".text", "start:", f"  li r7, {count}", "loop:"]
        + body
        + ["  subq r7, 1, r7", "  bne r7, loop", "  halt"]
    )
    return "\n".join(lines) + "\n"


def run_both(source: str):
    program = assemble(source, "diff")
    arch = load_program(program)
    arch.run(200_000)
    pipeline = load_pipeline(program)
    pipeline.run(400_000)
    return arch, pipeline


@settings(max_examples=25, deadline=None)
@given(straight_line_program())
def test_straight_line_equivalence(source):
    arch, pipeline = run_both(source)
    assert pipeline.halted
    assert pipeline.arch_reg_values() == arch.state.regs


@settings(max_examples=25, deadline=None)
@given(memory_program())
def test_memory_program_equivalence(source):
    arch, pipeline = run_both(source)
    assert pipeline.halted
    assert pipeline.arch_reg_values() == arch.state.regs
    assert pipeline.memory.equals(arch.state.memory)


@settings(max_examples=15, deadline=None)
@given(loop_program())
def test_loop_program_equivalence(source):
    arch, pipeline = run_both(source)
    assert pipeline.halted
    assert pipeline.arch_reg_values() == arch.state.regs
    assert pipeline.retired_count == arch.retired
