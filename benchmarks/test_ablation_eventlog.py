"""Ablation: the branch-outcome event log during re-execution.

Paper (Section 3.2.3 and 5.2.3): the event log provides "perfect
prediction of control flow, eliminating control misspeculations during
re-execution". We measure ReStore's cycle overhead with and without the
log and the misprediction count during re-executed windows.
"""

from repro.restore import ReStoreController
from repro.uarch import load_pipeline
from repro.util.tables import format_table
from repro.workloads import build_workload

from .conftest import emit


WORKLOAD = "bzip2"  # the most rollback-prone kernel
INTERVAL = 50


def run_config(use_event_log: bool):
    bundle = build_workload(WORKLOAD)
    pipeline = load_pipeline(bundle.program)
    controller = ReStoreController(
        pipeline, interval=INTERVAL, use_event_log=use_event_log
    )
    pipeline.run(2_000_000)
    assert pipeline.halted and bundle.check(pipeline.memory) == []
    return pipeline, controller


def test_event_log_accelerates_reexecution(benchmark):
    def run_both():
        with_log = run_config(True)
        without_log = run_config(False)
        return with_log, without_log

    (with_pipe, with_ctl), (without_pipe, without_ctl) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    text = format_table(
        ["configuration", "cycles", "rollbacks", "mispredicts"],
        [
            ["event log on", with_pipe.cycle_count, with_ctl.stats.rollbacks,
             with_pipe.mispredict_count],
            ["event log off", without_pipe.cycle_count,
             without_ctl.stats.rollbacks, without_pipe.mispredict_count],
        ],
        title=(
            f"Event-log ablation ({WORKLOAD}, interval {INTERVAL}): "
            "perfect replay prediction vs none"
        ),
    )
    emit("ablation_eventlog", text)

    # The oracle must not make things worse; typically it removes the
    # re-executed windows' mispredictions entirely.
    assert with_pipe.mispredict_count <= without_pipe.mispredict_count
    assert with_pipe.cycle_count <= without_pipe.cycle_count * 1.05
