"""Optional extra workload kernels (crafty, twolf)."""

import pytest

from repro.arch import StopReason, load_program
from repro.uarch import load_pipeline
from repro.workloads import EXTRA_WORKLOAD_NAMES, WORKLOAD_NAMES, build_workload


class TestRegistrySeparation:
    def test_extras_are_not_in_the_paper_set(self):
        assert not set(EXTRA_WORKLOAD_NAMES) & set(WORKLOAD_NAMES)

    def test_extras_buildable_by_name(self):
        for name in EXTRA_WORKLOAD_NAMES:
            assert build_workload(name).name == name


@pytest.mark.parametrize("name", EXTRA_WORKLOAD_NAMES)
class TestExtras:
    def test_architectural_correctness(self, name):
        bundle = build_workload(name)
        simulator = load_program(bundle.program)
        assert simulator.run(400_000) is StopReason.HALTED
        assert bundle.check(simulator.state.memory) == []

    def test_pipeline_equivalence(self, name):
        bundle = build_workload(name)
        simulator = load_program(bundle.program)
        trace = simulator.run_with_trace(400_000)
        pipeline = load_pipeline(bundle.program, collect_retired=True)
        pipeline.run(800_000)
        assert pipeline.halted
        assert [record.pc for record in pipeline.retired_log] == trace.pcs
        assert bundle.check(pipeline.memory) == []

    def test_scaling(self, name):
        small = build_workload(name, scale=1)
        large = build_workload(name, scale=2)
        small_sim = load_program(small.program)
        large_sim = load_program(large.program)
        small_sim.run(2_000_000)
        large_sim.run(2_000_000)
        assert large_sim.retired > small_sim.retired
        assert large.check(large_sim.state.memory) == []
