"""Figure 5: ReStore coverage with JRS-gated control-flow symptoms.

Paper (Section 5.2.1): with the conservative JRS confidence predictor the
cfv category covers "only 5%" at a 100-instruction interval (a perfect
confidence predictor "would yield nearly twice the error coverage"), and
ReStore overall halves the failure rate: ~7% -> ~3.5% at interval 100,
i.e. a 2x MTBF improvement.
"""

from repro.faults.uarch_campaign import FIGURE46_INTERVALS
from repro.util.tables import format_table

from .conftest import emit, run_shared_uarch_campaign


def test_fig5_jrs_gated_coverage(benchmark):
    result = benchmark.pedantic(run_shared_uarch_campaign, rounds=1, iterations=1)

    baseline_failure = result.baseline_failure_estimate()
    restore_failure = result.failure_estimate(100, require_confident_cfv=True)
    improvement = (
        baseline_failure.proportion / restore_failure.proportion
        if restore_failure.proportion
        else float("inf")
    )
    jrs_cfv = result.counter(100, require_confident_cfv=True).proportion("cfv")
    perfect_cfv = result.counter(100).proportion("cfv")
    headline = format_table(
        ["metric", "paper", "measured"],
        [
            ["baseline failure rate", "~7%", f"{baseline_failure.proportion:.1%}"],
            ["ReStore failure rate @100", "~3.5%",
             f"{restore_failure.proportion:.1%}"],
            ["MTBF improvement", "~2x", f"{improvement:.1f}x"],
            ["cfv coverage @100 (JRS)", "low (~5% of failures)",
             f"{jrs_cfv:.1%} of trials"],
            ["cfv coverage @100 (perfect)", "~2x the JRS coverage",
             f"{perfect_cfv:.1%} of trials"],
        ],
        title="Figure 5 headline comparison",
    )
    emit(
        "fig5_restore_baseline",
        "\n\n".join(
            [
                result.table(
                    FIGURE46_INTERVALS,
                    require_confident_cfv=True,
                    title="Figure 5: ReStore coverage (JRS-gated cfv) vs interval",
                ),
                headline,
            ]
        ),
    )

    # ReStore must reduce failures, and meaningfully so at interval 100.
    assert restore_failure.proportion < baseline_failure.proportion
    assert improvement > 1.3
    # JRS is conservative: it detects at most what perfect identification does.
    assert jrs_cfv <= perfect_cfv
