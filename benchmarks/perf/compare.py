"""Compare a perf run against the committed baseline and gate regressions.

Exit status 0 when every shared throughput metric is within the allowed
regression threshold (and any ``--require`` floors hold), 1 on usage or
schema errors, 2 when the gate fails. Usage::

    python benchmarks/perf/compare.py benchmarks/out/perf_baseline.json \
        benchmarks/out/perf_current.json --threshold 0.15 \
        --require arch_speedup=3.0 --require uarch_speedup=1.5

All metrics are higher-is-better throughputs or ratios. A regression of
more than ``--threshold`` (fractional, default 0.15) on any metric fails
the gate; ``--require name=floor`` additionally fails when the current
value of ``name`` is below ``floor`` (used for the machine-independent
speedup ratios, which do not drift with runner hardware).

Accepts both ``repro-perf/1`` and ``repro-service-bench/1`` reports;
baseline and current must carry the same schema.
"""

from __future__ import annotations

import argparse
import json
import sys

KNOWN_SCHEMAS = (
    "repro-perf/1",
    "repro-service-bench/1",
    "repro-planner-savings/1",
)


def load_report(path: str) -> dict:
    with open(path) as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise ValueError(f"{path}: unexpected schema {schema!r}")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path}: no metrics")
    for name, entry in metrics.items():
        if not isinstance(entry.get("value"), (int, float)):
            raise ValueError(f"{path}: metric {name} has no numeric value")
    return report


def parse_requirement(text: str) -> tuple[str, float]:
    name, _, floor = text.partition("=")
    if not name or not floor:
        raise ValueError(f"--require expects name=floor, got {text!r}")
    return name, float(floor)


def compare(baseline: dict, current: dict, threshold: float,
            requirements: list[tuple[str, float]]) -> tuple[list[str], list[str]]:
    """Returns (report_lines, failure_lines)."""
    lines: list[str] = []
    failures: list[str] = []
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    shared = sorted(set(base_metrics) & set(cur_metrics))
    if not shared:
        failures.append("no shared metrics between baseline and current run")
    header = f"{'metric':<26} {'baseline':>14} {'current':>14} {'change':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for name in shared:
        base = float(base_metrics[name]["value"])
        cur = float(cur_metrics[name]["value"])
        change = (cur - base) / base if base else 0.0
        flag = ""
        if base and change < -threshold:
            flag = "  REGRESSION"
            failures.append(
                f"{name}: {cur:,.1f} is {-change:.1%} below baseline "
                f"{base:,.1f} (threshold {threshold:.0%})"
            )
        lines.append(f"{name:<26} {base:>14,.1f} {cur:>14,.1f} {change:>+8.1%}{flag}")
    missing = sorted(set(base_metrics) - set(cur_metrics))
    for name in missing:
        lines.append(f"{name:<26} {'(missing in current run)':>38}")
    for name, floor in requirements:
        entry = cur_metrics.get(name)
        if entry is None:
            failures.append(f"required metric {name} missing from current run")
            continue
        value = float(entry["value"])
        status = "ok" if value >= floor else "BELOW FLOOR"
        lines.append(f"require {name:<18} {floor:>14,.2f} {value:>14,.2f}  {status}")
        if value < floor:
            failures.append(f"{name}: {value:,.2f} is below required floor {floor:,.2f}")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline perf JSON")
    parser.add_argument("current", help="current perf JSON")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional regression (default 0.15)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME=FLOOR",
                        help="fail unless current metric NAME >= FLOOR")
    args = parser.parse_args(argv)
    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
        if baseline["schema"] != current["schema"]:
            raise ValueError(
                f"schema mismatch: baseline is {baseline['schema']!r}, "
                f"current is {current['schema']!r}"
            )
        requirements = [parse_requirement(text) for text in args.require]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    lines, failures = compare(baseline, current, args.threshold, requirements)
    print("\n".join(lines))
    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
