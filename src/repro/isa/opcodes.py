"""Opcode and function-code tables.

Instruction words are 32 bits with the primary opcode in bits [31:26],
following the Alpha formats:

- **operate** (register form):   ``op ra rb sbz(3) 0 func(7) rc``
- **operate** (literal form):    ``op ra lit(8)    1 func(7) rc``
- **memory**:                    ``op ra rb disp(16, signed bytes)``
- **jump** (memory format):      ``op ra rb hint(2) disp(14)``
- **branch**:                    ``op ra disp(21, signed words)``

The opcode values match Alpha where the instruction exists in Alpha; the
function codes for the integer operate groups are Alpha's. ``HALT`` is the
all-zero word (primary opcode 0), so a wild jump into zeroed memory stops
the machine rather than executing garbage — any other opcode-0 pattern is an
illegal instruction, which matters for fault injections that corrupt
instruction words in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Format(Enum):
    """Instruction word layout families."""

    OPERATE = "operate"
    MEMORY = "memory"
    JUMP = "jump"
    BRANCH = "branch"
    PAL = "pal"  # opcode 0: HALT / illegal


# Primary opcodes.
OP_PAL = 0x00
OP_LDA = 0x08
OP_LDAH = 0x09
OP_LDBU = 0x0A
OP_STB = 0x0E
OP_INTA = 0x10  # integer arithmetic group
OP_INTL = 0x11  # integer logic group
OP_INTS = 0x12  # integer shift group
OP_INTM = 0x13  # integer multiply group
OP_JMP = 0x1A
OP_LDL = 0x28
OP_LDQ = 0x29
OP_STL = 0x2C
OP_STQ = 0x2D
OP_BR = 0x30
OP_BSR = 0x34
OP_BLBC = 0x38
OP_BEQ = 0x39
OP_BLT = 0x3A
OP_BLE = 0x3B
OP_BLBS = 0x3C
OP_BNE = 0x3D
OP_BGE = 0x3E
OP_BGT = 0x3F

# Function codes within OP_INTA (Alpha values).
FUNC_ADDL = 0x00
FUNC_SUBL = 0x09
FUNC_ADDQ = 0x20
FUNC_SUBQ = 0x29
FUNC_CMPULT = 0x1D
FUNC_CMPEQ = 0x2D
FUNC_CMPULE = 0x3D
FUNC_CMPLT = 0x4D
FUNC_CMPLE = 0x6D
FUNC_ADDQV = 0x60  # trapping on signed overflow
FUNC_SUBQV = 0x69

# Function codes within OP_INTL.
FUNC_AND = 0x00
FUNC_BIC = 0x08
FUNC_BIS = 0x20
FUNC_ORNOT = 0x28
FUNC_XOR = 0x40
FUNC_EQV = 0x48
FUNC_CMOVEQ = 0x24
FUNC_CMOVNE = 0x26
FUNC_CMOVLT = 0x44
FUNC_CMOVGE = 0x46

# Function codes within OP_INTS.
FUNC_SLL = 0x39
FUNC_SRL = 0x34
FUNC_SRA = 0x3C

# Function codes within OP_INTM.
FUNC_MULL = 0x00
FUNC_MULQ = 0x20
FUNC_UMULH = 0x30
FUNC_MULQV = 0x60  # trapping on signed overflow

# Jump hint values (bits [15:14] of the jump format).
JUMP_HINT_JMP = 0
JUMP_HINT_JSR = 1
JUMP_HINT_RET = 2
JUMP_HINT_COROUTINE = 3


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    opcode: int
    format: Format
    func: int | None = None  # operate groups only
    jump_hint: int | None = None  # jump format only
    traps_overflow: bool = False


_OPERATE_SPECS = [
    OpSpec("addl", OP_INTA, Format.OPERATE, func=FUNC_ADDL),
    OpSpec("subl", OP_INTA, Format.OPERATE, func=FUNC_SUBL),
    OpSpec("addq", OP_INTA, Format.OPERATE, func=FUNC_ADDQ),
    OpSpec("subq", OP_INTA, Format.OPERATE, func=FUNC_SUBQ),
    OpSpec("cmpult", OP_INTA, Format.OPERATE, func=FUNC_CMPULT),
    OpSpec("cmpeq", OP_INTA, Format.OPERATE, func=FUNC_CMPEQ),
    OpSpec("cmpule", OP_INTA, Format.OPERATE, func=FUNC_CMPULE),
    OpSpec("cmplt", OP_INTA, Format.OPERATE, func=FUNC_CMPLT),
    OpSpec("cmple", OP_INTA, Format.OPERATE, func=FUNC_CMPLE),
    OpSpec("addqv", OP_INTA, Format.OPERATE, func=FUNC_ADDQV, traps_overflow=True),
    OpSpec("subqv", OP_INTA, Format.OPERATE, func=FUNC_SUBQV, traps_overflow=True),
    OpSpec("and", OP_INTL, Format.OPERATE, func=FUNC_AND),
    OpSpec("bic", OP_INTL, Format.OPERATE, func=FUNC_BIC),
    OpSpec("bis", OP_INTL, Format.OPERATE, func=FUNC_BIS),
    OpSpec("ornot", OP_INTL, Format.OPERATE, func=FUNC_ORNOT),
    OpSpec("xor", OP_INTL, Format.OPERATE, func=FUNC_XOR),
    OpSpec("eqv", OP_INTL, Format.OPERATE, func=FUNC_EQV),
    OpSpec("cmoveq", OP_INTL, Format.OPERATE, func=FUNC_CMOVEQ),
    OpSpec("cmovne", OP_INTL, Format.OPERATE, func=FUNC_CMOVNE),
    OpSpec("cmovlt", OP_INTL, Format.OPERATE, func=FUNC_CMOVLT),
    OpSpec("cmovge", OP_INTL, Format.OPERATE, func=FUNC_CMOVGE),
    OpSpec("sll", OP_INTS, Format.OPERATE, func=FUNC_SLL),
    OpSpec("srl", OP_INTS, Format.OPERATE, func=FUNC_SRL),
    OpSpec("sra", OP_INTS, Format.OPERATE, func=FUNC_SRA),
    OpSpec("mull", OP_INTM, Format.OPERATE, func=FUNC_MULL),
    OpSpec("mulq", OP_INTM, Format.OPERATE, func=FUNC_MULQ),
    OpSpec("umulh", OP_INTM, Format.OPERATE, func=FUNC_UMULH),
    OpSpec("mulqv", OP_INTM, Format.OPERATE, func=FUNC_MULQV, traps_overflow=True),
]

_MEMORY_SPECS = [
    OpSpec("lda", OP_LDA, Format.MEMORY),
    OpSpec("ldah", OP_LDAH, Format.MEMORY),
    OpSpec("ldbu", OP_LDBU, Format.MEMORY),
    OpSpec("stb", OP_STB, Format.MEMORY),
    OpSpec("ldl", OP_LDL, Format.MEMORY),
    OpSpec("ldq", OP_LDQ, Format.MEMORY),
    OpSpec("stl", OP_STL, Format.MEMORY),
    OpSpec("stq", OP_STQ, Format.MEMORY),
]

_JUMP_SPECS = [
    OpSpec("jmp", OP_JMP, Format.JUMP, jump_hint=JUMP_HINT_JMP),
    OpSpec("jsr", OP_JMP, Format.JUMP, jump_hint=JUMP_HINT_JSR),
    OpSpec("ret", OP_JMP, Format.JUMP, jump_hint=JUMP_HINT_RET),
    OpSpec("jsr_coroutine", OP_JMP, Format.JUMP, jump_hint=JUMP_HINT_COROUTINE),
]

_BRANCH_SPECS = [
    OpSpec("br", OP_BR, Format.BRANCH),
    OpSpec("bsr", OP_BSR, Format.BRANCH),
    OpSpec("blbc", OP_BLBC, Format.BRANCH),
    OpSpec("beq", OP_BEQ, Format.BRANCH),
    OpSpec("blt", OP_BLT, Format.BRANCH),
    OpSpec("ble", OP_BLE, Format.BRANCH),
    OpSpec("blbs", OP_BLBS, Format.BRANCH),
    OpSpec("bne", OP_BNE, Format.BRANCH),
    OpSpec("bge", OP_BGE, Format.BRANCH),
    OpSpec("bgt", OP_BGT, Format.BRANCH),
]

_PAL_SPECS = [OpSpec("halt", OP_PAL, Format.PAL)]

ALL_SPECS = _OPERATE_SPECS + _MEMORY_SPECS + _JUMP_SPECS + _BRANCH_SPECS + _PAL_SPECS

SPEC_BY_MNEMONIC = {spec.mnemonic: spec for spec in ALL_SPECS}

# Lookup for decode: operate groups key on (opcode, func); others on opcode.
OPERATE_OPCODES = {OP_INTA, OP_INTL, OP_INTM, OP_INTS}
SPEC_BY_OPCODE_FUNC = {
    (spec.opcode, spec.func): spec for spec in _OPERATE_SPECS
}
SPEC_BY_OPCODE = {
    spec.opcode: spec for spec in _MEMORY_SPECS + _BRANCH_SPECS
}
SPEC_BY_JUMP_HINT = {spec.jump_hint: spec for spec in _JUMP_SPECS}

LOAD_OPCODES = {OP_LDBU, OP_LDL, OP_LDQ}
STORE_OPCODES = {OP_STB, OP_STL, OP_STQ}
COND_BRANCH_OPCODES = {
    OP_BLBC,
    OP_BEQ,
    OP_BLT,
    OP_BLE,
    OP_BLBS,
    OP_BNE,
    OP_BGE,
    OP_BGT,
}

# Access sizes in bytes for the memory operations.
ACCESS_SIZE = {
    OP_LDBU: 1,
    OP_STB: 1,
    OP_LDL: 4,
    OP_STL: 4,
    OP_LDQ: 8,
    OP_STQ: 8,
}
