"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables or figures and writes
its rendered output to ``benchmarks/out/<name>.txt`` (and stdout), so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a
single ``pytest benchmarks/ --benchmark-only`` run.

Campaign sizes default to laptop scale; environment variables scale them
toward the paper's 12-13k trials per experiment:

- ``REPRO_TRIALS_ARCH``  (default 210)  trials/workload for Figure 2
- ``REPRO_TRIALS_UARCH`` (default 84)   trials/workload for Figures 4-6
- ``REPRO_POINTS_UARCH`` (default 28)   injection points/workload
- ``REPRO_WINDOW_CYCLES`` (default 2500) post-injection window
- ``REPRO_PERF_WORKLOADS`` (default a 4-kernel subset) for Figure 7
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def emit(name: str, text: str) -> None:
    """Print a reproduced table and archive it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    print(f"\n{text}\n")
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def arch_campaign():
    """The Figure 2 campaign (shared by fig2 and the headline bench)."""
    from repro.faults import ArchCampaignConfig, run_arch_campaign

    config = ArchCampaignConfig(
        trials_per_workload=env_int("REPRO_TRIALS_ARCH", 210),
        injection_points=env_int("REPRO_POINTS_ARCH", 70),
    )
    return run_arch_campaign(config)


_UARCH_CACHE: dict[str, object] = {}


def run_shared_uarch_campaign():
    """One microarchitectural campaign serving Figures 4, 5, 6 and §5.1.2."""
    if "result" not in _UARCH_CACHE:
        from repro.faults import UarchCampaignConfig, run_uarch_campaign

        config = UarchCampaignConfig(
            trials_per_workload=env_int("REPRO_TRIALS_UARCH", 84),
            injection_points=env_int("REPRO_POINTS_UARCH", 28),
            window_cycles=env_int("REPRO_WINDOW_CYCLES", 2500),
        )
        _UARCH_CACHE["result"] = run_uarch_campaign(config)
    return _UARCH_CACHE["result"]


@pytest.fixture(scope="session")
def uarch_campaign():
    return run_shared_uarch_campaign()


def perf_workloads() -> tuple[str, ...]:
    names = os.environ.get("REPRO_PERF_WORKLOADS", "gcc,gzip,mcf,vortex")
    return tuple(name.strip() for name in names.split(",") if name.strip())
