"""Deterministic random number generation for fault-injection campaigns.

Statistical fault injection needs reproducible, independently-seeded random
streams: one for selecting injection cycles, one for selecting target bits,
one per workload for data generation, and so on. ``DeterministicRng`` wraps
``random.Random`` with a few convenience draws, and ``derive_seed`` produces
stable child seeds from a parent seed plus a string label so that adding a
new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``parent_seed`` and ``label``."""
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


class DeterministicRng:
    """A seeded random stream with draws used across the campaign code."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def child(self, label: str) -> "DeterministicRng":
        """A new independent stream derived from this one's seed."""
        return DeterministicRng(derive_seed(self.seed, label))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Uniform integer in [0, stop)."""
        return self._rng.randrange(stop)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Choose ``count`` distinct elements."""
        return self._rng.sample(items, count)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def bits(self, width: int) -> int:
        """A uniform ``width``-bit unsigned integer."""
        return self._rng.getrandbits(width)
