"""Cache, TLB, and MSHR timing models."""

import pytest

from repro.uarch.caches import MshrFile, SetAssociativeCache, Tlb
from repro.uarch.latches import StateRegistry


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=32)
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=32)
        cache.access(0x100)
        assert cache.access(0x11F)  # same 32-byte line

    def test_lru_eviction(self):
        cache = SetAssociativeCache(sets=1, ways=2, line_bytes=32)
        cache.access(0)      # A
        cache.access(32)     # B
        cache.access(0)      # A is now MRU
        cache.access(64)     # C evicts B
        assert cache.access(0)       # A survives
        assert not cache.access(32)  # B was evicted

    def test_probe_does_not_fill(self):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=32)
        assert not cache.probe(0x100)
        assert not cache.access(0x100)  # still a miss: probe didn't fill
        assert cache.probe(0x100)

    def test_sets_power_of_two(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(sets=3, ways=2, line_bytes=32)


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=4)
        assert not tlb.access(0x10000)
        assert tlb.access(0x10001)  # same page

    def test_fifo_replacement(self):
        tlb = Tlb(entries=2, page_shift=13)
        pages = [0, 1, 2]
        for page in pages:
            tlb.access(page << 13)
        assert not tlb.access(0)       # evicted
        assert tlb.access(2 << 13)     # recent survives

    def test_eviction_order_is_fifo_not_lru(self):
        """A hit must not refresh an entry's position: the victim is the
        oldest *insertion*, even if it was just re-touched."""
        tlb = Tlb(entries=3, page_shift=13)
        for page in (0, 1, 2):
            tlb.access(page << 13)
        assert tlb.access(0)        # hit; FIFO order unchanged
        tlb.access(3 << 13)         # miss: evicts page 0 (oldest insert)
        assert tlb.access(1 << 13)  # LRU would have evicted this instead
        assert not tlb.access(0)    # the just-touched page is the one gone


class TestCacheLruEdgeCases:
    def test_probe_does_not_touch_recency(self):
        """probe() must be a pure lookup: after probing the LRU line, it
        must still be the next eviction victim."""
        cache = SetAssociativeCache(sets=1, ways=2, line_bytes=32)
        cache.access(0)       # A
        cache.access(32)      # B; A is now LRU
        assert cache.probe(0)
        cache.access(64)      # C must evict A, not B
        assert cache.access(32)      # B survives
        assert not cache.access(0)   # A was evicted despite the probe

    def test_single_way_set_always_replaces(self):
        cache = SetAssociativeCache(sets=1, ways=1, line_bytes=32)
        assert not cache.access(0)
        assert cache.access(0)
        assert not cache.access(32)   # direct-mapped conflict
        assert not cache.access(0)
        assert cache.hits == 1 and cache.misses == 3

    def test_single_way_multiple_sets(self):
        cache = SetAssociativeCache(sets=2, ways=1, line_bytes=32)
        cache.access(0)    # set 0
        cache.access(32)   # set 1 — different set, no conflict
        assert cache.access(0)
        assert cache.access(32)


class TestCacheStateRegistration:
    def test_registers_tag_valid_lru_as_mem_class(self):
        cache = SetAssociativeCache(sets=4, ways=2, line_bytes=32)
        registry = StateRegistry()
        cache.register_state(registry, "dcache")
        names = {f.name.split("[")[0] for f in registry.fields}
        assert names == {"dcache.tag", "dcache.valid", "dcache.lru"}
        assert {f.state_class for f in registry.fields} == {"mem"}
        assert {f.structure for f in registry.fields} == {"dcache"}
        # 4 sets x 2 ways of (tag + valid + lru) slots.
        assert len(registry.fields) == 3 * 8

    def test_flipping_a_registered_valid_bit_evicts_the_line(self):
        cache = SetAssociativeCache(sets=1, ways=2, line_bytes=32)
        registry = StateRegistry()
        cache.register_state(registry, "dcache")
        cache.access(0)
        assert cache.access(0)
        way = cache._order[0]  # the MRU way holds line 0
        flip_field = next(
            f for f in registry.fields if f.name == f"dcache.valid[{way}]"
        )
        flip_field.flip(0)
        assert not cache.access(0)  # the line silently vanished

    def test_tag_bits_for_non_power_of_two_line(self):
        cache = SetAssociativeCache(sets=4, ways=1, line_bytes=48)
        assert cache.tag_bits == 64  # no compact split: full address tag


class TestMshrFile:
    def test_allocate_and_release(self):
        mshr = MshrFile(entries=2)
        assert mshr.allocate(0x100) == 0
        assert mshr.allocate(0x200) == 1
        assert mshr.occupancy() == 2 and mshr.is_full()
        assert mshr.release(0x100)
        assert mshr.occupancy() == 1
        assert mshr.allocate(0x300) == 0  # freed slot is reused

    def test_full_file_returns_none_and_counts_overflow(self):
        mshr = MshrFile(entries=1)
        assert mshr.allocate(0x100) == 0
        assert mshr.allocate(0x200) is None
        assert mshr.overflows == 1 and mshr.allocations == 1

    def test_release_without_match_reports_spurious(self):
        mshr = MshrFile(entries=2)
        mshr.allocate(0x100)
        assert not mshr.release(0x999)
        assert mshr.occupancy() == 1

    def test_clear_discards_all_outstanding_misses(self):
        mshr = MshrFile(entries=2)
        mshr.allocate(0x100)
        mshr.allocate(0x200)
        mshr.clear()
        assert mshr.occupancy() == 0
        assert not mshr.release(0x100)

    def test_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            MshrFile(entries=0)

    def test_registers_valid_and_addr_as_mem_class(self):
        mshr = MshrFile(entries=4)
        registry = StateRegistry()
        mshr.register_state(registry)
        names = {f.name.split("[")[0] for f in registry.fields}
        assert names == {"mshr.valid", "mshr.addr"}
        assert {f.state_class for f in registry.fields} == {"mem"}
        assert registry.total_bits() == 4 * (1 + 64)

    def test_flipped_valid_bit_makes_the_next_fill_spurious(self):
        """The corruption signature the spurious-memop detector keys on:
        a dropped MSHR entry means its fill finds nothing to release."""
        mshr = MshrFile(entries=2)
        registry = StateRegistry()
        mshr.register_state(registry)
        mshr.allocate(0x100)
        next(f for f in registry.fields if f.name == "mshr.valid[0]").flip(0)
        assert not mshr.release(0x100)
