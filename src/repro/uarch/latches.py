"""Bit-addressable state elements and the injection registry.

Every latch and RAM cell of the pipeline registers itself here, giving the
fault-injection framework a uniform view of the machine's state: it can
count bits, pick a uniformly random (field, bit) pair, flip it, snapshot the
whole machine, and diff two snapshots — exactly the operations the paper's
latch-level campaigns need.

State classes mirror the paper's taxonomy:

- ``ram``  — SRAM arrays: physical register file, alias tables, free lists,
  fetch queue, store buffer ("structures that were implemented as SRAMs in
  our processor include the register file and register alias tables").
  These are the ECC targets of the "low-hanging-fruit" hardened pipeline.
- ``ctrl`` — control word latches: ROB and scheduler control fields, LSQ
  control bits. These are the parity targets of the hardened pipeline.
- ``data`` — datapath latches: in-flight addresses, values, and PCs that
  remain unprotected even in the hardened pipeline; ReStore's symptom
  coverage is what protects them.
- ``mem``  — memory-hierarchy metadata: cache tag/valid/LRU arrays and the
  MSHR file. The paper excludes these from its campaigns ("caches are
  easily protected by ECC or parity"), so they register only when a
  pipeline is built with ``memhier_targets`` — the opt-in fault surface
  behind the miss-rate-spike / stall-outlier / spurious-memory-op
  detector study. Tag-only caches make this class timing-only corruption:
  it can never change an architectural value directly.

Predictor tables intentionally never register ("corrupt predictor table
entries cannot lead to failure"), and TLBs stay excluded even under
``memhier_targets`` — their FIFO page list has no fixed latch encoding.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable

from repro.util.rng import DeterministicRng

STATE_CLASSES = ("ram", "ctrl", "data", "mem")

# State classes counted as pipeline latches for the Section 5.1.2 study.
LATCH_CLASSES = ("ctrl", "data")


class StateField:
    """One named, fixed-width state element with get/set accessors."""

    __slots__ = ("name", "structure", "state_class", "width", "get", "set")

    def __init__(
        self,
        name: str,
        structure: str,
        state_class: str,
        width: int,
        get: Callable[[], int],
        set: Callable[[int], None],
    ):
        if state_class not in STATE_CLASSES:
            raise ValueError(f"unknown state class {state_class!r}")
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.name = name
        self.structure = structure
        self.state_class = state_class
        self.width = width
        self.get = get
        self.set = set

    def flip(self, bit: int) -> None:
        if not 0 <= bit < self.width:
            raise ValueError(f"bit {bit} out of range for {self.name}")
        self.set(self.get() ^ (1 << bit))

    def __repr__(self) -> str:
        return f"StateField({self.name}, {self.state_class}, {self.width}b)"


class StateRegistry:
    """All injectable state of one pipeline instance."""

    def __init__(self):
        self.fields: list[StateField] = []
        self._prefix_bits: list[int] | None = None

    # ---------------------------------------------------------- registering

    def register(
        self,
        name: str,
        structure: str,
        state_class: str,
        width: int,
        get: Callable[[], int],
        set: Callable[[int], None],
    ) -> StateField:
        field = StateField(name, structure, state_class, width, get, set)
        self.fields.append(field)
        self._prefix_bits = None
        return field

    def register_list(
        self,
        structure: str,
        state_class: str,
        base_name: str,
        storage: list[int],
        width: int,
        on_set: Callable[[], None] | None = None,
    ) -> None:
        """Register every slot of a list of ints (an SRAM array or a latch
        bank). The list object must stay in place — slots are accessed by
        index through closures.

        ``on_set``, when given, fires after every write through the
        registered setter — i.e. on fault injection (:meth:`StateField.flip`)
        and on :meth:`restore`, but not on the structure's own direct list
        writes. Structures use it to invalidate derived lookup indexes
        (e.g. the scheduler's wakeup index) when state changes behind
        their back."""

        def make_get(index: int) -> Callable[[], int]:
            return lambda: storage[index]

        def make_set(index: int) -> Callable[[int], None]:
            mask = (1 << width) - 1

            if on_set is None:

                def setter(value: int, index: int = index) -> None:
                    storage[index] = value & mask

                return setter

            def notifying_setter(value: int, index: int = index) -> None:
                storage[index] = value & mask
                on_set()

            return notifying_setter

        for index in range(len(storage)):
            self.register(
                f"{base_name}[{index}]",
                structure,
                state_class,
                width,
                make_get(index),
                make_set(index),
            )

    # ------------------------------------------------------------- queries

    def injectable_fields(self) -> list[StateField]:
        return list(self.fields)

    def fields_of_classes(self, classes: tuple[str, ...]) -> list[StateField]:
        allowed = set(classes)
        return [field for field in self.fields if field.state_class in allowed]

    def total_bits(self, classes: tuple[str, ...] | None = None) -> int:
        fields = self.fields if classes is None else self.fields_of_classes(classes)
        return sum(field.width for field in fields)

    def bits_by_structure(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for field in self.fields:
            totals[field.structure] = totals.get(field.structure, 0) + field.width
        return totals

    # ------------------------------------------------------------ sampling

    def _prefix(self, fields: list[StateField]) -> list[int]:
        prefix = []
        total = 0
        for field in fields:
            total += field.width
            prefix.append(total)
        return prefix

    def pick_bit(
        self,
        rng: DeterministicRng,
        classes: tuple[str, ...] | None = None,
    ) -> tuple[StateField, int]:
        """Uniformly pick one bit across all (optionally filtered) state."""
        fields = self.fields if classes is None else self.fields_of_classes(classes)
        if not fields:
            raise ValueError("no fields to pick from")
        if classes is None:
            if self._prefix_bits is None:
                self._prefix_bits = self._prefix(self.fields)
            prefix = self._prefix_bits
        else:
            prefix = self._prefix(fields)
        bit_index = rng.randrange(prefix[-1])
        field_index = bisect_right(prefix, bit_index)
        field = fields[field_index]
        offset = bit_index - (prefix[field_index - 1] if field_index else 0)
        return field, offset

    # ----------------------------------------------------------- snapshots

    def snapshot(self) -> list[int]:
        """Values of every field, in registration order."""
        return [field.get() for field in self.fields]

    def restore(self, snapshot: list[int]) -> None:
        if len(snapshot) != len(self.fields):
            raise ValueError("snapshot length mismatch")
        for field, value in zip(self.fields, snapshot):
            field.set(value)

    def diff_indices(self, a: list[int], b: list[int]) -> list[int]:
        """Indices of fields whose values differ between two snapshots."""
        if len(a) != len(b):
            raise ValueError("snapshot length mismatch")
        return [index for index, (x, y) in enumerate(zip(a, b)) if x != y]
