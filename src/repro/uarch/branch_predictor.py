"""Branch prediction: McFarling combining predictor, BTB, and RAS.

Per the paper's processor model ("sophisticated branch prediction" [18]):
a bimodal predictor and a gshare predictor arbitrated by a chooser table,
plus a branch target buffer for indirect targets and a return address stack.

Predictor tables are *not* registered as injectable state — the paper
excludes them because "corrupt predictor table entries cannot lead to
failure" (they only cause mispredictions, which recovery already handles).
"""

from __future__ import annotations

from repro.uarch.config import PipelineConfig

TAKEN_THRESHOLD = 2  # 2-bit counters: 0-1 predict not-taken, 2-3 taken


class CombiningPredictor:
    """Bimodal + gshare with a chooser (McFarling, DEC WRL TN-36)."""

    def __init__(self, config: PipelineConfig):
        self.config = config
        self.bimodal = [1] * config.bimodal_entries
        self.gshare = [1] * config.gshare_entries
        self.chooser = [1] * config.chooser_entries  # <2 favours bimodal
        self.history = 0  # speculative global history register
        self._history_mask = (1 << config.history_bits) - 1

    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.bimodal_entries

    def _gshare_index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) % self.config.gshare_entries

    def predict(self, pc: int) -> bool:
        """Direction prediction with the current speculative history."""
        bimodal_taken = self.bimodal[self._bimodal_index(pc)] >= TAKEN_THRESHOLD
        gshare_taken = (
            self.gshare[self._gshare_index(pc, self.history)] >= TAKEN_THRESHOLD
        )
        use_gshare = self.chooser[self._bimodal_index(pc)] >= TAKEN_THRESHOLD
        return gshare_taken if use_gshare else bimodal_taken

    def push_history(self, taken: bool) -> None:
        """Speculatively shift the outcome into the history register."""
        self.history = ((self.history << 1) | int(taken)) & self._history_mask

    def restore_history(self, history: int) -> None:
        """Recovery: rewind the speculative history (kept per-branch)."""
        self.history = history & self._history_mask

    def update(self, pc: int, taken: bool, history: int) -> None:
        """Train on a resolved branch with the history seen at prediction."""
        bimodal_index = self._bimodal_index(pc)
        gshare_index = self._gshare_index(pc, history)
        bimodal_taken = self.bimodal[bimodal_index] >= TAKEN_THRESHOLD
        gshare_taken = self.gshare[gshare_index] >= TAKEN_THRESHOLD
        # Train the chooser toward the component that was right.
        if bimodal_taken != gshare_taken:
            if gshare_taken == taken:
                self.chooser[bimodal_index] = min(3, self.chooser[bimodal_index] + 1)
            else:
                self.chooser[bimodal_index] = max(0, self.chooser[bimodal_index] - 1)
        self.bimodal[bimodal_index] = _train(self.bimodal[bimodal_index], taken)
        self.gshare[gshare_index] = _train(self.gshare[gshare_index], taken)


def _train(counter: int, taken: bool) -> int:
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


class BranchTargetBuffer:
    """Direct-mapped BTB for indirect branch targets."""

    def __init__(self, entries: int):
        self.entries = entries
        self.tags = [-1] * entries
        self.targets = [0] * entries

    def _index_tag(self, pc: int) -> tuple[int, int]:
        line = pc >> 2
        return line % self.entries, line // self.entries

    def lookup(self, pc: int) -> int | None:
        index, tag = self._index_tag(pc)
        if self.tags[index] == tag:
            return self.targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        index, tag = self._index_tag(pc)
        self.tags[index] = tag
        self.targets[index] = target


class ReturnAddressStack:
    """Circular return address stack."""

    def __init__(self, entries: int):
        self.entries = entries
        self.stack = [0] * entries
        self.top = 0

    def push(self, address: int) -> None:
        self.top = (self.top + 1) % self.entries
        self.stack[self.top] = address

    def pop(self) -> int:
        address = self.stack[self.top]
        self.top = (self.top - 1) % self.entries
        return address

    def peek(self) -> int:
        return self.stack[self.top]
