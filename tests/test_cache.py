"""The golden-artifact cache: keying, corruption, races, bit-identity.

The load-bearing invariant — pinned from several angles here — is that
the cache is *invisible* in every scientific output: a campaign run
against a cold cache, a warm cache, a corrupt cache, or no cache at all
produces byte-identical journals. The cache may only change how fast the
answer arrives, never the answer.
"""

import os
import pickle
import threading

import pytest

from repro.cache import (
    SCHEMA_VERSION,
    CacheCorruptionWarning,
    GoldenArtifactCache,
    program_digest,
)
from repro.campaign import run_campaign
from repro.faults import ArchCampaignConfig, UarchCampaignConfig
from repro.faults import arch_campaign
from repro.service import (
    CampaignScheduler,
    JobSpec,
    ResultStore,
    execute_unit,
)

SMALL = {"trials_per_workload": 7, "injection_points": 3}


def read_lines(path):
    with open(path, "rb") as handle:
        return handle.read().splitlines()


# --------------------------------------------------------------- unit level


class TestKeying:
    def test_roundtrip(self, tmp_path, gcc_bundle):
        cache = GoldenArtifactCache(str(tmp_path / "c"))
        config = ArchCampaignConfig(**SMALL)
        payload = {"answer": 42}
        assert cache.load("arch", gcc_bundle.program, config) is None
        assert cache.store("arch", gcc_bundle.program, config, payload)
        assert cache.load("arch", gcc_bundle.program, config) == payload
        assert cache.hits == 1 and cache.misses == 1

    def test_program_change_is_a_miss(self, tmp_path, bundles):
        cache = GoldenArtifactCache(str(tmp_path))
        config = ArchCampaignConfig(**SMALL)
        gcc, gzip = bundles["gcc"].program, bundles["gzip"].program
        assert program_digest(gcc) != program_digest(gzip)
        cache.store("arch", gcc, config, "gcc-golden")
        assert cache.load("arch", gzip, config) is None

    def test_config_change_is_a_miss(self, tmp_path, gcc_bundle):
        cache = GoldenArtifactCache(str(tmp_path))
        stored = ArchCampaignConfig(**SMALL)
        cache.store("arch", gcc_bundle.program, stored, "golden")
        for other in (
            ArchCampaignConfig(seed=1, **SMALL),
            ArchCampaignConfig(workload_scale=2, **SMALL),
            ArchCampaignConfig(trials_per_workload=8, injection_points=3),
        ):
            assert cache.load("arch", gcc_bundle.program, other) is None

    def test_level_is_part_of_the_key(self, tmp_path, gcc_bundle):
        cache = GoldenArtifactCache(str(tmp_path))
        config = ArchCampaignConfig(**SMALL)
        cache.store("arch", gcc_bundle.program, config, "arch-golden")
        assert cache.load("uarch", gcc_bundle.program, config) is None

    def test_empty_root_rejected(self):
        with pytest.raises(ValueError):
            GoldenArtifactCache("")


class TestCorruption:
    def _entry(self, tmp_path, gcc_bundle):
        cache = GoldenArtifactCache(str(tmp_path))
        config = ArchCampaignConfig(**SMALL)
        cache.store("arch", gcc_bundle.program, config, ["golden"])
        return cache, config, cache.entry_path(
            "arch", gcc_bundle.program, config
        )

    def test_truncated_entry_is_a_warned_miss(self, tmp_path, gcc_bundle):
        cache, config, path = self._entry(tmp_path, gcc_bundle)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.warns(CacheCorruptionWarning, match="recomputing"):
            assert cache.load("arch", gcc_bundle.program, config) is None

    def test_garbage_entry_is_a_warned_miss(self, tmp_path, gcc_bundle):
        cache, config, path = self._entry(tmp_path, gcc_bundle)
        with open(path, "wb") as handle:
            handle.write(b"this is not a pickle")
        with pytest.warns(CacheCorruptionWarning):
            assert cache.load("arch", gcc_bundle.program, config) is None

    def test_schema_mismatch_is_a_warned_miss(self, tmp_path, gcc_bundle):
        cache, config, path = self._entry(tmp_path, gcc_bundle)
        with open(path, "wb") as handle:
            pickle.dump(
                {"schema": SCHEMA_VERSION + 1, "artifact": ["future"]}, handle
            )
        with pytest.warns(CacheCorruptionWarning, match="schema"):
            assert cache.load("arch", gcc_bundle.program, config) is None

    def test_unwritable_root_degrades_to_uncached(self, tmp_path, gcc_bundle):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should go")
        cache = GoldenArtifactCache(str(blocker / "cache"))
        config = ArchCampaignConfig(**SMALL)
        with pytest.warns(CacheCorruptionWarning, match="continues uncached"):
            assert cache.store("arch", gcc_bundle.program, config, "x") is False

    def test_corrupt_entry_recomputes_identically(self, tmp_path, gcc_bundle):
        """End to end: a damaged entry warns, recomputes, and the trial
        records are identical to an uncached run's."""
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )
        reference = arch_campaign.run_workload_trials(config, "gcc")
        cache = GoldenArtifactCache(str(tmp_path))
        arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        path = cache.entry_path("arch", gcc_bundle.program, config)
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 64)
        with pytest.warns(CacheCorruptionWarning):
            repaired = arch_campaign.run_workload_trials(
                config, "gcc", cache=cache
            )
        assert repaired.golden_cache == "miss"
        assert [o.to_entry() for o in repaired.outcomes] == [
            o.to_entry() for o in reference.outcomes
        ]
        # The recompute republished a healthy entry.
        warm = arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        assert warm.golden_cache == "hit"


class TestConcurrentPopulate:
    def test_racing_writers_one_key(self, tmp_path, gcc_bundle):
        """Workers racing to populate one key never tear the entry."""
        config = ArchCampaignConfig(**SMALL)
        root = str(tmp_path / "shared")
        artifact = {"trace": list(range(1000))}
        barrier = threading.Barrier(8)
        failures = []

        def worker():
            cache = GoldenArtifactCache(root)
            barrier.wait()
            for _ in range(5):
                if not cache.store("arch", gcc_bundle.program, config, artifact):
                    failures.append("store failed")
                loaded = cache.load("arch", gcc_bundle.program, config)
                if loaded != artifact:
                    failures.append(f"bad load: {loaded!r}")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        names = os.listdir(root)
        assert [n for n in names if ".tmp." in n] == []
        assert len([n for n in names if n.endswith(".pkl")]) == 1
        reader = GoldenArtifactCache(root)
        assert reader.load("arch", gcc_bundle.program, config) == artifact

    def test_stats_and_clear(self, tmp_path, gcc_bundle):
        cache = GoldenArtifactCache(str(tmp_path))
        config = ArchCampaignConfig(**SMALL)
        cache.store("arch", gcc_bundle.program, config, "a")
        cache.store("uarch", gcc_bundle.program, config, "b")
        stats = cache.stats()
        assert stats.entries == 2 and stats.total_bytes > 0
        assert stats.by_level == {"arch": 1, "uarch": 1}
        assert cache.clear() == 2
        assert cache.stats().entries == 0


# --------------------------------------------- campaign-level bit-identity


@pytest.fixture(scope="module")
def identity_config():
    """Seven kernels, and 7 trials over 3 points — deliberately
    non-divisible so the exact-budget arithmetic is exercised too."""
    return ArchCampaignConfig(**SMALL)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("golden-cache"))


@pytest.fixture(scope="module")
def uncached_run(tmp_path_factory, identity_config):
    path = str(tmp_path_factory.mktemp("uncached") / "run.jsonl")
    report = run_campaign("arch", identity_config, journal_path=path)
    return report, read_lines(path)


@pytest.fixture(scope="module")
def cold_run(tmp_path_factory, identity_config, cache_dir):
    path = str(tmp_path_factory.mktemp("cold") / "run.jsonl")
    report = run_campaign(
        "arch", identity_config, journal_path=path, cache_dir=cache_dir
    )
    return report, read_lines(path)


@pytest.fixture(scope="module")
def warm_run(tmp_path_factory, identity_config, cache_dir, cold_run):
    path = str(tmp_path_factory.mktemp("warm") / "run.jsonl")
    report = run_campaign(
        "arch", identity_config, journal_path=path, cache_dir=cache_dir
    )
    return report, read_lines(path)


class TestArchCampaignIdentity:
    def test_cold_run_populates(self, cold_run, identity_config, cache_dir):
        report, _ = cold_run
        assert report.cache_misses == len(identity_config.workloads)
        assert report.cache_hits == 0
        stats = GoldenArtifactCache(cache_dir).stats()
        assert stats.by_level.get("arch") == len(identity_config.workloads)

    def test_warm_run_hits_every_workload(self, warm_run, identity_config):
        report, _ = warm_run
        assert report.cache_hits == len(identity_config.workloads)
        assert report.cache_misses == 0

    def test_journals_byte_identical(self, uncached_run, cold_run, warm_run):
        assert uncached_run[1] == cold_run[1] == warm_run[1]

    def test_exactly_the_requested_trials_ran(
        self, uncached_run, identity_config
    ):
        report, _ = uncached_run
        per_workload = identity_config.trials_per_workload
        assert len(report.result.trials) == per_workload * len(
            identity_config.workloads
        )

    def test_parallel_run_matches_serial(
        self, tmp_path, identity_config, cache_dir, uncached_run, cold_run
    ):
        path = str(tmp_path / "parallel.jsonl")
        report = run_campaign(
            "arch", identity_config, journal_path=path, jobs=4,
            cache_dir=cache_dir,
        )
        assert report.cache_hits == len(identity_config.workloads)
        # Workloads complete (and are journaled) in whatever order the
        # pool finishes them, so identity here is up to line order.
        assert sorted(read_lines(path)) == sorted(uncached_run[1])
        assert report.result.table() == uncached_run[0].result.table()

    def test_two_shard_service_matches_serial(
        self, tmp_path, identity_config, cache_dir, uncached_run, cold_run
    ):
        spec = JobSpec.from_request({
            "level": "arch",
            "config": dict(SMALL),
            "shards_per_workload": 2,
        })
        assert spec.config == identity_config
        store = ResultStore(":memory:")
        try:
            scheduler = CampaignScheduler(store, str(tmp_path))
            job_id = scheduler.submit(spec)["job_id"]
            hits = 0
            while True:
                lease = scheduler.lease("cache-test-worker")
                if lease is None:
                    break
                unit = lease["unit"]
                result = execute_unit(lease["spec"], unit, cache_dir)
                hits += result["golden_cache"] == "hit"
                scheduler.complete(
                    unit["job_id"], unit["unit_id"], "cache-test-worker",
                    result,
                )
            view = scheduler.job_view(job_id)
            assert view["state"] == "done"
            assert hits == 2 * len(identity_config.workloads)
            assert read_lines(view["journal_path"]) == uncached_run[1]
        finally:
            store.close()


class TestUarchCampaignIdentity:
    @pytest.fixture(scope="class")
    def config(self):
        return UarchCampaignConfig(
            trials_per_workload=8, injection_points=3,
            window_cycles=1200, workloads=("gcc",),
        )

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory, config):
        root = tmp_path_factory.mktemp("uarch-cache")
        journals = {}
        reports = {}
        for name, cache_dir in (
            ("uncached", None), ("cold", str(root / "c")),
            ("warm", str(root / "c")),
        ):
            path = str(root / f"{name}.jsonl")
            reports[name] = run_campaign(
                "uarch", config, journal_path=path, cache_dir=cache_dir
            )
            journals[name] = read_lines(path)
        return reports, journals

    def test_hit_miss_accounting(self, runs):
        reports, _ = runs
        assert (reports["uncached"].cache_hits,
                reports["uncached"].cache_misses) == (0, 0)
        assert (reports["cold"].cache_hits,
                reports["cold"].cache_misses) == (0, 1)
        assert (reports["warm"].cache_hits,
                reports["warm"].cache_misses) == (1, 0)

    def test_journals_byte_identical(self, runs):
        _, journals = runs
        assert journals["uncached"] == journals["cold"] == journals["warm"]

    def test_exactly_the_requested_trials_ran(self, runs, config):
        reports, _ = runs
        assert len(reports["uncached"].result.trials) == (
            config.trials_per_workload
        )


class TestSnapshotFastForward:
    def test_warm_start_restores_a_snapshot(
        self, tmp_path, monkeypatch, gcc_bundle
    ):
        """With a snapshot cadence shorter than the golden run, the warm
        path restores mid-run state instead of stepping from zero — and
        still reproduces the cold run bit for bit."""
        monkeypatch.setattr(arch_campaign, "ARCH_SNAPSHOT_INTERVAL", 500)
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )
        cache = GoldenArtifactCache(str(tmp_path))
        reference = arch_campaign.run_workload_trials(config, "gcc")
        cold = arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        artifact = cache.load("arch", gcc_bundle.program, config)
        assert artifact is not None
        assert len(artifact.trace.snapshots) >= 2
        assert all(
            snap.retired % 500 == 0 for snap in artifact.trace.snapshots
        )
        warm = arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        assert warm.golden_cache == "hit"

        def entries(outcome):
            return [o.to_entry() for o in outcome.outcomes]

        assert entries(reference) == entries(cold) == entries(warm)

    def test_sharded_warm_start_matches_serial_slice(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(arch_campaign, "ARCH_SNAPSHOT_INTERVAL", 500)
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )
        cache = GoldenArtifactCache(str(tmp_path))
        serial = arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        sharded = []
        for index in range(2):
            outcome = arch_campaign.run_workload_trials(
                config, "gcc", shard=(index, 2), cache=cache
            )
            assert outcome.golden_cache == "hit"
            sharded.extend(o.to_entry() for o in outcome.outcomes)
        serial_entries = [o.to_entry() for o in serial.outcomes]

        def key(entry):
            return (entry["point"], entry["index"])

        assert sorted(sharded, key=key) == sorted(serial_entries, key=key)


# ------------------------------------------------------------------- CLI


class TestCacheCli:
    def test_campaign_reports_cache_traffic(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        argv = [
            "campaign", "arch", "--trials", "6", "--workloads", "gcc",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        assert "golden cache: hits=0 misses=1" in capsys.readouterr().out
        assert main(argv) == 0
        assert "golden cache: hits=1 misses=0" in capsys.readouterr().out

    def test_no_cache_wins_over_env(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main([
            "campaign", "arch", "--trials", "6", "--workloads", "gcc",
            "--no-cache",
        ]) == 0
        assert "golden cache" not in capsys.readouterr().out
        assert not (tmp_path / "env-cache").exists()

    def test_env_var_enables_cache(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main([
            "campaign", "arch", "--trials", "6", "--workloads", "gcc",
        ]) == 0
        assert "golden cache: hits=0 misses=1" in capsys.readouterr().out

    def test_stats_and_clear(self, tmp_path, capsys, gcc_bundle):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        cache = GoldenArtifactCache(cache_dir)
        cache.store("arch", gcc_bundle.program,
                    ArchCampaignConfig(**SMALL), "x")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out and "arch: 1 entry" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_command_needs_a_directory(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["cache", "stats"])
