"""Decoded instruction representation and classification.

A :class:`DecodedInst` is the unit both simulators operate on: the
architectural simulator executes one per step, and the pipeline model carries
them through its stages. Classification properties (``is_load``,
``is_cond_branch``, ...) drive scheduling, branch prediction, and symptom
detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.isa import opcodes as op
from repro.isa.registers import REG_ZERO
from repro.util.bitops import MASK64, to_unsigned64


class InstClass(Enum):
    """Coarse execution class, used for functional-unit binding and latency."""

    ALU = "alu"
    MULTIPLY = "multiply"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    HALT = "halt"


@dataclass(frozen=True)
class DecodedInst:
    """One decoded instruction word."""

    spec: op.OpSpec
    word: int
    ra: int
    rb: int
    rc: int
    is_literal: bool = False
    literal: int = 0
    disp: int = field(default=0)  # sign-extended to unsigned-64 form

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def opcode(self) -> int:
        return self.spec.opcode

    @property
    def format(self) -> op.Format:
        return self.spec.format

    @property
    def is_halt(self) -> bool:
        return self.spec.format is op.Format.PAL

    @property
    def is_load(self) -> bool:
        return self.opcode in op.LOAD_OPCODES

    @property
    def is_store(self) -> bool:
        return self.opcode in op.STORE_OPCODES

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_lda(self) -> bool:
        return self.opcode in (op.OP_LDA, op.OP_LDAH)

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode in op.COND_BRANCH_OPCODES

    @property
    def is_uncond_branch(self) -> bool:
        return self.opcode in (op.OP_BR, op.OP_BSR)

    @property
    def is_jump(self) -> bool:
        return self.format is op.Format.JUMP

    @property
    def is_control(self) -> bool:
        return self.is_cond_branch or self.is_uncond_branch or self.is_jump

    @property
    def is_call(self) -> bool:
        """Pushes a return address the RAS should track."""
        if self.opcode == op.OP_BSR:
            return True
        return self.is_jump and self.spec.jump_hint == op.JUMP_HINT_JSR

    @property
    def is_return(self) -> bool:
        return self.is_jump and self.spec.jump_hint == op.JUMP_HINT_RET

    @property
    def is_cmov(self) -> bool:
        return self.opcode == op.OP_INTL and self.spec.func in (
            op.FUNC_CMOVEQ,
            op.FUNC_CMOVNE,
            op.FUNC_CMOVLT,
            op.FUNC_CMOVGE,
        )

    @property
    def inst_class(self) -> InstClass:
        if self.is_halt:
            return InstClass.HALT
        if self.is_load:
            return InstClass.LOAD
        if self.is_store:
            return InstClass.STORE
        if self.is_control:
            return InstClass.BRANCH
        if self.opcode == op.OP_INTM:
            return InstClass.MULTIPLY
        return InstClass.ALU

    @property
    def access_size(self) -> int:
        """Memory access size in bytes (memory operations only)."""
        return op.ACCESS_SIZE[self.opcode]

    @property
    def dest_reg(self) -> int | None:
        """Architectural destination register, or None.

        Writes to R31 are discarded, so R31 destinations report None — this
        makes dead-result detection (a major source of fault masking) fall
        out naturally in both simulators.
        """
        if self.format is op.Format.OPERATE:
            dest = self.rc
        elif self.is_load or self.is_lda:
            dest = self.ra
        elif self.is_uncond_branch or self.is_jump:
            dest = self.ra  # link register receives PC+4
        else:
            # Stores, conditional branches, and HALT write no register.
            return None
        return None if dest == REG_ZERO else dest

    @property
    def source_regs(self) -> tuple[int, ...]:
        """Architectural source registers actually read (R31 excluded)."""
        sources: list[int] = []
        if self.format is op.Format.OPERATE:
            sources.append(self.ra)
            if not self.is_literal:
                sources.append(self.rb)
            if self.is_cmov:
                sources.append(self.rc)  # conditional move keeps old RC
        elif self.is_load or self.is_lda:
            sources.append(self.rb)
        elif self.is_store:
            sources.append(self.ra)  # store data
            sources.append(self.rb)  # base address
        elif self.is_cond_branch:
            sources.append(self.ra)
        elif self.is_jump:
            sources.append(self.rb)
        # BR/BSR read nothing; HALT reads nothing.
        return tuple(reg for reg in sources if reg != REG_ZERO)

    def branch_target(self, pc: int) -> int:
        """Static (PC-relative) target for branch-format instructions."""
        if self.format is not op.Format.BRANCH:
            raise ValueError(f"{self.mnemonic} has no static branch target")
        # disp is stored sign-extended as an unsigned-64 word offset.
        offset = self.disp
        if offset >= 1 << 63:
            offset -= 1 << 64
        return to_unsigned64(pc + 4 + 4 * offset)

    def __str__(self) -> str:
        from repro.isa.disassembler import disassemble

        return disassemble(self.word)


class PredecodedInst:
    """A flattened :class:`DecodedInst` with every property precomputed.

    The classification properties above re-derive their answers from the
    opcode on every access; pipeline stages consult them several times per
    instruction per cycle, which makes property dispatch a measurable cost.
    This mirror exposes the same read interface as plain slot attributes,
    computed once per distinct word and cached by the consumer (the
    pipeline's decode cache). Both types flow through identical stage
    code, so the slow/fast paths cannot diverge semantically.
    """

    __slots__ = (
        "spec", "word", "ra", "rb", "rc", "is_literal", "literal", "disp",
        "mnemonic", "opcode", "format", "is_halt", "is_load", "is_store",
        "is_memory", "is_lda", "is_cond_branch", "is_uncond_branch",
        "is_jump", "is_control", "is_call", "is_return", "is_cmov",
        "inst_class", "access_size", "dest_reg", "source_regs",
        "_branch_delta",
    )

    def __init__(self, inst: DecodedInst):
        self.spec = inst.spec
        self.word = inst.word
        self.ra = inst.ra
        self.rb = inst.rb
        self.rc = inst.rc
        self.is_literal = inst.is_literal
        self.literal = inst.literal
        self.disp = inst.disp
        self.mnemonic = inst.mnemonic
        self.opcode = inst.opcode
        self.format = inst.format
        self.is_halt = inst.is_halt
        self.is_load = inst.is_load
        self.is_store = inst.is_store
        self.is_memory = inst.is_memory
        self.is_lda = inst.is_lda
        self.is_cond_branch = inst.is_cond_branch
        self.is_uncond_branch = inst.is_uncond_branch
        self.is_jump = inst.is_jump
        self.is_control = inst.is_control
        self.is_call = inst.is_call
        self.is_return = inst.is_return
        self.is_cmov = inst.is_cmov
        self.inst_class = inst.inst_class
        self.access_size = op.ACCESS_SIZE.get(self.opcode, 0)
        self.dest_reg = inst.dest_reg
        self.source_regs = inst.source_regs
        if self.format is op.Format.BRANCH:
            offset = self.disp
            if offset >= 1 << 63:
                offset -= 1 << 64
            self._branch_delta = 4 + 4 * offset
        else:
            self._branch_delta = None

    def branch_target(self, pc: int) -> int:
        """Static (PC-relative) target for branch-format instructions."""
        if self._branch_delta is None:
            raise ValueError(f"{self.mnemonic} has no static branch target")
        return to_unsigned64(pc + self._branch_delta)

    def __str__(self) -> str:
        from repro.isa.disassembler import disassemble

        return disassemble(self.word)


def fallthrough_pc(pc: int) -> int:
    """Address of the next sequential instruction."""
    return (pc + 4) & MASK64
