"""Sharding: splitting a campaign job into resumable work units.

A work unit is ``(workload, seed-slice)``: one workload of the campaign,
restricted to the stride slice ``index % shard_count == shard_index`` of
the per-point trial index space. Because every trial's randomness is
derived from ``(seed, workload, point, index)`` — never from execution
order or from which process runs it — the slice boundaries cannot change
a single trial record: the union of a workload's shards is exactly the
serial campaign, trial for trial, bit for bit. That is the service's
**serial-equivalence invariant**, and the end-to-end tests assert it by
diffing a sharded job's journal against a serial ``run_campaign`` of the
same config and seed.

A stride (rather than a contiguous index range) is used because the
per-point trial count is only known after the workload's golden run has
been walked; stride slices partition the index space whatever that count
turns out to be.

Sharding finer than one unit per workload duplicates the workload's
golden run and prefix walk in every unit — the classic
throughput-versus-redundancy trade. One unit per workload (the default)
matches the PR 1 parallel runner's work division; more shards buy
horizontal scale across a worker fleet once trial counts dominate the
golden-run cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.spec import JobSpec


@dataclass(frozen=True)
class WorkUnit:
    """One leasable slice of a job: a workload restricted to a seed-slice.

    Adaptive jobs execute round by round: ``round`` numbers the planner
    round this unit belongs to, and ``allocation`` carries the explicit
    ``(point, start_index, count)`` plan for rounds after the first.
    Round-0 units ship with ``allocation=None`` — the worker derives the
    round-0 plan (and the prescreen set) from the golden trace itself
    and reports that metadata back for the scheduler to replay. Uniform
    jobs keep ``round=0, allocation=None`` throughout.
    """

    job_id: str
    unit_id: str
    workload: str
    shard_index: int
    shard_count: int
    round: int = 0
    allocation: tuple[tuple[int, int, int], ...] | None = None

    @property
    def shard(self) -> tuple[int, int] | None:
        """The executor-facing stride descriptor (None for a whole workload)."""
        if self.shard_count == 1:
            return None
        return (self.shard_index, self.shard_count)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "unit_id": self.unit_id,
            "workload": self.workload,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "round": self.round,
            "allocation": (
                [list(entry) for entry in self.allocation]
                if self.allocation is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkUnit":
        allocation = data.get("allocation")
        return cls(
            job_id=data["job_id"],
            unit_id=data["unit_id"],
            workload=data["workload"],
            shard_index=int(data["shard_index"]),
            shard_count=int(data["shard_count"]),
            round=int(data.get("round", 0)),
            allocation=(
                tuple(tuple(int(v) for v in entry) for entry in allocation)
                if allocation is not None else None
            ),
        )


def shard_job(job_id: str, spec: JobSpec) -> list[WorkUnit]:
    """Split a job into its work units, in deterministic dispatch order.

    Units are ordered workload-major (the spec's workload order, which is
    also the serial runner's execution order) so a single worker draining
    the queue processes the job in the same order a serial run would.
    """
    units: list[WorkUnit] = []
    count = spec.shards_per_workload
    for workload in spec.config.workloads:
        for index in range(count):
            if spec.planner is not None:
                # Adaptive jobs start with round 0 only; the scheduler
                # emits each later round's units once the previous
                # round's trials have all landed.
                unit = WorkUnit(
                    job_id=job_id,
                    unit_id=f"{workload}:r0:{index}of{count}",
                    workload=workload,
                    shard_index=index,
                    shard_count=count,
                    round=0,
                )
            else:
                unit = WorkUnit(
                    job_id=job_id,
                    unit_id=f"{workload}:{index}of{count}",
                    workload=workload,
                    shard_index=index,
                    shard_count=count,
                )
            units.append(unit)
    return units


def round_units(
    job_id: str,
    spec: JobSpec,
    workload: str,
    round_number: int,
    allocation: list[tuple[int, int, int]],
) -> list[WorkUnit]:
    """The work units for one later planner round of one workload.

    Every unit carries the full allocation; its shard stride selects the
    trial-index slice it executes, so the union of a round's units is
    exactly the round — the same invariant as uniform sharding.
    """
    count = spec.shards_per_workload
    return [
        WorkUnit(
            job_id=job_id,
            unit_id=f"{workload}:r{round_number}:{index}of{count}",
            workload=workload,
            shard_index=index,
            shard_count=count,
            round=round_number,
            allocation=tuple(tuple(entry) for entry in allocation),
        )
        for index in range(count)
    ]
