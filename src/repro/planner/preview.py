"""Plan preview: what an adaptive campaign would do, before any trials.

``repro campaign plan`` answers the question every adaptive knob
invites — "what will this configuration actually execute?" — by running
only the golden side of the campaign: build each workload, walk its
golden trace, sample the injection points, and run the masking
prescreen. No fault is injected; the preview is exact because the point
sample, the prescreen verdicts, and the round-0 allocation are all pure
functions of ``(config, planner)`` — the very property the resumable
journal relies on.
"""

from __future__ import annotations

from typing import Any

from repro.planner.core import CampaignPlanner, PlannerConfig, resolve_budget
from repro.planner.prescreen import prescreen_dead_points
from repro.util.rng import DeterministicRng
from repro.util.tables import format_table


def preview_plan(
    config: Any, planner: PlannerConfig, cache: Any = None
) -> list[dict]:
    """Per-workload preview rows for an adaptive arch campaign.

    Each row carries the sampled point count, how many points the
    masking prescreen retires for free, the trial budget, and the size
    of round 0 (the planner's only unconditional spend); a workload
    whose golden run fails carries ``skip_reason`` instead.
    """
    from repro.faults.arch_campaign import _load_golden

    rows: list[dict] = []
    for workload in config.workloads:
        wrng = (
            DeterministicRng(config.seed)
            .child("arch-campaign")
            .child(workload)
        )
        try:
            _bundle, trace, _ = _load_golden(config, workload, cache)
        except Exception as exc:
            rows.append({
                "workload": workload,
                "skip_reason": f"{type(exc).__name__}: {exc}",
            })
            continue
        point_count = min(config.injection_points, len(trace.writer_steps))
        points = sorted(
            wrng.child("points").sample(trace.writer_steps, point_count)
        )
        prescreened = (
            prescreen_dead_points(trace, points)
            if planner.prescreen else set()
        )
        budget = resolve_budget(planner, config)
        plan = CampaignPlanner(
            planner, points, sorted(prescreened), budget=budget
        )
        round0 = sum(
            count
            for point, _start, count in plan.plan_round()
            if point not in prescreened
        )
        rows.append({
            "workload": workload,
            "points": len(points),
            "prescreened": len(prescreened),
            "budget": budget,
            "round0_trials": round0,
            "prescreen_trials": len(prescreened) * planner.min_trials,
        })
    return rows


def format_plan(rows: list[dict], planner: PlannerConfig) -> str:
    """Render preview rows as the ``repro campaign plan`` table."""
    table_rows = []
    for row in rows:
        if "skip_reason" in row:
            table_rows.append(
                [row["workload"], "-", "-", "-", "-",
                 f"skipped: {row['skip_reason']}"]
            )
            continue
        table_rows.append([
            row["workload"],
            str(row["points"]),
            str(row["prescreened"]),
            str(row["budget"]),
            str(row["round0_trials"]),
            "",
        ])
    title = (
        f"Adaptive plan (margin<={planner.margin}, "
        f"min={planner.min_trials}, round={planner.round_trials}, "
        f"prescreen={'on' if planner.prescreen else 'off'})"
    )
    return format_table(
        ["workload", "points", "prescreened", "budget", "round-0", "note"],
        table_rows,
        title=title,
    )
