"""The resilient campaign runner: containment, durability, parallelism.

This module turns the two statistical fault-injection campaigns into
interruptible, resumable, optionally parallel batch jobs:

- **Containment** — every trial runs under a
  :class:`~repro.campaign.guard.TrialGuard` that converts simulator
  exceptions into ``harness-crash`` records and wall-clock overruns into
  ``harness-timeout`` records, instead of aborting the campaign. A
  workload whose golden run fails is skipped with a structured warning
  and annotated in the result tables.
- **Durability** — with a journal path, results stream to an append-only
  JSONL file (one flushed line per trial, behind a manifest carrying a
  config digest). ``resume=True`` replays journaled trials and executes
  only the remainder; because per-trial randomness is derived from
  ``(seed, workload, point, index)``, a resumed run's aggregate tables
  are bit-identical to an uninterrupted run's.
- **Parallelism** — ``jobs > 1`` fans workloads out across processes via
  :mod:`concurrent.futures`. A worker that dies (not a trial that fails —
  the guard already contains those) is retried once in the parent; a
  second failure classifies the workload as skipped rather than raising.
- **Telemetry** — with a journal, the run appends one ``telemetry``
  aggregate entry (per-detector coverage/latency and rollback-distance
  histograms; see :mod:`repro.telemetry.metrics`) after the trial lines;
  ``repro campaign report`` renders it. An optional ``trace`` sink
  receives schema'd ``trial_begin``/``injection``/``trial_end`` events as
  trials complete, so an external observer can follow a campaign live.

The work unit shipped to a worker is one workload: each workload needs
its own golden run and prefix walk anyway, so sharding finer would
duplicate that dominant cost without changing any result (trial records
are fully determined by their derived seeds, never by which process ran
them or in what order).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro import __version__
from repro.campaign.guard import TrialGuard
from repro.campaign.outcomes import (
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    TrialOutcome,
    WorkloadRunOutcome,
)
from repro.util.journal import (
    JournalError,
    JournalTearWarning,
    JournalWriter,
    config_to_dict,
    read_journal,
    stable_digest,
)
from repro.util.tables import format_table

CAMPAIGN_LEVELS = ("arch", "uarch")
JOURNAL_FORMAT = 1


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a campaign executes, as opposed to *what* it measures.

    Kept separate from the scientific configs (whose digests identify a
    run's results) because none of these knobs can change a single trial
    record: ``jobs`` only picks how workloads fan out across processes,
    ``trial_timeout`` only bounds the harness's patience, and
    ``cache_dir`` only memoizes golden artifacts that are bit-identical
    to recomputing them.

    ``jobs=None`` means "use every core" (``os.cpu_count()``);
    ``cache_dir=None`` disables the golden-artifact cache. ``lockstep``
    selects the arch campaign's batched execution strategy (see
    :mod:`repro.faults.lockstep`) — journals are byte-identical either
    way, which is why it lives here and not in the scientific config; it
    is ignored by uarch campaigns.
    """

    jobs: int | None = None
    trial_timeout: float | None = None
    cache_dir: str | None = None
    lockstep: bool = True

    def __post_init__(self) -> None:
        jobs = self.jobs
        if jobs is None:
            jobs = os.cpu_count() or 1
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ValueError(
                f"jobs must be a positive integer (or None for all "
                f"cores), got {self.jobs!r}"
            )
        object.__setattr__(self, "jobs", jobs)
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError(
                f"trial_timeout must be positive, got {self.trial_timeout}"
            )
        if self.cache_dir is not None and (
            not isinstance(self.cache_dir, str) or not self.cache_dir
        ):
            raise ValueError(
                f"cache_dir must be a non-empty path (or None to disable "
                f"the cache), got {self.cache_dir!r}"
            )
        if not isinstance(self.lockstep, bool):
            raise ValueError(
                f"lockstep must be a bool, got {self.lockstep!r}"
            )


def _campaign_module(level: str):
    # Imported lazily: the campaign modules import repro.campaign for the
    # guard/outcome types, so a module-level import here would be circular.
    if level == "arch":
        from repro.faults import arch_campaign

        return arch_campaign
    if level == "uarch":
        from repro.faults import uarch_campaign

        return uarch_campaign
    raise ValueError(f"unknown campaign level {level!r}; know {CAMPAIGN_LEVELS}")


@dataclass
class CampaignRunReport:
    """The full story of one campaign run, resilient details included."""

    level: str
    config: object
    result: object
    outcomes: list[TrialOutcome]
    executed: int
    resumed: int
    skipped_workloads: tuple[tuple[str, str], ...]
    journal_path: str | None
    jobs: int
    # Golden-artifact cache accounting (zeros when no cache is in use):
    # one hit or miss per executed workload, never reflected in journals.
    cache_dir: str | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    # Adaptive-run accounting (None for uniform campaigns): the planner
    # settings and the aggregate of the per-workload planner summaries.
    planner: object | None = None
    planner_totals: dict | None = None

    def outcome_counts(self) -> dict[str, int]:
        counts = {OUTCOME_OK: 0, OUTCOME_CRASH: 0, OUTCOME_TIMEOUT: 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def harness_crashes(self) -> int:
        return self.outcome_counts()[OUTCOME_CRASH]

    @property
    def harness_timeouts(self) -> int:
        return self.outcome_counts()[OUTCOME_TIMEOUT]

    def outcome_table(self) -> str:
        counts = self.outcome_counts()
        total = max(1, len(self.outcomes))
        rows = [
            [status, str(count), f"{count / total:.1%}"]
            for status, count in counts.items()
        ]
        return format_table(
            ["outcome", "trials", "share"],
            rows,
            title="Harness outcomes (trial containment)",
        )


@dataclass
class _JournalState:
    """What a prior journal contributes to a resumed run."""

    outcomes: dict[str, list[TrialOutcome]] = field(default_factory=dict)
    done_workloads: dict[str, dict] = field(default_factory=dict)

    def completed_keys(self, workload: str) -> set[str]:
        return {o.key for o in self.outcomes.get(workload, ())}


def _manifest(level: str, config, planner=None) -> dict:
    config_dict = config_to_dict(config)
    manifest = {
        "kind": "manifest",
        "format": JOURNAL_FORMAT,
        "level": level,
        "seed": config.seed,
        "config_digest": stable_digest(config_dict),
        "config": config_dict,
        "version": __version__,
    }
    if planner is not None:
        # Adaptive planning changes which trials exist, so it is part of
        # the journal's scientific identity; non-adaptive manifests stay
        # byte-identical by omitting the key entirely.
        manifest["planner"] = planner.to_dict()
    return manifest


def _load_journal(path: str, level: str, config, planner=None) -> _JournalState | None:
    """Replay a journal into a :class:`_JournalState`.

    Returns ``None`` when the file holds no complete entry at all — the
    residue of a run killed during its *first* append (a torn manifest).
    Such a journal contributes nothing to resume, so the caller rewrites
    it from scratch instead of aborting; refusing here used to brick the
    journal path until the operator deleted the file by hand.
    """
    entries = read_journal(path)
    if not entries:
        warnings.warn(
            f"{path}: journal holds no complete entry (run killed during "
            f"its first append?); starting it fresh",
            JournalTearWarning,
            stacklevel=3,
        )
        return None
    if entries[0].get("kind") != "manifest":
        raise JournalError(f"{path}: missing manifest line; not a campaign journal")
    manifest = entries[0]
    if manifest.get("level") != level:
        raise JournalError(
            f"{path}: journal is for a {manifest.get('level')!r} campaign, "
            f"not {level!r}"
        )
    digest = stable_digest(config_to_dict(config))
    if manifest.get("config_digest") != digest:
        raise JournalError(
            f"{path}: journal was written with a different configuration "
            f"({manifest.get('config_digest')} != {digest}); refusing to "
            f"resume — results would not be comparable"
        )
    expected_planner = planner.to_dict() if planner is not None else None
    if manifest.get("planner") != expected_planner:
        raise JournalError(
            f"{path}: journal planner settings "
            f"{manifest.get('planner')!r} do not match the requested "
            f"{expected_planner!r}; refusing to resume — the planner "
            f"decides which trials exist, so results would not be "
            f"comparable"
        )
    state = _JournalState()
    seen: set[str] = set()
    for entry in entries[1:]:
        kind = entry.get("kind")
        if kind == "trial":
            outcome = TrialOutcome.from_entry(entry, level)
            if outcome.key in seen:
                continue  # a retried workload may have re-journaled a key
            seen.add(outcome.key)
            state.outcomes.setdefault(outcome.workload, []).append(outcome)
        elif kind == "workload":
            state.done_workloads[entry["workload"]] = entry
    return state


def _workload_sentinel(outcome: WorkloadRunOutcome) -> dict:
    entry = {
        "kind": "workload",
        "workload": outcome.workload,
        "status": "skipped" if outcome.skip_reason else "done",
        "total_bits": outcome.total_bits,
    }
    if outcome.skip_reason:
        entry["reason"] = outcome.skip_reason
    if outcome.planner_points is not None:
        # Adaptive runs persist the sampled points and the prescreened
        # subset so a resumed run can replay the planner's rounds (and
        # rebuild the summary) without re-walking the golden trace.
        entry["planner_points"] = list(outcome.planner_points)
        entry["prescreened_points"] = list(outcome.prescreened_points or ())
    return entry


def _emit_trial_events(trace, level: str, outcome: TrialOutcome) -> None:
    """Bracket one completed trial with schema'd trace events."""
    cycle = 0
    position = 0
    record = outcome.record
    if record is not None:
        if level == "uarch":
            cycle = record.inject_cycle
            position = getattr(record, "inject_retired", 0)
        else:
            position = record.inject_step
    trace.emit({
        "kind": "trial_begin", "cycle": cycle, "position": position,
        "workload": outcome.workload, "point": outcome.point,
        "index": outcome.index,
    })
    if record is not None:
        trace.emit({
            "kind": "injection", "cycle": cycle, "position": position,
            "target": getattr(record, "target", "arch"), "bit": record.bit,
        })
    trace.emit({
        "kind": "trial_end", "cycle": cycle, "position": position,
        "status": outcome.status,
    })


def _replayed_summary(planner, config, outcome: WorkloadRunOutcome) -> dict:
    """Rebuild a resumed workload's planner summary from its journaled
    trials (round structure is a pure function of the tallies, so the
    replay reproduces it exactly)."""
    from repro.planner import replay_summary, resolve_budget

    observed = {
        (o.point, o.index): (
            o.status == OUTCOME_OK,
            bool(o.record.failing) if o.record is not None else False,
        )
        for o in outcome.outcomes
    }
    return replay_summary(
        planner,
        outcome.planner_points or (),
        outcome.prescreened_points or (),
        budget=resolve_budget(planner, config),
        outcomes=observed,
    )


def _emit_convergence_events(trace, outcome: WorkloadRunOutcome) -> None:
    """One ``point_converged`` event per stopped injection point."""
    summary = outcome.planner_summary
    if summary is None:
        return
    for row in summary["points"]:
        if not row["converged"]:
            continue
        trace.emit({
            "kind": "point_converged", "cycle": 0, "position": row["point"],
            "workload": outcome.workload, "point": row["point"],
            "trials": row["trials"],
            "margin": 0.0 if row["margin"] is None else row["margin"],
            "prescreened": row["prescreened"],
        })


def _workload_task(
    level: str,
    config,
    workload: str,
    completed: frozenset[str],
    trial_timeout: float | None,
    cache_dir: str | None = None,
    lockstep: bool = True,
    planner=None,
    prior: tuple[TrialOutcome, ...] = (),
) -> WorkloadRunOutcome:
    """One process-pool work unit: run a whole workload under containment."""
    module = _campaign_module(level)
    guard = TrialGuard(timeout=trial_timeout)
    cache = None
    if cache_dir is not None:
        from repro.cache import GoldenArtifactCache

        cache = GoldenArtifactCache(cache_dir)
    extra = {"lockstep": lockstep} if level == "arch" else {}
    if planner is not None:
        extra.update(planner=planner, prior=prior)
    return module.run_workload_trials(
        config, workload, completed=completed, guard=guard, cache=cache,
        **extra,
    )


def _build_result(level, config, by_workload: dict[str, WorkloadRunOutcome]):
    """Aggregate per-workload outcomes into the campaign result object.

    Trials are ordered by (workload position, point, index) — the order a
    serial, uninterrupted run produces — so resumed and parallel runs
    yield identical result objects and tables.
    """
    trials = []
    ordered_outcomes: list[TrialOutcome] = []
    skipped: list[tuple[str, str]] = []
    for name in config.workloads:
        workload_outcome = by_workload.get(name)
        if workload_outcome is None:
            continue
        if workload_outcome.skip_reason:
            skipped.append((name, workload_outcome.skip_reason))
        for outcome in sorted(workload_outcome.outcomes, key=lambda o: o.order):
            ordered_outcomes.append(outcome)
            if outcome.status == OUTCOME_OK:
                trials.append(outcome.record)
    if level == "arch":
        from repro.faults.arch_campaign import ArchCampaignResult

        result = ArchCampaignResult(
            config, trials, skipped_workloads=tuple(skipped)
        )
    else:
        from repro.faults.uarch_campaign import UarchCampaignResult

        total_bits = max(
            (wo.total_bits for wo in by_workload.values()), default=0
        )
        result = UarchCampaignResult(
            config, trials, total_bits, skipped_workloads=tuple(skipped)
        )
    return result, ordered_outcomes, tuple(skipped)


def run_campaign(
    level: str,
    config,
    *,
    journal_path: str | None = None,
    resume: bool = False,
    jobs: int | None = 1,
    trial_timeout: float | None = None,
    trace=None,
    cache_dir: str | None = None,
    lockstep: bool = True,
    planner=None,
) -> CampaignRunReport:
    """Run a fault-injection campaign resiliently.

    ``journal_path`` enables durable progress (one flushed JSONL line per
    trial in serial mode, per completed workload in parallel mode);
    ``resume`` replays an existing journal and runs only missing trials;
    ``jobs`` fans workloads out across processes (``None`` means one per
    core); ``trial_timeout`` is the per-trial wall-clock budget in
    seconds; ``trace`` is an optional :class:`repro.telemetry.TraceSink`
    receiving per-trial events (emitted from the parent process — with
    ``jobs > 1`` they arrive per completed workload rather than
    interleaved live); ``cache_dir`` points at a shared golden-artifact
    cache directory (see :mod:`repro.cache`) — golden runs are loaded
    from it when present and stored into it when not, with no effect on
    any trial record or journal byte; ``lockstep`` selects the arch
    campaign's batched execution strategy (journal-identical to the
    serial path, and ignored by uarch campaigns).

    ``planner`` (a :class:`repro.planner.PlannerConfig`, arch campaigns
    only) switches the run to adaptive trial allocation: rounds with
    early stopping per injection point plus the masking-equivalence
    prescreen. Unlike the :class:`ExecutionPolicy` knobs it changes
    which trials exist, so it is recorded in the journal manifest and
    must match on resume. With ``jobs > 1`` an adaptive run's journal is
    written in workload order (a reorder buffer holds completed
    workloads until their turn) so it stays byte-identical to the serial
    journal; uniform parallel runs keep their stream-on-completion
    behaviour.
    """
    module = _campaign_module(level)
    if planner is not None and level != "arch":
        raise ValueError(
            "adaptive planning is only supported for arch campaigns "
            f"(got level={level!r})"
        )
    policy = ExecutionPolicy(
        jobs=jobs, trial_timeout=trial_timeout, cache_dir=cache_dir,
        lockstep=lockstep,
    )
    jobs = policy.jobs
    assert jobs is not None  # __post_init__ resolved None to cpu_count
    if resume and journal_path is None:
        raise ValueError("resume requires a journal path")
    cache = None
    if cache_dir is not None:
        from repro.cache import GoldenArtifactCache

        cache = GoldenArtifactCache(cache_dir)

    state = _JournalState()
    writer: JournalWriter | None = None
    if journal_path is not None:
        exists = os.path.exists(journal_path) and os.path.getsize(journal_path) > 0
        loaded: _JournalState | None = None
        if exists:
            if resume:
                loaded = _load_journal(journal_path, level, config, planner)
            elif read_journal(journal_path):
                raise JournalError(
                    f"{journal_path} already exists; pass resume=True "
                    f"(--resume) to continue it, or choose a fresh journal "
                    f"path"
                )
            else:
                # The file holds nothing but a torn fragment (a run killed
                # during its first append); it is safe to overwrite.
                warnings.warn(
                    f"{journal_path}: journal holds no complete entry (run "
                    f"killed during its first append?); starting it fresh",
                    JournalTearWarning,
                    stacklevel=2,
                )
        if loaded is not None:
            state = loaded
            writer = JournalWriter(journal_path, append=True)
        else:
            writer = JournalWriter(journal_path)
            writer.write(_manifest(level, config, planner))

    guard = TrialGuard(timeout=trial_timeout)
    by_workload: dict[str, WorkloadRunOutcome] = {}
    pending: list[str] = []
    resumed = 0
    for name in config.workloads:
        sentinel = state.done_workloads.get(name)
        if sentinel is not None:
            prior = state.outcomes.get(name, [])
            restored = WorkloadRunOutcome(
                name,
                list(prior),
                skip_reason=sentinel.get("reason"),
                total_bits=sentinel.get("total_bits", 0),
            )
            if planner is not None and "planner_points" in sentinel:
                restored.planner_points = tuple(sentinel["planner_points"])
                restored.prescreened_points = tuple(
                    sentinel.get("prescreened_points", ())
                )
                restored.planner_summary = _replayed_summary(
                    planner, config, restored
                )
            by_workload[name] = restored
            resumed += len(prior)
        else:
            pending.append(name)

    executed = 0
    try:
        if jobs == 1 or len(pending) <= 1:
            for name in pending:
                prior = list(state.outcomes.get(name, []))
                resumed += len(prior)
                on_outcome = None
                if writer is not None or trace is not None:
                    def on_outcome(o, _level=level):  # noqa: E306
                        if writer is not None:
                            writer.write(o.to_entry())
                        if trace is not None:
                            _emit_trial_events(trace, _level, o)
                extra = (
                    {"lockstep": policy.lockstep} if level == "arch" else {}
                )
                if planner is not None:
                    extra.update(planner=planner, prior=tuple(prior))
                workload_outcome = module.run_workload_trials(
                    config,
                    name,
                    completed=frozenset(o.key for o in prior),
                    guard=guard,
                    on_outcome=on_outcome,
                    cache=cache,
                    **extra,
                )
                executed += len(workload_outcome.outcomes)
                workload_outcome.outcomes = prior + workload_outcome.outcomes
                by_workload[name] = workload_outcome
                if trace is not None:
                    _emit_convergence_events(trace, workload_outcome)
                if writer is not None:
                    writer.write(_workload_sentinel(workload_outcome))
        else:
            completed_keys = {
                name: frozenset(state.completed_keys(name)) for name in pending
            }
            priors = {
                name: tuple(state.outcomes.get(name, ())) for name in pending
            }

            def emit(name: str, workload_outcome: WorkloadRunOutcome) -> None:
                nonlocal resumed, executed
                prior = list(priors[name])
                resumed += len(prior)
                executed += len(workload_outcome.outcomes)
                if writer is not None:
                    for outcome in workload_outcome.outcomes:
                        writer.write(outcome.to_entry())
                if trace is not None:
                    for outcome in workload_outcome.outcomes:
                        _emit_trial_events(trace, level, outcome)
                workload_outcome.outcomes = prior + workload_outcome.outcomes
                by_workload[name] = workload_outcome
                if trace is not None:
                    _emit_convergence_events(trace, workload_outcome)
                if writer is not None:
                    writer.write(_workload_sentinel(workload_outcome))

            # Adaptive journals must be byte-identical across job counts,
            # so completed workloads are flushed in config order through a
            # reorder buffer; uniform runs keep streaming on completion
            # (their journal order was never part of the result identity).
            flush_order = [name for name in config.workloads if name in pending]
            buffered: dict[str, WorkloadRunOutcome] = {}
            flushed = 0

            def flush_ready() -> None:
                nonlocal flushed
                while flushed < len(flush_order) and (
                    flush_order[flushed] in buffered
                ):
                    next_name = flush_order[flushed]
                    emit(next_name, buffered.pop(next_name))
                    flushed += 1

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(
                        _workload_task,
                        level,
                        config,
                        name,
                        completed_keys[name],
                        trial_timeout,
                        cache_dir,
                        policy.lockstep,
                        *((planner, priors[name])
                          if planner is not None else ()),
                    ): name
                    for name in pending
                }
                for future in as_completed(futures):
                    name = futures[future]
                    try:
                        workload_outcome = future.result()
                    except Exception as first_error:
                        # The worker process itself died (the guard already
                        # contains trial failures): retry once in-parent,
                        # then classify the workload as skipped.
                        try:
                            workload_outcome = _workload_task(
                                level, config, name,
                                completed_keys[name], trial_timeout,
                                cache_dir, policy.lockstep,
                                *((planner, priors[name])
                                  if planner is not None else ()),
                            )
                        except Exception as second_error:
                            workload_outcome = WorkloadRunOutcome(
                                name,
                                skip_reason=(
                                    f"worker failed twice: {second_error!r} "
                                    f"(first failure: {first_error!r})"
                                ),
                            )
                    if planner is not None:
                        buffered[name] = workload_outcome
                        flush_ready()
                    else:
                        emit(name, workload_outcome)
                flush_ready()
    finally:
        if writer is not None:
            writer.close()

    result, ordered_outcomes, skipped = _build_result(level, config, by_workload)
    cache_hits = sum(
        1 for wo in by_workload.values() if wo.golden_cache == "hit"
    )
    cache_misses = sum(
        1 for wo in by_workload.values() if wo.golden_cache == "miss"
    )
    planner_totals = None
    if planner is not None:
        from repro.planner import aggregate_planner_summaries

        planner_totals = aggregate_planner_summaries(
            planner,
            [
                by_workload[name].planner_summary
                for name in config.workloads
                if by_workload.get(name) is not None
                and by_workload[name].planner_summary is not None
            ],
        )
    if journal_path is not None:
        # Journal the derived telemetry aggregate after the trial lines.
        # Resume and report always recompute from the trials themselves, so
        # a stale aggregate from an interrupted run is harmless; appending a
        # fresh one keeps the journal's last telemetry entry authoritative.
        from repro.telemetry.metrics import aggregate_campaign

        metrics = aggregate_campaign(
            level,
            [o.record for o in ordered_outcomes if o.status == OUTCOME_OK],
            extra_symptoms=tuple(getattr(config, "detectors", ()) or ()),
        )
        metrics.planner = planner_totals
        with JournalWriter(journal_path, append=True) as tail:
            tail.write(metrics.to_entry())
    return CampaignRunReport(
        level=level,
        config=config,
        result=result,
        outcomes=ordered_outcomes,
        executed=executed,
        resumed=resumed,
        skipped_workloads=skipped,
        journal_path=journal_path,
        jobs=jobs,
        cache_dir=cache_dir,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        planner=planner,
        planner_totals=planner_totals,
    )
