"""Architectural simulator: execution, exceptions, traces."""

from repro.arch import (
    ArchSimulator,
    ExceptionKind,
    StopReason,
    load_program,
)
from repro.arch.state import ArchState
from repro.isa import assemble
from repro.isa.program import STACK_TOP
from repro.isa.registers import REG_GP, REG_SP
from tests.conftest import assemble_and_run


class TestBasicExecution:
    def test_halt(self):
        sim, _ = assemble_and_run(".text\nstart: halt\n")
        assert sim.stop_reason is StopReason.HALTED
        assert sim.retired == 1  # the halt itself retires

    def test_arithmetic_chain(self):
        sim, _ = assemble_and_run(
            ".text\nstart: li r1, 6\n li r2, 7\n mulq r1, r2, r3\n halt\n"
        )
        assert sim.state.regs[3] == 42

    def test_r31_always_zero(self):
        sim, _ = assemble_and_run(
            ".text\nstart: addq zero, 9, zero\n addq zero, zero, r1\n halt\n"
        )
        assert sim.state.regs[31] == 0
        assert sim.state.regs[1] == 0

    def test_loop_retires_expected_count(self):
        sim, _ = assemble_and_run(
            ".text\nstart: li r1, 10\nloop: subq r1, 1, r1\n bne r1, loop\n halt\n"
        )
        assert sim.retired == 1 + 20 + 1  # li + 10x(subq, bne) + halt

    def test_abi_initialisation(self):
        sim, program = assemble_and_run(".text\nstart: halt\n")
        assert sim.state.regs[REG_SP] == STACK_TOP - 64
        assert sim.state.regs[REG_GP] == program.data_base

    def test_call_and_return(self):
        sim, _ = assemble_and_run(
            ".text\nstart: bsr ra, fn\n halt\nfn: li r0, 55\n ret\n"
        )
        assert sim.state.regs[0] == 55

    def test_run_limit(self):
        sim, _ = assemble_and_run(
            ".text\nstart: br start\n", max_instructions=50
        )
        assert sim.stop_reason is StopReason.LIMIT
        assert sim.retired == 50

    def test_resume_after_limit(self):
        source = ".text\nstart: li r1, 100\nloop: subq r1,1,r1\n bne r1, loop\n halt\n"
        sim, _ = assemble_and_run(source, max_instructions=10)
        sim.resume()
        sim.run(100000)
        assert sim.stop_reason is StopReason.HALTED


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        sim, program = assemble_and_run(
            ".text\nstart: la r1, v\n li r2, 1234\n stq r2, 0(r1)\n"
            " ldq r3, 0(r1)\n halt\n.data\nv: .quad 0\n"
        )
        assert sim.state.regs[3] == 1234

    def test_byte_ops(self):
        sim, _ = assemble_and_run(
            ".text\nstart: la r1, v\n li r2, 0x1FF\n stb r2, 0(r1)\n"
            " ldbu r3, 0(r1)\n halt\n.data\nv: .quad 0\n"
        )
        assert sim.state.regs[3] == 0xFF

    def test_ldl_sign_extends(self):
        sim, _ = assemble_and_run(
            ".text\nstart: la r1, v\n ldl r2, 0(r1)\n halt\n"
            ".data\nv: .long 0x80000000\n"
        )
        assert sim.state.regs[2] == 0xFFFF_FFFF_8000_0000


class TestExceptions:
    def test_access_violation_on_wild_load(self):
        sim, _ = assemble_and_run(
            ".text\nstart: li r1, 0x7000000\n ldq r2, 0(r1)\n halt\n"
        )
        assert sim.stop_reason is StopReason.EXCEPTION
        assert sim.exception.kind is ExceptionKind.ACCESS_VIOLATION
        assert sim.exception.pc is not None

    def test_store_to_text_is_violation(self):
        sim, program = assemble_and_run(
            ".text\nstart: la r1, start\n stq r1, 0(r1)\n halt\n"
        )
        assert sim.exception.kind is ExceptionKind.ACCESS_VIOLATION

    def test_alignment_fault(self):
        sim, _ = assemble_and_run(
            ".text\nstart: la r1, v\n ldq r2, 1(r1)\n halt\n.data\nv: .quad 0\n"
        )
        assert sim.exception.kind is ExceptionKind.ALIGNMENT_FAULT

    def test_arithmetic_trap(self):
        sim, _ = assemble_and_run(
            ".text\nstart: li r1, 1\n sll r1, 62, r1\n addqv r1, r1, r2\n halt\n"
        )
        assert sim.exception.kind is ExceptionKind.ARITHMETIC_TRAP

    def test_illegal_opcode_via_wild_jump_to_data(self):
        sim, _ = assemble_and_run(
            ".text\nstart: la r1, v\n jmp (r1)\n halt\n.data\nv: .quad 0x04\n"
        )
        # The data word 0x04 is not a valid instruction encoding.
        assert sim.exception.kind is ExceptionKind.ILLEGAL_OPCODE

    def test_wild_jump_to_unmapped_is_access_violation(self):
        sim, _ = assemble_and_run(
            ".text\nstart: li r1, 0x7000000\n jmp (r1)\n halt\n"
        )
        assert sim.exception.kind is ExceptionKind.ACCESS_VIOLATION

    def test_misaligned_pc_is_alignment_fault(self):
        sim, _ = assemble_and_run(
            ".text\nstart: la r1, start\n addq r1, 2, r1\n jmp (r1)\n halt\n"
        )
        # jump_target clears bit 0 and 1, so force odd PC through arithmetic:
        # actually jump clears low bits; construct misaligned PC via ret with
        # a poisoned link register instead.
        # If the jump aligned it, execution continues; accept either halt or
        # alignment. The strict check lives below via direct state access.
        state = ArchState()
        state.memory.map_region(0, 8192)
        state.pc = 2
        sim2 = ArchSimulator(state)
        sim2.step()
        assert sim2.exception.kind is ExceptionKind.ALIGNMENT_FAULT


class TestTracing:
    def test_trace_contents(self):
        program = assemble(
            ".text\nstart: la r1, v\n li r2, 5\n stq r2, 0(r1)\n"
            " ldq r3, 0(r1)\n halt\n.data\nv: .quad 0\n"
        )
        sim = load_program(program)
        trace = sim.run_with_trace(1000)
        assert trace.halted
        assert trace.length == sim.retired
        memops = [operation for operation in trace.memops]
        assert ("S", program.symbol("v"), 5) in memops
        assert ("L", program.symbol("v"), 5) in memops
        assert trace.final_regs[3] == 5
        assert trace.final_memory.read(program.symbol("v"), 8) == 5

    def test_writer_steps_point_at_register_writers(self):
        program = assemble(".text\nstart: li r1, 5\n nop\n halt\n")
        sim = load_program(program)
        trace = sim.run_with_trace(100)
        assert 0 in trace.writer_steps  # li writes r1
        assert 1 not in trace.writer_steps  # nop writes nothing


class TestFork:
    def test_fork_is_independent(self):
        program = assemble(
            ".text\nstart: li r1, 10\nloop: subq r1, 1, r1\n bne r1, loop\n halt\n"
        )
        sim = load_program(program)
        sim.run(5)
        sim.resume()
        fork = sim.fork()
        fork.run(100000)
        assert fork.stop_reason is StopReason.HALTED
        assert sim.retired == 5  # parent untouched

    def test_fork_shares_compiled_closures(self):
        program = assemble(".text\nstart: nop\n halt\n")
        sim = load_program(program)
        fork = sim.fork()
        assert fork._closures is sim._closures


class TestPredecodeCopyOnWrite:
    """``fork()`` shares the pre-decoded instruction dict copy-on-write:
    both sides read it freely, and whichever side first rewrites its text
    detaches to a private dict instead of clearing the shared one."""

    SOURCE = (
        ".text\n"
        "start: li r1, 0\n"
        " li r2, 3\n"
        "loop: addq r1, 5, r1\n"
        " subq r2, 1, r2\n"
        " bne r2, loop\n"
        " halt\n"
    )
    PATCHED = SOURCE.replace("addq r1, 5, r1", "addq r1, 7, r1")

    def _mid_loop_pair(self):
        """A simulator stopped after one loop iteration, plus its fork."""
        sim = load_program(assemble(self.SOURCE))
        sim.run(4)  # li, li, addq(+5), subq — the loop body is predecoded
        sim.resume()
        return sim, sim.fork()

    def _patch_text(self, sim):
        text = assemble(self.PATCHED).text_segment
        sim.state.memory.load_bytes(text.base, bytes(text.data))

    def test_fork_shares_the_predecode_dict(self):
        sim, fork = self._mid_loop_pair()
        assert fork._predecoded is sim._predecoded
        assert sim._predecode_shared and fork._predecode_shared

    def test_fork_runs_bit_identically_to_a_fresh_simulator(self):
        _, fork = self._mid_loop_pair()
        fresh = load_program(assemble(self.SOURCE))
        assert fork.run(100) is StopReason.HALTED
        assert fresh.run(100) is StopReason.HALTED
        assert fork.state.regs == fresh.state.regs
        assert fork.state.pc == fresh.state.pc

    def test_parent_text_rewrite_cannot_leak_into_fork(self):
        """Regression: fork() shared the dict without marking the parent
        as a sharer, so a parent text rewrite cleared and refilled the
        shared dict in place — and the fork, whose own memory never
        changed, executed closures compiled from the parent's new text."""
        sim, fork = self._mid_loop_pair()
        self._patch_text(sim)
        assert sim.run(100) is StopReason.HALTED
        assert sim.state.regs[1] == 5 + 7 + 7  # two patched iterations
        assert fork.run(100) is StopReason.HALTED
        assert fork.state.regs[1] == 15  # original text throughout

    def test_fork_text_rewrite_cannot_leak_into_parent(self):
        sim, fork = self._mid_loop_pair()
        self._patch_text(fork)
        assert fork.run(100) is StopReason.HALTED
        assert fork.state.regs[1] == 5 + 7 + 7
        assert sim.run(100) is StopReason.HALTED
        assert sim.state.regs[1] == 15

    def test_sole_owner_rewrite_clears_in_place(self):
        sim = load_program(assemble(self.SOURCE))
        sim.run(4)
        sim.resume()
        predecoded = sim._predecoded
        self._patch_text(sim)
        assert sim.run(100) is StopReason.HALTED
        assert sim._predecoded is predecoded  # no fork: no detach needed
        assert sim.state.regs[1] == 5 + 7 + 7
