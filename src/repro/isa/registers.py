"""Integer register file conventions.

Thirty-two 64-bit integer registers, Alpha style: R31 always reads as zero
and writes to it are discarded. A few registers have conventional software
roles that the assembler accepts as aliases.
"""

from __future__ import annotations

NUM_REGS = 32

REG_V0 = 0  # return value
REG_RA = 26  # return address (BSR/JSR write it by convention)
REG_GP = 29  # global pointer (data segment base)
REG_SP = 30  # stack pointer
REG_ZERO = 31  # hardwired zero

_ALIASES = {
    "v0": REG_V0,
    "ra": REG_RA,
    "gp": REG_GP,
    "sp": REG_SP,
    "zero": REG_ZERO,
}

_ALIAS_BY_NUMBER = {number: name for name, number in _ALIASES.items()}


def register_name(number: int) -> str:
    """Canonical name for a register number (aliases preferred)."""
    if not 0 <= number < NUM_REGS:
        raise ValueError(f"register number out of range: {number}")
    if number in _ALIAS_BY_NUMBER and number != REG_V0:
        return _ALIAS_BY_NUMBER[number]
    return f"r{number}"


def register_number(name: str) -> int:
    """Parse a register name (``r12``, ``sp``, ``zero``, ...) to its number."""
    text = name.strip().lower()
    if text in _ALIASES:
        return _ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        number = int(text[1:])
        if 0 <= number < NUM_REGS:
            return number
    raise ValueError(f"unknown register name: {name!r}")
