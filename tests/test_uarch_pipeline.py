"""The out-of-order pipeline: architectural equivalence and mechanisms."""

import pytest

from repro.isa import assemble
from repro.uarch import PipelineConfig, load_pipeline
from repro.uarch.structures import EXC_ACCESS, EXC_ALIGN, EXC_ARITH, EXC_ILLEGAL
from repro.workloads import WORKLOAD_NAMES


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestArchitecturalEquivalence:
    """The pipeline must retire exactly the architectural execution."""

    def test_retired_pc_stream_matches(self, name, arch_traces, pipeline_runs):
        pipeline = pipeline_runs[name]
        assert pipeline.halted
        assert [r.pc for r in pipeline.retired_log] == arch_traces[name].pcs

    def test_store_stream_matches(self, name, arch_traces, pipeline_runs):
        pipeline = pipeline_runs[name]
        pipeline_stores = [
            (r.store_addr, r.store_data)
            for r in pipeline.retired_log
            if r.store_addr >= 0
        ]
        golden_stores = [
            (addr, data) for kind, addr, data in arch_traces[name].memops
            if kind == "S"
        ]
        assert pipeline_stores == golden_stores

    def test_final_registers_match(self, name, arch_traces, pipeline_runs):
        assert (
            pipeline_runs[name].arch_reg_values()
            == list(arch_traces[name].final_regs)
        )

    def test_final_memory_matches(self, name, arch_traces, pipeline_runs):
        assert pipeline_runs[name].memory.equals(arch_traces[name].final_memory)

    def test_workload_outputs(self, name, bundles, pipeline_runs):
        assert bundles[name].check(pipeline_runs[name].memory) == []


class TestTimingSanity:
    def test_superscalar_ipc(self, pipeline_runs):
        """A 6-issue machine should sustain IPC near 1 on these kernels."""
        for name, pipeline in pipeline_runs.items():
            ipc = pipeline.retired_count / pipeline.cycle_count
            assert 0.3 < ipc < 4.0, f"{name}: implausible IPC {ipc:.2f}"

    def test_branch_prediction_quality(self, pipeline_runs):
        """Paper: predictors are 'typically correct for well over 95% of
        branch instances'; ours won't match exactly on short runs but must
        be clearly better than chance."""
        total_branches = sum(p.branch_count for p in pipeline_runs.values())
        total_mispredicts = sum(p.mispredict_count for p in pipeline_runs.values())
        assert total_mispredicts / total_branches < 0.15

    def test_hc_mispredicts_are_rare(self, pipeline_runs):
        """The JRS gate keeps false-positive symptoms rare (Section 3.2.2)."""
        total_retired = sum(p.retired_count for p in pipeline_runs.values())
        total_hc = sum(p.hc_mispredict_count for p in pipeline_runs.values())
        assert total_hc / total_retired < 0.01

    def test_registered_state_scale(self, pipeline_runs):
        """The paper's model has ~46,000 bits of 'interesting' state."""
        bits = next(iter(pipeline_runs.values())).registry.total_bits()
        assert 30_000 < bits < 70_000


class TestExceptionsAtRetire:
    def run_pipeline(self, source):
        program = assemble(source, "t")
        pipeline = load_pipeline(program, collect_retired=True)
        pipeline.run(50_000)
        return pipeline

    def test_wild_load_raises_access(self):
        pipeline = self.run_pipeline(
            ".text\nstart: li r1, 0x7000000\n ldq r2, 0(r1)\n halt\n"
        )
        assert pipeline.stopped
        assert pipeline.exception[0] == EXC_ACCESS

    def test_misaligned_load(self):
        pipeline = self.run_pipeline(
            ".text\nstart: la r1, v\n ldq r2, 1(r1)\n halt\n.data\nv: .quad 0\n"
        )
        assert pipeline.exception[0] == EXC_ALIGN

    def test_store_to_text(self):
        pipeline = self.run_pipeline(
            ".text\nstart: la r1, start\n stq r1, 0(r1)\n halt\n"
        )
        assert pipeline.exception[0] == EXC_ACCESS

    def test_arithmetic_trap(self):
        pipeline = self.run_pipeline(
            ".text\nstart: li r1, 1\n sll r1, 62, r1\n addqv r1, r1, r2\n halt\n"
        )
        assert pipeline.exception[0] == EXC_ARITH

    def test_illegal_from_data_jump(self):
        pipeline = self.run_pipeline(
            ".text\nstart: la r1, v\n jmp (r1)\n halt\n.data\nv: .quad 0x04\n"
        )
        assert pipeline.exception[0] == EXC_ILLEGAL

    def test_wrong_path_faults_are_squashed(self):
        """A load on a mispredicted path must never raise at retirement."""
        # The branch below is always taken at runtime; the fall-through path
        # dereferences a wild pointer. With any predictor state the machine
        # may fetch and even execute the wild load speculatively.
        pipeline = self.run_pipeline(
            ".text\n"
            "start: li r5, 64\n"
            "       li r9, 0x7000000\n"
            "loop:  subq r5, 1, r5\n"
            "       beq r5, done\n"
            "       br loop\n"
            "       ldq r2, 0(r9)\n"   # never architecturally reached
            "done:  halt\n"
        )
        assert pipeline.halted
        assert pipeline.exception is None

    def test_exception_symptom_emitted(self):
        pipeline = self.run_pipeline(
            ".text\nstart: li r1, 0x7000000\n ldq r2, 0(r1)\n halt\n"
        )
        kinds = [s.kind for s in pipeline.symptoms]
        assert "exception" in kinds


class TestWatchdog:
    def test_deadlock_detection_on_artificial_stall(self):
        program = assemble(".text\nstart: br start\n", "spin")
        config = PipelineConfig(watchdog_cycles=100)
        pipeline = load_pipeline(program, config=config)
        # Starve retirement artificially (as a stuck ROB head would).
        pipeline.run(20)
        pipeline.retire_stall = True
        pipeline.run(5_000)
        assert pipeline.deadlock
        assert pipeline.stopped
        assert any(s.kind == "deadlock" for s in pipeline.symptoms)

    def test_healthy_run_never_fires_watchdog(self, pipeline_runs):
        for pipeline in pipeline_runs.values():
            assert not pipeline.deadlock


class TestForkDeterminism:
    def test_fork_continues_identically(self, bundles):
        bundle = bundles["parser"]
        pipeline = load_pipeline(bundle.program, collect_retired=True)
        pipeline.run(1_000)
        fork = pipeline.fork()
        fork.retired_log = []
        pipeline.run(2_000)
        fork.run(2_000)
        tail = pipeline.retired_log[-len(fork.retired_log):]
        assert [(r.pc, r.dest, r.value) for r in tail] == [
            (r.pc, r.dest, r.value) for r in fork.retired_log
        ]

    def test_fork_isolated_from_parent(self, bundles):
        bundle = bundles["gcc"]
        pipeline = load_pipeline(bundle.program)
        pipeline.run(500)
        fork = pipeline.fork()
        fork.registry.fields[0].flip(0)
        fork.run(100)
        # Parent state must be unaffected by the fork's flip and progress.
        parent_snapshot = pipeline.registry.snapshot()
        pipeline.run(0)
        assert pipeline.registry.snapshot() == parent_snapshot

    def test_fork_memory_isolated(self, bundles):
        bundle = bundles["gcc"]
        pipeline = load_pipeline(bundle.program)
        pipeline.run(500)
        fork = pipeline.fork()
        fork.run(5_000)
        assert not pipeline.halted or fork.halted


class TestCacheSymptoms:
    def test_miss_symptoms_recorded_when_enabled(self, bundles):
        pipeline = load_pipeline(bundles["mcf"].program, record_cache_symptoms=True)
        pipeline.run(50_000)
        kinds = {s.kind for s in pipeline.symptoms}
        assert "dcache_miss" in kinds or "dtlb_miss" in kinds

    def test_miss_symptoms_suppressed_by_default(self, pipeline_runs):
        for pipeline in pipeline_runs.values():
            kinds = {s.kind for s in pipeline.symptoms}
            assert "dcache_miss" not in kinds


class TestForkCloneConsistency:
    """fork() must deep-copy the whole memory hierarchy, counters included.

    Regression: fork used to rebuild caches and TLBs without their
    hit/miss counters (and, once cache state became registerable, a
    wholesale list replacement would have silently detached the fork's
    arrays from its registry closures).
    """

    def _forked(self, bundles, **kwargs):
        pipeline = load_pipeline(bundles["gcc"].program, **kwargs)
        pipeline.run(2_000)
        return pipeline, pipeline.fork()

    def test_cache_and_tlb_counters_survive_fork(self, bundles):
        pipeline, fork = self._forked(bundles)
        assert pipeline.icache.hits > 0 and pipeline.dcache.hits > 0
        for mine, theirs in (
            (pipeline.icache, fork.icache), (pipeline.dcache, fork.dcache),
            (pipeline.itlb, fork.itlb), (pipeline.dtlb, fork.dtlb),
        ):
            assert theirs.hits == mine.hits
            assert theirs.misses == mine.misses

    def test_cache_arrays_equal_but_not_aliased(self, bundles):
        pipeline, fork = self._forked(bundles)
        for mine, theirs in (
            (pipeline.icache, fork.icache), (pipeline.dcache, fork.dcache),
        ):
            assert theirs._tags == mine._tags
            assert theirs._valid == mine._valid
            assert theirs._order == mine._order
            assert theirs._tags is not mine._tags
        assert fork.itlb._pages == pipeline.itlb._pages
        assert fork.itlb._pages is not pipeline.itlb._pages

    def test_fork_registry_stays_bound_to_fork_arrays(self, bundles):
        """A flip through the fork's registry must land in the fork's cache
        arrays (not the parent's) — the in-place copy invariant."""
        pipeline, fork = self._forked(bundles, memhier_targets=True)
        flip_field = next(
            f for f in fork.registry.fields if f.name == "dcache.valid[0]"
        )
        before_parent = list(pipeline.dcache._valid)
        flip_field.flip(0)
        assert fork.dcache._valid[0] != pipeline.dcache._valid[0]
        assert pipeline.dcache._valid == before_parent

    def test_mshr_state_survives_fork(self, bundles):
        pipeline, fork = self._forked(bundles, memhier_targets=True)
        assert fork.mshr._valid == pipeline.mshr._valid
        assert fork.mshr._addr == pipeline.mshr._addr
        assert fork.mshr.allocations == pipeline.mshr.allocations
        assert fork.mshr._valid is not pipeline.mshr._valid


class TestMemhierTargets:
    def test_default_registry_has_no_memhier_state(self, pipeline_runs):
        for pipeline in pipeline_runs.values():
            structures = {f.structure for f in pipeline.registry.fields}
            assert not structures & {"icache", "dcache", "mshr"}
            assert "mem" not in {f.state_class for f in pipeline.registry.fields}

    def test_opt_in_registers_cache_and_mshr_state(self, bundles):
        base = load_pipeline(bundles["gcc"].program)
        on = load_pipeline(bundles["gcc"].program, memhier_targets=True)
        structures = {f.structure for f in on.registry.fields}
        assert {"icache", "dcache", "mshr"} <= structures
        mem_fields = [f for f in on.registry.fields if f.state_class == "mem"]
        assert mem_fields
        assert {f.structure for f in mem_fields} == {"icache", "dcache", "mshr"}
        # Opt-in only adds state: the default population is untouched, so
        # default campaigns' total_bits sentinel and RNG streams hold.
        assert on.registry.total_bits() > base.registry.total_bits()
        default_names = [f.name for f in base.registry.fields]
        assert [f.name for f in on.registry.fields][:len(default_names)] == \
            default_names

    def test_default_timing_unchanged_by_flag_plumbing(self, bundles):
        """With both flags off the pipeline must behave bit-identically to
        one built before the flags existed (same cycles, same stream)."""
        a = load_pipeline(bundles["mcf"].program, collect_retired=True)
        b = load_pipeline(
            bundles["mcf"].program, collect_retired=True,
            record_memhier_symptoms=False, memhier_targets=False,
        )
        a.run(30_000)
        b.run(30_000)
        assert a.cycle_count == b.cycle_count
        assert [r.pc for r in a.retired_log] == [r.pc for r in b.retired_log]


class TestMemhierSymptoms:
    def test_cache_symptom_payloads_are_position_pc_tuples(self, bundles):
        """Every cache/TLB handler payload is (retired_position, pc) — the
        detector windows by position, the controller reports the pc."""
        pipeline = load_pipeline(
            bundles["mcf"].program, record_cache_symptoms=True
        )
        seen = []
        pipeline.symptom_handler = (
            lambda kind, payload: seen.append((kind, payload)) and False
        )
        pipeline.run(20_000)
        miss_kinds = {"icache_miss", "dcache_miss", "itlb_miss", "dtlb_miss"}
        misses = [(k, p) for k, p in seen if k in miss_kinds]
        assert misses
        for kind, payload in misses:
            assert isinstance(payload, tuple) and len(payload) == 2
            position, pc = payload
            assert 0 <= position <= pipeline.retired_count
            assert pc >= 0

    def test_spurious_fill_emits_symptom_when_enabled(self, bundles):
        pipeline = load_pipeline(
            bundles["gcc"].program, memhier_targets=True,
            record_memhier_symptoms=True,
        )
        pipeline.run(500)
        seen = []
        pipeline.symptom_handler = (
            lambda kind, payload: seen.append((kind, payload)) and False
        )
        pipeline._mshr_fill_complete(0xDEAD00)  # no matching MSHR entry
        assert ("spurious_memop", (pipeline.retired_count, 0xDEAD00)) in seen
        assert any(s.kind == "spurious_memop" for s in pipeline.symptoms)

    def test_spurious_fill_silent_by_default(self, bundles):
        pipeline = load_pipeline(bundles["gcc"].program, memhier_targets=True)
        pipeline.run(500)
        pipeline._mshr_fill_complete(0xDEAD00)
        assert not any(s.kind == "spurious_memop" for s in pipeline.symptoms)

    def test_stall_streak_reported_when_enabled(self, bundles):
        pipeline = load_pipeline(
            bundles["gcc"].program, record_memhier_symptoms=True
        )
        pipeline.run(200)
        seen = []
        pipeline.symptom_handler = (
            lambda kind, payload: seen.append((kind, payload)) and False
        )
        # Starve retirement past the streak floor, then release.
        pipeline.retire_stall = True
        pipeline.run(pipeline.config.stall_streak_floor + 20)
        pipeline.retire_stall = False
        pipeline.run(200)
        streaks = [p for k, p in seen if k == "stall_streak"]
        assert streaks
        position, streak, pc = streaks[0]
        assert streak >= pipeline.config.stall_streak_floor
        assert position == pipeline.retired_count or position >= 0

    def test_stall_streaks_silent_by_default(self, pipeline_runs):
        for pipeline in pipeline_runs.values():
            assert not any(s.kind == "stall_streak" for s in pipeline.symptoms)
