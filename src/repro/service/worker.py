"""Workers: the processes that actually run leased work units.

:func:`execute_unit` is the single entry point a worker of any kind
runs: rebuild the spec and unit, run the workload's stride slice under a
:class:`~repro.campaign.guard.TrialGuard`, and return a JSON-able result
(trial entries, skip reason, bit population, and this slice's telemetry
aggregate). It is a top-level function of picklable arguments so a
:class:`~concurrent.futures.ProcessPoolExecutor` can ship it across a
fork, and it takes/returns plain dicts so the same code serves the HTTP
worker protocol unchanged.

Two drivers wrap it:

- :class:`LocalWorkerPool` — asyncio tasks inside the ``repro serve``
  process, each looping lease → execute (in an executor, so the event
  loop keeps serving HTTP) → complete/fail, with a concurrent heartbeat
  keeping the lease alive for long units.
- :class:`RemoteWorker` — a standalone ``repro worker`` process that
  speaks the same protocol over HTTP through
  :class:`~repro.service.client.ServiceClient`, so a fleet on other
  machines can drain the queue. Heartbeats run on a daemon thread while
  the unit executes.

Both report failures instead of crashing: an exception inside
``execute_unit`` (beyond what the guard already contains) becomes a
``fail`` report, and the scheduler's attempt accounting decides whether
the unit is requeued or retired.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Executor, ProcessPoolExecutor

from repro.campaign.guard import TrialGuard
from repro.campaign.outcomes import OUTCOME_OK
from repro.campaign.runner import _campaign_module
from repro.service.shard import WorkUnit
from repro.service.spec import JobSpec


def execute_unit(
    spec_dict: dict, unit_dict: dict, cache_dir: str | None = None
) -> dict:
    """Run one work unit and return its JSON-able result payload.

    ``cache_dir`` is a worker-deployment knob, not part of the job spec:
    pointing every worker of a fleet at one shared directory lets the
    first to reach a (workload, config) pay for its golden run and every
    other shard load it. The ``golden_cache`` field of the result is
    observability only — trial entries are bit-identical either way.
    """
    spec = JobSpec.from_dict(spec_dict)
    unit = WorkUnit.from_dict(unit_dict)
    module = _campaign_module(spec.level)
    guard = TrialGuard(timeout=spec.trial_timeout)
    cache = None
    if cache_dir is not None:
        from repro.cache import GoldenArtifactCache

        cache = GoldenArtifactCache(cache_dir)
    outcome = module.run_workload_trials(
        spec.config, unit.workload, guard=guard, shard=unit.shard, cache=cache
    )
    from repro.telemetry.metrics import aggregate_campaign

    metrics = aggregate_campaign(
        spec.level,
        [o.record for o in outcome.outcomes if o.status == OUTCOME_OK],
    )
    return {
        "outcomes": [o.to_entry() for o in outcome.outcomes],
        "skip_reason": outcome.skip_reason,
        "total_bits": outcome.total_bits,
        "metrics": metrics.to_entry(),
        "golden_cache": outcome.golden_cache,
    }


class LocalWorkerPool:
    """In-process workers for ``repro serve``: asyncio loops over a pool.

    Each of the ``workers`` loops leases directly from the scheduler (no
    HTTP round trip for the built-in fleet) and runs
    :func:`execute_unit` on ``executor`` — a process pool by default, so
    trial execution parallelizes across cores while the event loop stays
    responsive. While a unit executes, the loop heartbeats its lease at a
    third of the TTL.
    """

    def __init__(
        self,
        scheduler,
        workers: int = 1,
        *,
        executor: Executor | None = None,
        poll_interval: float = 0.2,
        cache_dir: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.scheduler = scheduler
        self.workers = workers
        self.poll_interval = poll_interval
        self.cache_dir = cache_dir
        self._executor = executor
        self._owns_executor = executor is None
        self._tasks: list[asyncio.Task] = []
        self.units_done = 0
        self.units_failed = 0

    def start(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._worker_loop(f"local-{index}"))
            for index in range(self.workers)
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def _worker_loop(self, name: str) -> None:
        while True:
            lease = self.scheduler.lease(name)
            if lease is None:
                await asyncio.sleep(self.poll_interval)
                continue
            await self._run_unit(name, lease)

    async def _run_unit(self, name: str, lease: dict) -> None:
        unit = lease["unit"]
        job_id, unit_id = unit["job_id"], unit["unit_id"]
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor, execute_unit, lease["spec"], unit, self.cache_dir
        )
        interval = max(0.05, lease.get("lease_ttl", 60.0) / 3)
        try:
            while True:
                done, _ = await asyncio.wait({future}, timeout=interval)
                if done:
                    break
                self.scheduler.heartbeat(job_id, unit_id, name)
            result = future.result()
        except asyncio.CancelledError:
            self.scheduler.fail(job_id, unit_id, name, "worker shut down")
            raise
        except Exception as exc:
            self.units_failed += 1
            self.scheduler.fail(job_id, unit_id, name, repr(exc))
            return
        self.units_done += 1
        self.scheduler.complete(job_id, unit_id, name, result)


class RemoteWorker:
    """A pull-based worker process speaking the HTTP lease protocol."""

    def __init__(
        self,
        client,
        name: str,
        *,
        poll_interval: float = 0.5,
        max_units: int | None = None,
        exit_when_idle: bool = False,
        cache_dir: str | None = None,
    ):
        self.client = client
        self.name = name
        self.poll_interval = poll_interval
        self.max_units = max_units
        self.exit_when_idle = exit_when_idle
        self.cache_dir = cache_dir
        self.units_done = 0
        self.units_failed = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> int:
        """Drain the queue until stopped; returns units completed."""
        while not self._stop.is_set():
            if self.max_units is not None and (
                self.units_done + self.units_failed >= self.max_units
            ):
                break
            lease = self.client.lease(self.name)
            if lease is None:
                if self.exit_when_idle:
                    break
                self._stop.wait(self.poll_interval)
                continue
            self._run_unit(lease)
        return self.units_done

    def _run_unit(self, lease: dict) -> None:
        unit = lease["unit"]
        job_id, unit_id = unit["job_id"], unit["unit_id"]
        interval = max(0.05, float(lease.get("lease_ttl", 60.0)) / 3)
        beat_stop = threading.Event()

        def beat() -> None:
            while not beat_stop.wait(interval):
                try:
                    if not self.client.heartbeat(job_id, unit_id, self.name):
                        return  # lease lost; the executor's report will bounce
                except Exception:
                    return

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            result = execute_unit(lease["spec"], unit, self.cache_dir)
        except Exception as exc:
            beat_stop.set()
            self.units_failed += 1
            try:
                self.client.fail(job_id, unit_id, self.name, repr(exc))
            except Exception:
                pass
            return
        finally:
            beat_stop.set()
            beater.join(timeout=1.0)
        self.units_done += 1
        self.client.complete(job_id, unit_id, self.name, result)
