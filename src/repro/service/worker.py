"""Workers: the processes that actually run leased work units.

:func:`execute_unit` is the single entry point a worker of any kind
runs: rebuild the spec and unit, run the workload's stride slice under a
:class:`~repro.campaign.guard.TrialGuard`, and return a JSON-able result
(trial entries, skip reason, bit population, and this slice's telemetry
aggregate). It is a top-level function of picklable arguments so a
:class:`~concurrent.futures.ProcessPoolExecutor` can ship it across a
fork, and it takes/returns plain dicts so the same code serves the HTTP
worker protocol unchanged.

Two drivers wrap it:

- :class:`LocalWorkerPool` — asyncio tasks inside the ``repro serve``
  process, each looping lease → execute (in an executor, so the event
  loop keeps serving HTTP) → complete/fail, with a concurrent heartbeat
  keeping the lease alive for long units.
- :class:`RemoteWorker` — a standalone ``repro worker`` process that
  speaks the same protocol over HTTP through
  :class:`~repro.service.client.ServiceClient`, so a fleet on other
  machines can drain the queue. Heartbeats run on a daemon thread while
  the unit executes.

A finished trial is the most expensive thing a worker holds, so the
remote driver treats result delivery as a transaction against a hostile
network: a ``complete()`` whose retries are exhausted spools the result
to the on-disk :class:`WorkerOutbox` and replays it before the next
lease, heartbeats retry with backoff and only stop when the scheduler
says the lease is gone, and a *bounced* report (the scheduler refused it
because the lease expired — meaning the unit will run twice) is counted
in ``units_bounced`` and surfaced as a :class:`WorkerDeliveryWarning`
instead of vanishing. Failures inside ``execute_unit`` (beyond what the
guard already contains) still become ``fail`` reports, and the
scheduler's attempt accounting decides whether the unit is requeued or
dead-lettered.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor

from repro.campaign.guard import TrialGuard
from repro.campaign.outcomes import OUTCOME_OK
from repro.campaign.runner import _campaign_module
from repro.service.client import ServiceClientError
from repro.service.shard import WorkUnit
from repro.service.spec import JobSpec


class WorkerDeliveryWarning(UserWarning):
    """A unit report bounced or had to be spooled — work may repeat."""


def execute_unit(
    spec_dict: dict, unit_dict: dict, cache_dir: str | None = None
) -> dict:
    """Run one work unit and return its JSON-able result payload.

    ``cache_dir`` is a worker-deployment knob, not part of the job spec:
    pointing every worker of a fleet at one shared directory lets the
    first to reach a (workload, config) pay for its golden run and every
    other shard load it. The ``golden_cache`` field of the result is
    observability only — trial entries are bit-identical either way.
    """
    spec = JobSpec.from_dict(spec_dict)
    unit = WorkUnit.from_dict(unit_dict)
    module = _campaign_module(spec.level)
    guard = TrialGuard(timeout=spec.trial_timeout)
    cache = None
    if cache_dir is not None:
        from repro.cache import GoldenArtifactCache

        cache = GoldenArtifactCache(cache_dir)
    outcome = module.run_workload_trials(
        spec.config, unit.workload, guard=guard, shard=unit.shard, cache=cache
    )
    from repro.telemetry.metrics import aggregate_campaign

    metrics = aggregate_campaign(
        spec.level,
        [o.record for o in outcome.outcomes if o.status == OUTCOME_OK],
    )
    return {
        "outcomes": [o.to_entry() for o in outcome.outcomes],
        "skip_reason": outcome.skip_reason,
        "total_bits": outcome.total_bits,
        "metrics": metrics.to_entry(),
        "golden_cache": outcome.golden_cache,
    }


class WorkerOutbox:
    """A durable spool of completed-unit results awaiting delivery.

    One JSON file per undelivered result, written atomically (private
    temp file + ``os.replace``) so a worker killed mid-spool leaves
    either a complete record or nothing — the journal's torn-tail rule
    applied to the worker's side of the protocol. Replay walks the spool
    oldest-first; a retryable delivery error stops the walk (the service
    is unreachable — later files would fail too), a bounce or fatal
    rejection discards the file (the scheduler has authoritatively moved
    on). Files survive worker restarts: a new worker pointed at the same
    directory delivers its predecessor's results instead of letting the
    lease expire and the unit recompute.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, job_id: str, unit_id: str) -> str:
        tag = hashlib.sha256(f"{job_id}:{unit_id}".encode()).hexdigest()[:16]
        return os.path.join(self.directory, f"{job_id}-{tag}.json")

    def spool(
        self, job_id: str, unit_id: str, worker: str, result: dict
    ) -> str:
        record = {
            "job_id": job_id, "unit_id": unit_id, "worker": worker,
            "result": result,
        }
        path = self._path(job_id, unit_id)
        handle, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".spool-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as out:
                json.dump(record, out)
                out.flush()
                os.fsync(out.fileno())
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return path

    def pending(self) -> list[str]:
        """Spooled record paths, oldest first."""
        names = [
            name for name in os.listdir(self.directory)
            if name.endswith(".json")
        ]
        paths = [os.path.join(self.directory, name) for name in names]
        return sorted(paths, key=lambda p: (os.path.getmtime(p), p))

    def replay(self, client) -> tuple[int, int]:
        """Attempt to deliver every spooled result through ``client``.

        Returns ``(delivered, bounced)``. Stops early on a retryable
        error (the service is unreachable; the spool stays intact for
        the next attempt).
        """
        delivered = bounced = 0
        for path in self.pending():
            try:
                with open(path) as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                # A torn or unreadable record cannot be delivered, ever.
                warnings.warn(
                    f"outbox: discarding unreadable spool file {path}",
                    WorkerDeliveryWarning, stacklevel=2,
                )
                os.unlink(path)
                continue
            try:
                accepted = client.complete(
                    record["job_id"], record["unit_id"], record["worker"],
                    record["result"],
                )
            except ServiceClientError as exc:
                if exc.retryable:
                    break
                warnings.warn(
                    f"outbox: service rejected spooled result for "
                    f"{record['job_id']}/{record['unit_id']}: {exc}",
                    WorkerDeliveryWarning, stacklevel=2,
                )
                os.unlink(path)
                continue
            if accepted:
                delivered += 1
            else:
                bounced += 1
                warnings.warn(
                    f"outbox: spooled result for {record['job_id']}/"
                    f"{record['unit_id']} bounced (lease lost — the unit "
                    f"ran elsewhere)",
                    WorkerDeliveryWarning, stacklevel=2,
                )
            os.unlink(path)
        return delivered, bounced


class LocalWorkerPool:
    """In-process workers for ``repro serve``: asyncio loops over a pool.

    Each of the ``workers`` loops leases directly from the scheduler (no
    HTTP round trip for the built-in fleet) and runs
    :func:`execute_unit` on ``executor`` — a process pool by default, so
    trial execution parallelizes across cores while the event loop stays
    responsive. While a unit executes, the loop heartbeats its lease at a
    third of the TTL. Reports the scheduler refuses (the lease expired
    under us) are counted in ``units_bounced`` — a bounced complete
    means the unit will execute twice, which operators should see.
    """

    def __init__(
        self,
        scheduler,
        workers: int = 1,
        *,
        executor: Executor | None = None,
        poll_interval: float = 0.2,
        cache_dir: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.scheduler = scheduler
        self.workers = workers
        self.poll_interval = poll_interval
        self.cache_dir = cache_dir
        self._executor = executor
        self._owns_executor = executor is None
        self._tasks: list[asyncio.Task] = []
        self.units_done = 0
        self.units_failed = 0
        self.units_bounced = 0

    def start(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._worker_loop(f"local-{index}"))
            for index in range(self.workers)
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _bounce(self, job_id: str, unit_id: str, kind: str) -> None:
        self.units_bounced += 1
        warnings.warn(
            f"{kind} report for {job_id}/{unit_id} bounced (lease "
            f"expired) — the unit may execute twice",
            WorkerDeliveryWarning, stacklevel=2,
        )

    async def _worker_loop(self, name: str) -> None:
        while True:
            lease = self.scheduler.lease(name)
            if lease is None:
                await asyncio.sleep(self.poll_interval)
                continue
            await self._run_unit(name, lease)

    async def _run_unit(self, name: str, lease: dict) -> None:
        unit = lease["unit"]
        job_id, unit_id = unit["job_id"], unit["unit_id"]
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor, execute_unit, lease["spec"], unit, self.cache_dir
        )
        interval = max(0.05, lease.get("lease_ttl", 60.0) / 3)
        try:
            while True:
                done, _ = await asyncio.wait({future}, timeout=interval)
                if done:
                    break
                self.scheduler.heartbeat(job_id, unit_id, name)
            result = future.result()
        except asyncio.CancelledError:
            self.scheduler.fail(job_id, unit_id, name, "worker shut down")
            raise
        except Exception as exc:
            self.units_failed += 1
            if not self.scheduler.fail(job_id, unit_id, name, repr(exc)):
                self._bounce(job_id, unit_id, "fail")
            return
        self.units_done += 1
        if not self.scheduler.complete(job_id, unit_id, name, result):
            self._bounce(job_id, unit_id, "complete")


class RemoteWorker:
    """A pull-based worker process speaking the HTTP lease protocol.

    Resilience posture (all counters are public attributes):

    - ``lease()`` failures (service unreachable, breaker open) back off
      for ``poll_interval`` and try again — a worker never dies because
      the scheduler restarted.
    - Heartbeats retry on any delivery error (``heartbeat_retries``) and
      stop only when the scheduler answers ``ok: false`` — a single
      transient error must not silently expire a live lease
      (``leases_lost`` counts genuine evictions).
    - A ``complete()`` that exhausts its retries spools the result to
      the :class:`WorkerOutbox` (``outbox_spooled``) and replays it
      before the next lease (``outbox_replayed``) — a finished trial is
      never recomputed because the network hiccuped.
    - Bounced reports (``units_bounced``) are warned about, since they
      mean duplicate execution somewhere in the fleet.
    """

    def __init__(
        self,
        client,
        name: str,
        *,
        poll_interval: float = 0.5,
        max_units: int | None = None,
        exit_when_idle: bool = False,
        cache_dir: str | None = None,
        outbox_dir: str | None = None,
    ):
        self.client = client
        self.name = name
        self.poll_interval = poll_interval
        self.max_units = max_units
        self.exit_when_idle = exit_when_idle
        self.cache_dir = cache_dir
        if outbox_dir is None:
            outbox_dir = tempfile.mkdtemp(prefix=f"repro-outbox-{name}-")
        self.outbox = WorkerOutbox(outbox_dir)
        self.units_done = 0
        self.units_failed = 0
        self.units_bounced = 0
        self.outbox_spooled = 0
        self.outbox_replayed = 0
        self.heartbeat_retries = 0
        self.leases_lost = 0
        self._stop = threading.Event()
        # Units whose results the service fatally rejected: we still hold
        # their lease, so the scheduler will re-issue them to us — but
        # re-executing yields the same rejected payload. Fail them
        # instead, so the attempt budget (and dead-letter backstop)
        # engages rather than a delivery livelock.
        self._rejected: set[tuple[str, str]] = set()

    def stop(self) -> None:
        self._stop.set()

    def counters(self) -> dict[str, int]:
        """The worker's resilience tallies, for logs and tests."""
        return {
            "units_done": self.units_done,
            "units_failed": self.units_failed,
            "units_bounced": self.units_bounced,
            "outbox_spooled": self.outbox_spooled,
            "outbox_replayed": self.outbox_replayed,
            "heartbeat_retries": self.heartbeat_retries,
            "leases_lost": self.leases_lost,
        }

    def run(self) -> int:
        """Drain the queue until stopped; returns units completed."""
        while not self._stop.is_set():
            outbox_pending = self._flush_outbox()
            if self.max_units is not None and (
                self.units_done + self.units_failed >= self.max_units
            ):
                break
            try:
                lease = self.client.lease(self.name)
            except ServiceClientError as exc:
                if not exc.retryable:
                    raise
                # Unreachable or breaker-open: the queue will come back.
                self._stop.wait(self.poll_interval)
                continue
            if lease is None:
                if self.exit_when_idle and not outbox_pending:
                    break
                self._stop.wait(self.poll_interval)
                continue
            unit = lease["unit"]
            if (unit["job_id"], unit["unit_id"]) in self._rejected:
                self._fail_rejected(unit["job_id"], unit["unit_id"])
                continue
            self._run_unit(lease)
        self._flush_outbox()
        return self.units_done

    def _fail_rejected(self, job_id: str, unit_id: str) -> None:
        """Surrender a re-issued lease whose results the service rejects."""
        self.units_failed += 1
        try:
            self.client.fail(
                job_id, unit_id, self.name,
                "results undeliverable (rejected by service)",
            )
        except ServiceClientError:
            self._stop.wait(self.poll_interval)

    def _flush_outbox(self) -> bool:
        """Replay spooled results; returns True if any remain spooled."""
        if not self.outbox.pending():
            return False
        try:
            delivered, bounced = self.outbox.replay(self.client)
        except ServiceClientError:
            return True
        self.outbox_replayed += delivered
        self.units_bounced += bounced
        return bool(self.outbox.pending())

    def _run_unit(self, lease: dict) -> None:
        unit = lease["unit"]
        job_id, unit_id = unit["job_id"], unit["unit_id"]
        interval = max(0.05, float(lease.get("lease_ttl", 60.0)) / 3)
        beat_stop = threading.Event()

        def beat() -> None:
            # Retry forever on delivery errors (the client already
            # applies per-call backoff); only a definitive "ok: false"
            # from the scheduler — the lease is gone — stops the loop.
            while not beat_stop.wait(interval):
                try:
                    alive = self.client.heartbeat(job_id, unit_id, self.name)
                except ServiceClientError:
                    self.heartbeat_retries += 1
                    continue
                if not alive:
                    self.leases_lost += 1
                    return

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            result = execute_unit(lease["spec"], unit, self.cache_dir)
        except Exception as exc:
            beat_stop.set()
            self.units_failed += 1
            try:
                if not self.client.fail(job_id, unit_id, self.name, repr(exc)):
                    self.units_bounced += 1
                    warnings.warn(
                        f"fail report for {job_id}/{unit_id} bounced "
                        f"(lease expired) — the unit may execute twice",
                        WorkerDeliveryWarning, stacklevel=2,
                    )
            except ServiceClientError:
                pass  # the lease TTL will requeue the attempt
            return
        finally:
            beat_stop.set()
            beater.join(timeout=1.0)
        self.units_done += 1
        self._deliver(job_id, unit_id, result)

    def _deliver(self, job_id: str, unit_id: str, result: dict) -> None:
        """Report a completed unit, spooling the result if delivery fails."""
        try:
            accepted = self.client.complete(
                job_id, unit_id, self.name, result
            )
        except ServiceClientError as exc:
            if exc.retryable:
                self.outbox.spool(job_id, unit_id, self.name, result)
                self.outbox_spooled += 1
                warnings.warn(
                    f"complete for {job_id}/{unit_id} undeliverable "
                    f"({exc}); result spooled to {self.outbox.directory} "
                    f"for replay",
                    WorkerDeliveryWarning, stacklevel=2,
                )
                return
            self.units_bounced += 1
            self._rejected.add((job_id, unit_id))
            warnings.warn(
                f"service rejected result for {job_id}/{unit_id}: {exc}",
                WorkerDeliveryWarning, stacklevel=2,
            )
            return
        if not accepted:
            self.units_bounced += 1
            warnings.warn(
                f"complete report for {job_id}/{unit_id} bounced (lease "
                f"expired) — the unit may execute twice",
                WorkerDeliveryWarning, stacklevel=2,
            )
