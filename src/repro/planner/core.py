"""The round-based adaptive planner: allocation, stopping rule, summaries.

One :class:`CampaignPlanner` instance plans one workload. The protocol is
a strict alternation the campaign code and the service scheduler both
follow:

1. ``plan_round()`` returns ``[(point, start_index, count), ...]`` — the
   next round's allocation, sorted by point. An empty list means the
   workload is finished (every point converged, or the budget is spent).
2. The caller executes (or replays, on resume) exactly those trials and
   reports each one via ``observe()``.
3. Repeat.

Every decision is a pure function of the cumulative per-point tallies at
the round boundary, which are themselves deterministic functions of
``(seed, workload, point, index)`` — so a resumed run, a parallel run,
or the service scheduler replaying journaled records all reconstruct the
identical round structure.

Prescreened points (see :mod:`repro.planner.prescreen`) are converged by
proof: round 0 assigns them ``min_trials`` trial indices so their records
exist in the journal (fabricated at zero simulation cost — the records
are exactly what simulation would produce), but those trials never count
against the executed-trial budget and are tallied separately as
prescreen hits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.util.stats import wilson_margin


class PlannerProtocolError(RuntimeError):
    """The plan/observe alternation was violated (a caller bug)."""


@dataclass(frozen=True)
class PlannerConfig:
    """The scientific knobs of an adaptive campaign.

    These change which trials run, so — unlike
    :class:`~repro.campaign.runner.ExecutionPolicy` — they are recorded
    in the journal manifest and checked on resume. ``margin`` is the
    target Wilson half-width on each point's failing proportion;
    ``min_trials`` is every point's round-0 allocation; ``round_trials``
    is the per-point top-up for still-wide points in later rounds;
    ``max_trials`` caps executed trials per workload (``None`` means "the
    campaign's uniform budget", ``trials_per_workload``); ``prescreen``
    enables the dead-register masking-equivalence classifier.
    """

    margin: float = 0.05
    min_trials: int = 20
    round_trials: int = 10
    max_trials: int | None = None
    prescreen: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.margin < 1.0:
            raise ValueError(f"margin must be in (0, 1), got {self.margin}")
        if self.min_trials < 1:
            raise ValueError(f"min_trials must be >= 1, got {self.min_trials}")
        if self.round_trials < 1:
            raise ValueError(
                f"round_trials must be >= 1, got {self.round_trials}"
            )
        if self.max_trials is not None and self.max_trials < 1:
            raise ValueError(
                f"max_trials must be >= 1 (or None for the uniform "
                f"budget), got {self.max_trials}"
            )
        if not isinstance(self.prescreen, bool):
            raise ValueError(f"prescreen must be a bool, got {self.prescreen!r}")

    def to_dict(self) -> dict:
        return {
            "margin": self.margin,
            "min_trials": self.min_trials,
            "round_trials": self.round_trials,
            "max_trials": self.max_trials,
            "prescreen": self.prescreen,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlannerConfig":
        known = {"margin", "min_trials", "round_trials", "max_trials",
                 "prescreen"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown planner options {unknown}")
        return cls(**data)


def resolve_budget(planner: PlannerConfig, config) -> int:
    """The per-workload executed-trial cap an adaptive run honors.

    Defaults to the campaign's uniform budget so "adaptive on" can only
    save trials, never silently spend more; ``max_trials`` overrides it
    in either direction.
    """
    if planner.max_trials is not None:
        return planner.max_trials
    return int(config.trials_per_workload)


class _PointState:
    __slots__ = ("point", "prescreened", "allocated", "observed", "ok",
                 "failing")

    def __init__(self, point: int, prescreened: bool):
        self.point = point
        self.prescreened = prescreened
        self.allocated = 0  # trial indices assigned so far
        self.observed = 0  # outcomes reported back so far
        self.ok = 0  # completed trials (tally denominator)
        self.failing = 0  # failing completed trials (tally numerator)


class CampaignPlanner:
    """Sequential trial allocation for one workload's injection points."""

    def __init__(
        self,
        config: PlannerConfig,
        points: Sequence[int],
        prescreened: Iterable[int] = (),
        *,
        budget: int,
    ):
        ordered = sorted(points)
        if len(set(ordered)) != len(ordered):
            raise ValueError("injection points must be unique")
        if not ordered:
            raise ValueError("need at least one injection point")
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        dead = set(prescreened)
        stray = dead - set(ordered)
        if stray:
            raise ValueError(f"prescreened points not in plan: {sorted(stray)}")
        self.config = config
        self.budget = int(budget)
        self.rounds = 0
        self._points = {
            point: _PointState(point, point in dead) for point in ordered
        }
        self._order = ordered
        self._pending = 0
        self._done = False

    # ------------------------------------------------------------- queries

    @property
    def points(self) -> list[int]:
        return list(self._order)

    @property
    def prescreened_points(self) -> list[int]:
        return [p for p in self._order if self._points[p].prescreened]

    @property
    def executed(self) -> int:
        """Trial indices allocated to live (non-prescreened) points."""
        return sum(
            s.allocated for s in self._points.values() if not s.prescreened
        )

    @property
    def prescreen_trials(self) -> int:
        return sum(
            s.allocated for s in self._points.values() if s.prescreened
        )

    def margin(self, point: int) -> float:
        """Current Wilson margin of one point (inf before any tally)."""
        state = self._points[point]
        if state.prescreened:
            return 0.0  # masked by proof: the interval is exact
        if state.ok == 0:
            return math.inf
        return wilson_margin(state.failing, state.ok)

    def converged(self, point: int) -> bool:
        return self.margin(point) <= self.config.margin

    # ------------------------------------------------------------ protocol

    def plan_round(self) -> list[tuple[int, int, int]]:
        """The next round's allocation as ``(point, start_index, count)``.

        Round 0 gives every point ``min_trials``; later rounds top up the
        unconverged points, widest margin first (ties broken by point),
        ``round_trials`` each while budget lasts. Entries are returned
        sorted by point — the execution and journal order; the
        widest-first priority only decides who gets budget.
        """
        if self._pending:
            raise PlannerProtocolError(
                f"{self._pending} trials of the previous round have not "
                f"been observed yet"
            )
        if self._done:
            return []
        remaining = self.budget - self.executed
        allocation: list[tuple[int, int, int]] = []
        if self.rounds == 0:
            for point in self._order:
                state = self._points[point]
                if state.prescreened:
                    count = self.config.min_trials
                else:
                    count = min(self.config.min_trials, remaining)
                    remaining -= count
                if count:
                    allocation.append((point, state.allocated, count))
                    state.allocated += count
                    self._pending += count
        else:
            wide = [
                point for point in self._order if not self.converged(point)
            ]
            wide.sort(key=lambda p: (-self.margin(p), p))
            for point in wide:
                if remaining <= 0:
                    break
                count = min(self.config.round_trials, remaining)
                remaining -= count
                state = self._points[point]
                allocation.append((point, state.allocated, count))
                state.allocated += count
                self._pending += count
            allocation.sort()
        if not allocation:
            self._done = True
            return []
        self.rounds += 1
        return allocation

    def observe(self, point: int, *, ok: bool, failing: bool) -> None:
        """Report one allocated trial's outcome back to the planner.

        ``ok=False`` marks a harness crash/timeout: it consumed budget
        but contributes nothing to the tally (the point stays wide).
        """
        state = self._points.get(point)
        if state is None:
            raise PlannerProtocolError(f"point {point} is not in the plan")
        if state.observed >= state.allocated:
            raise PlannerProtocolError(
                f"point {point} has no unobserved allocated trial"
            )
        state.observed += 1
        self._pending -= 1
        if ok:
            state.ok += 1
            if failing:
                state.failing += 1

    @property
    def finished(self) -> bool:
        return self._done

    # ------------------------------------------------------------- summary

    def summary(self) -> dict:
        """A JSON-ready per-workload account for telemetry and reports."""
        executed = self.executed
        points = []
        converged = 0
        for point in self._order:
            state = self._points[point]
            margin = self.margin(point)
            is_converged = margin <= self.config.margin
            converged += is_converged
            points.append({
                "point": point,
                "trials": state.ok,
                "failing": state.failing,
                "margin": None if math.isinf(margin) else round(margin, 6),
                "converged": bool(is_converged),
                "prescreened": state.prescreened,
            })
        return {
            "budget": self.budget,
            "executed": executed,
            "trials_saved": max(0, self.budget - executed),
            "prescreen_points": len(self.prescreened_points),
            "prescreen_trials": self.prescreen_trials,
            "rounds": self.rounds,
            "total_points": len(self._order),
            "converged_points": converged,
            "points": points,
        }


def replay_summary(
    config: PlannerConfig,
    points: Sequence[int],
    prescreened: Iterable[int],
    *,
    budget: int,
    outcomes: dict[tuple[int, int], tuple[bool, bool]],
) -> dict:
    """Reconstruct a finished workload's planner summary from its trials.

    ``outcomes`` maps ``(point, index)`` to ``(ok, failing)`` — exactly
    what the journal (or the service's trial rows) holds. Because every
    planner decision is a pure function of the cumulative tallies, the
    replayed round structure is identical to the original run's, so the
    summary matches without any planner state having been persisted. A
    missing key (which a well-formed journal never produces) is counted
    as a harness outcome: budget spent, no tally.
    """
    planner = CampaignPlanner(config, points, prescreened, budget=budget)
    while True:
        allocation = planner.plan_round()
        if not allocation:
            break
        for point, start, count in allocation:
            for index in range(start, start + count):
                ok, failing = outcomes.get((point, index), (False, False))
                planner.observe(point, ok=ok, failing=failing)
    return planner.summary()


def aggregate_planner_summaries(
    config: PlannerConfig, summaries: Iterable[dict]
) -> dict:
    """Fold per-workload planner summaries into the campaign aggregate.

    This is the ``planner`` section of the journal's telemetry entry:
    integer tallies only, so the local runner and the service scheduler
    (which computes summaries independently via replay) produce identical
    sections for identical trials.
    """
    totals = {
        "margin": config.margin,
        "workloads": 0,
        "budget": 0,
        "executed": 0,
        "trials_saved": 0,
        "prescreen_points": 0,
        "prescreen_trials": 0,
        "total_points": 0,
        "converged_points": 0,
        "rounds_max": 0,
    }
    for summary in summaries:
        totals["workloads"] += 1
        for key in ("budget", "executed", "trials_saved", "prescreen_points",
                    "prescreen_trials", "total_points", "converged_points"):
            totals[key] += int(summary[key])
        totals["rounds_max"] = max(totals["rounds_max"],
                                   int(summary["rounds"]))
    return totals
