"""Simulation-based performance measurement for Figure 7.

"In this subsection, we evaluate the performance impact incurred from false
positive symptoms. ... we focus on the cost in performance due to checkpoint
rollbacks from high confidence branch mispredictions." (Section 5.2.3)

We run each workload to completion on (a) the baseline pipeline and (b) a
pipeline with a live ReStore controller at the given checkpoint interval and
rollback policy, and report relative performance (baseline cycles / ReStore
cycles). During re-execution the branch-outcome event log provides perfect
control-flow prediction, exactly as the paper's experiment assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.restore.controller import ReStoreController, RollbackPolicy, TuningConfig
from repro.restore.symptoms import (
    ExceptionSymptomDetector,
    HighConfidenceMispredictDetector,
    WatchdogSymptomDetector,
)
from repro.uarch.config import PipelineConfig
from repro.uarch.pipeline import load_pipeline
from repro.workloads import WORKLOAD_NAMES, build_workload

# Figure 7's x-axis.
FIGURE7_INTERVALS: tuple[int, ...] = (50, 100, 200, 500, 1000)


@dataclass(frozen=True)
class PerfPoint:
    """One (interval, policy) measurement."""

    interval: int
    policy: str
    baseline_cycles: int
    restore_cycles: int
    rollbacks: int
    false_positives: int

    @property
    def speedup(self) -> float:
        """Relative performance vs the baseline (<= 1.0 in practice)."""
        if self.restore_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.restore_cycles


def _baseline_cycles(workloads, scale: int, seed: int, config, max_cycles: int):
    cycles = {}
    for name in workloads:
        bundle = build_workload(name, scale, seed)
        pipeline = load_pipeline(bundle.program, config=config)
        pipeline.run(max_cycles)
        if not pipeline.halted:
            raise RuntimeError(f"baseline run of {name} did not halt")
        cycles[name] = pipeline.cycle_count
    return cycles


def measure_restore_performance(
    intervals: tuple[int, ...] = FIGURE7_INTERVALS,
    policies: tuple[RollbackPolicy, ...] = (
        RollbackPolicy.IMMEDIATE,
        RollbackPolicy.DELAYED,
    ),
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    scale: int = 1,
    seed: int = 2005,
    config: PipelineConfig | None = None,
    use_event_log: bool = True,
    max_cycles: int = 2_000_000,
    tuning: TuningConfig | None = None,
) -> list[PerfPoint]:
    """Measure Figure 7: one PerfPoint per (interval, policy), aggregated
    over the workloads (total cycles, harmonic-mean-like ratio)."""
    baseline = _baseline_cycles(workloads, scale, seed, config, max_cycles)
    points: list[PerfPoint] = []
    for interval in intervals:
        for policy in policies:
            total_restore = 0
            total_baseline = 0
            rollbacks = 0
            false_positives = 0
            for name in workloads:
                bundle = build_workload(name, scale, seed)
                pipeline = load_pipeline(bundle.program, config=config)
                controller = ReStoreController(
                    pipeline,
                    interval=interval,
                    detectors=[
                        ExceptionSymptomDetector(),
                        HighConfidenceMispredictDetector(),
                        WatchdogSymptomDetector(),
                    ],
                    policy=policy,
                    use_event_log=use_event_log,
                    tuning=tuning,
                )
                pipeline.run(max_cycles)
                if not pipeline.halted:
                    raise RuntimeError(
                        f"ReStore run of {name} (interval={interval}, "
                        f"policy={policy.value}) did not halt"
                    )
                wrong = bundle.check(pipeline.memory)
                if wrong:
                    raise RuntimeError(
                        f"ReStore run of {name} corrupted outputs: {wrong[:1]}"
                    )
                total_restore += pipeline.cycle_count
                total_baseline += baseline[name]
                rollbacks += controller.stats.rollbacks
                false_positives += controller.stats.false_positives
            points.append(
                PerfPoint(
                    interval=interval,
                    policy=policy.value,
                    baseline_cycles=total_baseline,
                    restore_cycles=total_restore,
                    rollbacks=rollbacks,
                    false_positives=false_positives,
                )
            )
    return points
