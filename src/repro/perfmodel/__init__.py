"""Performance impact of false-positive symptoms (Figure 7).

Two complementary models:

- :mod:`repro.perfmodel.timing` — direct simulation: run each workload on
  the pipeline with a live ReStore controller at each checkpoint interval
  and rollback policy, and compare cycle counts against the baseline
  pipeline without checkpointing.
- :mod:`repro.perfmodel.analytic` — the paper's style of "high level
  performance model": closed-form slowdown from the measured
  high-confidence misprediction rate, the average rollback distance
  (1.5 intervals for the immediate policy, 1.0 for delayed), and the
  event-log-accelerated re-execution IPC.
"""

from repro.perfmodel.analytic import AnalyticPerfModel, AnalyticInputs
from repro.perfmodel.timing import PerfPoint, measure_restore_performance

__all__ = [
    "AnalyticInputs",
    "AnalyticPerfModel",
    "PerfPoint",
    "measure_restore_performance",
]
