"""The batched lease protocol: batch grants, chunked completes,
serial equivalence at every batch size.

The tentpole invariants under test:

- a batch is granted in one store transaction under ONE lease clock —
  every fresh unit in the grant carries the same expiry stamp;
- a retried lease call gets the units the worker already holds back
  first (reissue), without burning attempts;
- chunked completes are idempotent on the trial key: duplicated,
  redelivered, or interleaved chunks can never double-count, and
  partial chunks both require and refresh a live lease;
- the finalized journal is byte-identical to a serial ``run_campaign``
  at every batch size and chunk size, for every kernel.
"""

import threading

import pytest

from repro.campaign import run_campaign
from repro.service import (
    CampaignScheduler,
    JobSpec,
    RemoteWorker,
    ResultStore,
    ServiceError,
    build_config,
    execute_unit,
)
from repro.service.client import ServiceClient
from tests.test_service_chaos import ALL_KERNELS, chaos_service

CONFIG_OPTIONS = {
    "trials_per_workload": 6,
    "injection_points": 4,
    "workloads": ["gcc"],
    "seed": 7,
}


def make_spec(**overrides):
    payload = {"level": "arch", "config": dict(CONFIG_OPTIONS)}
    payload.update(overrides)
    return JobSpec.from_request(payload)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def scheduler(tmp_path):
    store = ResultStore(":memory:")
    clock = FakeClock()
    sched = CampaignScheduler(
        store, str(tmp_path), lease_ttl=60.0, max_attempts=2, clock=clock
    )
    sched.test_clock = clock
    yield sched
    store.close()


def drain_batched(scheduler, worker="w0", batch=1):
    """Drain the queue leasing ``batch`` units per call, completing each
    unit as soon as it has run (no batch barrier, like the real pool)."""
    while True:
        leases = scheduler.lease_batch(worker, batch)
        if not leases:
            return
        for lease in leases:
            unit = lease["unit"]
            result = execute_unit(lease["spec"], unit)
            scheduler.complete(unit["job_id"], unit["unit_id"], worker, result)


class TestBatchLease:
    def test_batch_grant_shares_one_lease_clock(self, scheduler):
        view = scheduler.submit(make_spec(shards=4))
        job_id = view["job_id"]
        leases = scheduler.lease_batch("w0", 3)
        assert [lease["unit"]["unit_id"] for lease in leases] == [
            "gcc:0of4", "gcc:1of4", "gcc:2of4",
        ]
        expiries = {
            scheduler.store.unit(job_id, lease["unit"]["unit_id"])["lease_expiry"]
            for lease in leases
        }
        assert len(expiries) == 1  # one clock reading stamps the batch
        assert scheduler.counters["leases_granted"] == 3
        assert scheduler.counters["batch_leases_granted"] == 1

    def test_single_lease_is_not_counted_as_a_batch(self, scheduler):
        scheduler.submit(make_spec(shards=2))
        assert scheduler.lease("w0") is not None
        assert scheduler.counters["batch_leases_granted"] == 0

    def test_lost_batch_response_is_reissued_not_recounted(self, scheduler):
        scheduler.submit(make_spec(shards=4))
        first = scheduler.lease_batch("w0", 3)
        # The response is "lost"; the worker retries the identical call
        # and must get the same three units back, same attempt numbers.
        retry = scheduler.lease_batch("w0", 3)
        assert [lease["unit"]["unit_id"] for lease in retry] == [
            lease["unit"]["unit_id"] for lease in first
        ]
        assert all(lease["attempt"] == 1 for lease in retry)
        assert scheduler.counters["lease_reissues"] == 3
        assert scheduler.counters["leases_granted"] == 3  # not re-counted
        # Another worker asking for a big batch only gets what is left.
        rest = scheduler.lease_batch("w1", 8)
        assert [lease["unit"]["unit_id"] for lease in rest] == ["gcc:3of4"]

    def test_lease_count_must_be_positive(self, scheduler):
        scheduler.submit(make_spec())
        with pytest.raises(ServiceError, match="lease count"):
            scheduler.lease_batch("w0", 0)

    def test_partial_batch_completion_with_expiry_mid_batch(
        self, scheduler, tmp_path
    ):
        """Half the batch completes, the lease expires under the rest:
        the straggler units requeue individually, a late report from the
        original holder bounces, and a second worker finishes the job —
        with a journal still byte-identical to a serial run."""
        spec = make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]},
            shards=2,
        )
        view = scheduler.submit(spec)
        job_id = view["job_id"]
        leases = scheduler.lease_batch("w0", 4)
        assert len(leases) == 4
        done, stragglers = leases[:2], leases[2:]
        results = {
            lease["unit"]["unit_id"]: execute_unit(lease["spec"], lease["unit"])
            for lease in leases
        }
        for lease in done:
            unit = lease["unit"]
            assert scheduler.complete(
                job_id, unit["unit_id"], "w0", results[unit["unit_id"]]
            )

        scheduler.test_clock.advance(61.0)  # past the shared batch clock
        assert scheduler.requeue_expired() == 2  # only the stragglers
        late = stragglers[0]["unit"]
        assert not scheduler.complete(
            job_id, late["unit_id"], "w0", results[late["unit_id"]]
        )
        assert scheduler.counters["bounced_completes"] == 1

        retry = scheduler.lease_batch("w1", 4)
        assert [lease["unit"]["unit_id"] for lease in retry] == [
            lease["unit"]["unit_id"] for lease in stragglers
        ]
        assert all(lease["attempt"] == 2 for lease in retry)
        for lease in retry:
            unit = lease["unit"]
            result = execute_unit(lease["spec"], unit)
            assert scheduler.complete(job_id, unit["unit_id"], "w1", result)

        final = scheduler.job_view(job_id)
        assert final["state"] == "done"
        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign("arch", spec.config, journal_path=serial_path)
        with open(final["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()


class TestChunkedComplete:
    def run_unit(self, scheduler):
        lease = scheduler.lease("w0")
        unit = lease["unit"]
        return unit, execute_unit(lease["spec"], unit)

    def test_chunks_interleaved_with_duplicate_redelivery(
        self, scheduler, tmp_path
    ):
        spec = make_spec()
        view = scheduler.submit(spec)
        job_id = view["job_id"]
        unit, result = self.run_unit(scheduler)
        outcomes = result["outcomes"]
        assert len(outcomes) == 6
        parts = [outcomes[0:2], outcomes[2:4], outcomes[4:6]]
        unit_id = unit["unit_id"]

        assert scheduler.complete_chunk(
            job_id, unit_id, "w0", {"outcomes": parts[0]}, 0, 3
        )
        # The response was lost: chunk 0 is redelivered verbatim.
        assert scheduler.complete_chunk(
            job_id, unit_id, "w0", {"outcomes": parts[0]}, 0, 3
        )
        assert scheduler.complete_chunk(
            job_id, unit_id, "w0", {"outcomes": parts[1]}, 1, 3
        )
        final_chunk = dict(result)
        final_chunk["outcomes"] = parts[2]
        assert scheduler.complete_chunk(
            job_id, unit_id, "w0", final_chunk, 2, 3
        )
        final = scheduler.job_view(job_id)
        assert final["state"] == "done"
        assert final["trials"] == 6  # the duplicated chunk did not double-count

        # Redelivery after the unit is done settles the sender.
        assert scheduler.complete_chunk(
            job_id, unit_id, "w0", final_chunk, 2, 3
        )
        assert scheduler.counters["duplicate_completes"] == 1
        assert scheduler.counters["chunked_completes"] == 5

        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign("arch", spec.config, journal_path=serial_path)
        with open(final["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()

    def test_partial_chunk_refreshes_the_lease(self, scheduler):
        view = scheduler.submit(make_spec())
        job_id = view["job_id"]
        unit, result = self.run_unit(scheduler)
        scheduler.test_clock.advance(50.0)  # 10s from expiry
        assert scheduler.complete_chunk(
            job_id, unit["unit_id"], "w0",
            {"outcomes": result["outcomes"][:2]}, 0, 2,
        )
        scheduler.test_clock.advance(50.0)  # would have expired unrefreshed
        assert scheduler.requeue_expired() == 0
        final_chunk = dict(result)
        final_chunk["outcomes"] = result["outcomes"][2:]
        assert scheduler.complete_chunk(
            job_id, unit["unit_id"], "w0", final_chunk, 1, 2
        )
        assert scheduler.job_view(job_id)["state"] == "done"

    def test_partial_chunk_from_wrong_worker_bounces(self, scheduler):
        view = scheduler.submit(make_spec())
        job_id = view["job_id"]
        unit, result = self.run_unit(scheduler)
        assert not scheduler.complete_chunk(
            job_id, unit["unit_id"], "intruder",
            {"outcomes": result["outcomes"][:2]}, 0, 2,
        )
        assert scheduler.counters["bounced_completes"] == 1
        assert scheduler.job_view(job_id)["trials"] == 0  # slice dropped

    def test_partial_chunk_after_expiry_bounces(self, scheduler):
        view = scheduler.submit(make_spec())
        job_id = view["job_id"]
        unit, result = self.run_unit(scheduler)
        scheduler.test_clock.advance(61.0)
        scheduler.requeue_expired()
        assert not scheduler.complete_chunk(
            job_id, unit["unit_id"], "w0",
            {"outcomes": result["outcomes"][:2]}, 0, 2,
        )
        assert scheduler.counters["bounced_completes"] == 1

    def test_malformed_chunk_indices_rejected(self, scheduler):
        view = scheduler.submit(make_spec())
        job_id = view["job_id"]
        unit, _result = self.run_unit(scheduler)
        for index, count in ((0, 0), (-1, 3), (3, 3)):
            with pytest.raises(ServiceError, match="invalid chunk"):
                scheduler.complete_chunk(
                    job_id, unit["unit_id"], "w0", {}, index, count
                )


class TestBatchedSerialEquivalence:
    def test_every_batch_size_matches_serial_on_all_kernels(self, tmp_path):
        """The acceptance invariant: batched drains at N = 1, 4, 16 all
        finalize the exact bytes a serial ``run_campaign`` writes, on
        every kernel at once."""
        options = {
            "trials_per_workload": 4,
            "injection_points": 2,
            "workloads": list(ALL_KERNELS),
            "seed": 11,
        }
        spec = JobSpec.from_request(
            {"level": "arch", "config": options, "shards": 2}
        )
        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign("arch", spec.config, journal_path=serial_path)
        with open(serial_path) as handle:
            serial = handle.read()

        for batch in (1, 4, 16):
            store = ResultStore(":memory:")
            scheduler = CampaignScheduler(
                store, str(tmp_path / f"batch-{batch}"), lease_ttl=60.0
            )
            try:
                view = scheduler.submit(spec)
                drain_batched(scheduler, batch=batch)
                final = scheduler.job_view(view["job_id"])
                assert final["state"] == "done", (batch, final)
                with open(final["journal_path"]) as handle:
                    assert handle.read() == serial, f"batch={batch} diverged"
            finally:
                store.close()


class TestBatchedWorkerEndToEnd:
    def test_remote_worker_with_batches_and_chunks_matches_serial(
        self, tmp_path
    ):
        """A real HTTP worker leasing 4 units per call and streaming
        completes in 2-trial chunks produces the serial journal."""
        options = {
            "trials_per_workload": 6,
            "injection_points": 4,
            "workloads": ["gcc", "gzip", "mcf"],
            "seed": 7,
        }
        with chaos_service(
            tmp_path / "svc", lease_ttl=60.0, max_attempts=2
        ) as (service, scheduler):
            control = ServiceClient(service.address)
            view = control.submit(
                {"level": "arch", "config": options, "shards": 2}
            )
            worker = RemoteWorker(
                ServiceClient(service.address), "batcher",
                poll_interval=0.05, lease_batch=4, complete_chunk=2,
                outbox_dir=str(tmp_path / "outbox"),
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            final = control.wait(view["job_id"], timeout=120)
            worker.stop()
            thread.join(timeout=30)
            assert final["state"] == "done"
            assert final["error"] is None
            metrics = control.service_metrics()
            assert metrics["counters"]["batch_leases_granted"] >= 1
            # Shard 0 of each workload carries 4 outcomes (> chunk size
            # 2), so those three units stream in 2 chunked POSTs each;
            # the 2-outcome shards fit one request and stay unchunked.
            assert metrics["counters"]["chunked_completes"] == 6
            assert metrics["counters"].get("bounced_completes", 0) == 0

        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign(
            "arch", build_config("arch", options), journal_path=serial_path
        )
        with open(final["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()


class TestMemhierShardedEquivalence:
    def test_two_shard_uarch_memhier_job_matches_serial_journal(
        self, tmp_path
    ):
        """A uarch campaign with memory-hierarchy targets and detectors,
        split over two shards per workload, must finalize the exact bytes
        of a serial run — the new config fields travel the wire and the
        detector latency fields merge per-unit without drift."""
        options = {
            "trials_per_workload": 6,
            "injection_points": 3,
            "window_cycles": 800,
            "workloads": ["gcc"],
            "seed": 7,
            "memhier_targets": True,
            "detectors": ["miss_spike", "stall_outlier", "spurious_memop"],
        }
        spec = JobSpec.from_request(
            {"level": "uarch", "config": options, "shards": 2}
        )
        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign("uarch", spec.config, journal_path=serial_path)

        store = ResultStore(":memory:")
        scheduler = CampaignScheduler(
            store, str(tmp_path / "svc"), lease_ttl=60.0
        )
        try:
            view = scheduler.submit(spec)
            drain_batched(scheduler, batch=2)
            final = scheduler.job_view(view["job_id"])
            assert final["state"] == "done", final
            with open(final["journal_path"]) as handle:
                assert handle.read() == open(serial_path).read()
        finally:
            store.close()
