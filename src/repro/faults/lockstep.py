"""Lockstep batch-trial execution against one golden pass.

The serial arch campaign (:func:`repro.faults.arch_campaign._run_trial`)
forks the prefix simulator once per trial and steps the fork through its
whole post-injection window, even though most faulty executions either
re-converge with golden within a few instructions (masking) or never
touch the corrupted register again (silent corruption). This module runs
every trial of a workload *against one golden execution*: the golden
simulator walks forward once, and each live trial is represented not as
a second machine but as a **dirty-state overlay** — the set of registers
and memory bytes where the trial differs from golden, with the trial's
values.

The key observation (OpenSEA's pruning idea, applied dynamically): while
a trial's control flow matches golden, any instruction whose inputs are
all *clean* (no dirty register, no dirty memory byte, instruction word
itself unmodified) produces exactly golden's outputs. Such steps need no
simulation at all — a write to a dirty register heals it, an identical
store heals dirty bytes under it, and nothing else changes. Only
*dirty-input* steps are executed, through a small patched interpreter
that reads operands from ``overlay ∪ golden`` and mirrors the fast
path's semantics (the same :mod:`repro.isa.semantics` handlers the
compiled closures bind).

Three things can end a trial's shadow (overlay) life:

- **convergence** — the overlay empties: the trial's architectural state
  equals golden's at the same retired index, so its remaining window is
  provably identical to golden's and the trial retires early (masked,
  unless a memop latency already fired);
- **a terminal event** — an ISA exception in a dirty step, or golden's
  own halt (the trial halts in lockstep; it fails iff the overlay is
  non-empty);
- **divergence** — a dirty branch or jump resolves to a different PC, or
  a dirty byte lands under an instruction word the trial is about to
  fetch. The trial then *materializes*: a private simulator is built
  from golden's state patched with the overlay (memory via the
  copy-on-write :meth:`~repro.arch.memory.SparseMemory.clone_cow`), and
  runs out its remaining window exactly as the serial loop would.

Between events, trials *sleep*: per-register touch indices and
memop/fetch chunk indices precomputed from the golden trace tell each
trial the next step that could read, write, or overwrite any of its
dirty state, and the golden simulator fast-forwards (batch ``run()``)
to the next event. A trial whose dirty register is never touched again
costs nothing until the end of the trace. The precomputed look-ahead is
only sound while the traced instruction words cannot change, so it is
disabled (every round processed individually) when any golden store
lands in a page instructions were fetched from.

Latency bookkeeping is preserved exactly: memop address/data latencies
fire during dirty memory steps with the same comparisons the serial
loop performs; control-flow divergence and exception latencies fall out
of the materialized continuation. The scheduler is validated
field-for-field against the serial twin (``tests/test_lockstep.py``),
and journals are byte-identical.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.arch.exceptions import IsaException
from repro.arch.memory import PAGE_SHIFT, PageProtection
from repro.arch.simulator import ArchSimulator, StopReason
from repro.faults.classify import ArchTrialResult
from repro.isa import opcodes as op
from repro.isa import semantics
from repro.isa.encoding import decode_word
from repro.util.bitops import MASK64, flip_bit

# A step index larger than any trace can reach (max_instructions is an
# int well below this): "this trial never wakes again".
_NEVER = 1 << 62

# Instruction kinds for the patched interpreter.
_NOP, _HALT, _OPERATE, _CMOV, _LDA, _LOAD, _STORE, _COND, _UNCOND, _JUMP = (
    range(10)
)


@dataclass
class LockstepStats:
    """Where the lockstep scheduler's time went (for tests and tuning)."""

    forks: int = 0
    early_retired: int = 0  # overlay emptied before golden ended
    halted_in_lockstep: int = 0  # reached golden's halt still shadowed
    finalized_asleep: int = 0  # dirty state never touched again
    materialized: int = 0  # diverged; private simulator built
    dirty_steps: int = 0  # shadow steps needing the patched interpreter
    clean_wakes: int = 0  # shadow steps resolved by heal bookkeeping
    solo_steps: int = 0  # per-step serial-equivalent continuation
    batched_steps: int = 0  # continuation steps run in batch mode


class _Meta:
    """Pre-extracted operands and handlers for one instruction word."""

    __slots__ = (
        "kind", "reads", "write", "is_mem", "a", "b", "c", "literal",
        "handler", "trapping", "predicate", "disp", "size", "extend",
        "mask", "delta",
    )

    def __init__(self) -> None:
        self.kind = _NOP
        self.reads: tuple[int, ...] = ()
        self.write = -1
        self.is_mem = False
        self.literal: int | None = None


def _decode_meta(word: int) -> _Meta:
    inst = decode_word(word)
    m = _Meta()
    if inst.is_halt:
        m.kind = _HALT
        return m
    if inst.format is op.Format.OPERATE:
        ra, rb, rc = inst.ra, inst.rb, inst.rc
        literal = inst.literal if inst.is_literal else None
        if inst.is_cmov:
            if rc == 31:  # result discarded; architecturally a no-op
                return m
            m.kind = _CMOV
            m.a, m.b, m.c = ra, rb, rc
            m.literal = literal
            m.predicate = semantics.cmov_predicate(inst)
            m.reads = (ra, rc) if literal is not None else (ra, rb, rc)
            m.write = rc
            return m
        handler = semantics.value_handler(inst)
        if handler is not None:
            if rc == 31:
                return m
            m.kind = _OPERATE
            m.handler = handler
            m.trapping = None
            m.a, m.b = ra, rb
            m.literal = literal
            m.reads = (ra,) if literal is not None else (ra, rb)
            m.write = rc
            return m
        m.kind = _OPERATE
        m.handler = None
        m.trapping = semantics.trapping_handler(inst)
        m.a, m.b = ra, rb
        m.literal = literal
        # A trapping op can raise even with a discarded result, so its
        # inputs matter regardless of rc.
        m.reads = (ra,) if literal is not None else (ra, rb)
        m.write = rc if rc != 31 else -1
        return m
    if inst.is_lda:
        if inst.ra == 31:
            return m
        m.kind = _LDA
        m.b = inst.rb
        m.disp = semantics.lda_displacement(inst)
        m.reads = (inst.rb,)
        m.write = inst.ra
        return m
    if inst.is_load:
        m.kind = _LOAD
        m.is_mem = True
        m.b = inst.rb
        m.size = inst.access_size
        m.disp = semantics.signed_displacement(inst)
        m.extend = semantics.load_extender(inst)
        m.reads = (inst.rb,)
        m.write = inst.ra if inst.ra != 31 else -1
        return m
    if inst.is_store:
        m.kind = _STORE
        m.is_mem = True
        m.a, m.b = inst.ra, inst.rb
        m.size = inst.access_size
        m.disp = semantics.signed_displacement(inst)
        m.mask = semantics.store_mask(inst)
        m.reads = (inst.ra, inst.rb)
        return m
    if inst.is_cond_branch:
        m.kind = _COND
        m.a = inst.ra
        m.predicate = semantics.branch_predicate(inst)
        m.delta = 4 + 4 * semantics.signed_displacement(inst)
        m.reads = (inst.ra,)
        return m
    if inst.is_uncond_branch:
        if inst.ra == 31:
            return m  # pure control; an aligned trial follows golden
        m.kind = _UNCOND
        m.write = inst.ra
        return m
    if inst.is_jump:
        m.kind = _JUMP
        m.b = inst.rb
        m.reads = (inst.rb,)
        m.write = inst.ra if inst.ra != 31 else -1
        return m
    raise AssertionError(f"unhandled instruction {inst.mnemonic}")


class _MetaCache:
    """PC-keyed metadata over the golden memory, text-page entries cached.

    Mirrors the simulator's pre-decode policy: only read-only pages are
    cached (ordinary stores cannot rewrite them), and the cache is
    dropped when the image version changes. Fetches from writable pages
    re-read and re-decode every time, so self-modifying golden code sees
    exactly the word it executed.
    """

    def __init__(self, memory):
        self._memory = memory
        self._version = memory.image_version
        self._by_pc: dict[int, _Meta] = {}

    def at(self, pc: int) -> _Meta:
        memory = self._memory
        if self._version != memory.image_version:
            self._by_pc.clear()
            self._version = memory.image_version
        meta = self._by_pc.get(pc)
        if meta is None:
            meta = _decode_meta(memory.read(pc, 4))
            if memory.protection_at(pc) is PageProtection.READ_ONLY:
                self._by_pc[pc] = meta
        return meta


def register_touch_steps(
    trace, memory
) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """Per-register read-step and write-step indices over a golden trace.

    A finer-grained sibling of the engine's combined touch-step lookahead:
    where the scheduler only needs "when is this register touched next",
    the masking-equivalence prescreen (:mod:`repro.planner.prescreen`)
    needs to know whether that first touch *reads* the register (the
    fault propagates) or *overwrites* it without reading (the fault is
    provably dead). ``memory`` must hold the traced instruction words —
    callers are responsible for ruling out self-modifying golden code
    first, exactly as the lookahead path does via its modifies-code
    guard.

    Returns ``(reads, writes)``: register -> ascending trace-step lists.
    An instruction that both reads and writes a register (e.g. ``addq
    r1, r2, r1``, or any CMOV, whose result merges the old destination)
    appears in both lists at the same step.
    """
    metas = _MetaCache(memory)
    by_pc: dict[int, tuple[tuple[int, ...], int]] = {}
    reads: dict[int, list[int]] = {}
    writes: dict[int, list[int]] = {}
    for i, pc in enumerate(trace.pcs):
        cached = by_pc.get(pc)
        if cached is None:
            meta = metas.at(pc)
            cached = (meta.reads, meta.write)
            by_pc[pc] = cached
        read_regs, write_reg = cached
        for r in read_regs:
            lst = reads.get(r)
            if lst is None:
                lst = reads[r] = []
            lst.append(i)
        if write_reg >= 0:
            lst = writes.get(write_reg)
            if lst is None:
                lst = writes[write_reg] = []
            lst.append(i)
    return reads, writes


def written_register(trace, memory, step: int) -> int:
    """The destination register of the instruction at trace ``step``.

    Returns -1 for non-writing instructions (never the case for a step
    drawn from ``trace.writer_steps``). Same immutable-code caveat as
    :func:`register_touch_steps`.
    """
    return _MetaCache(memory).at(trace.pcs[step]).write


class _Shadow:
    """One live trial as a dirty-state overlay on the golden machine."""

    __slots__ = ("point", "index", "bit", "regs", "mem", "memaddr", "memdata")

    def __init__(self, point: int, index: int, bit: int, dest: int,
                 flipped: int):
        self.point = point
        self.index = index
        self.bit = bit
        self.regs: dict[int, int] = {dest: flipped}
        self.mem: dict[int, int] = {}
        self.memaddr: int | None = None
        self.memdata: int | None = None


# Dispositions returned by round processing for one shadow trial.
_KEEP, _DONE = 0, 1


def run_lockstep_trials(
    config,
    workload: str,
    trace,
    memop_counts: list[int],
    prefix: ArchSimulator,
    plan: list[tuple[int, list[tuple[int, int]]]],
    stats: LockstepStats | None = None,
) -> dict[tuple[int, int], ArchTrialResult]:
    """Run every planned trial of one workload in lockstep against golden.

    ``plan`` lists, per sorted injection point, the pending
    ``(index, bit)`` trials. ``prefix`` is the golden simulator positioned
    at or before the first planned point (it is consumed: the golden walk
    advances it). Returns a complete ``(point, index) ->``
    :class:`~repro.faults.classify.ArchTrialResult` mapping whose records
    are field-for-field identical to the serial twin's.
    """
    engine = _Engine(config, workload, trace, memop_counts, prefix,
                     stats if stats is not None else LockstepStats())
    return engine.run(plan)


class _Engine:
    def __init__(self, config, workload, trace, memop_counts, golden, stats):
        self.config = config
        self.workload = workload
        self.trace = trace
        self.pcs: list[int] = trace.pcs
        self.memops = trace.memops
        self.memop_counts = memop_counts
        self.length = len(trace.pcs)
        self.halted: bool = trace.halted
        self.golden = golden
        self.stats = stats
        self.metas = _MetaCache(golden.state.memory)
        self.results: dict[tuple[int, int], ArchTrialResult] = {}
        # Look-ahead (sleep) structures; None until built, disabled when
        # golden stores into executed pages (the traced words could change
        # under the precomputed metadata).
        self.sleep_ok = not self._golden_modifies_code()
        self._touch_steps: dict[int, list[int]] | None = None
        self._fetch_chunks: dict[int, list[int]] | None = None
        self._memop_chunks: dict[int, list[int]] | None = None
        self._memop_step: list[int] | None = None

    # ------------------------------------------------------------ helpers

    def _golden_modifies_code(self) -> bool:
        executed = {pc >> PAGE_SHIFT for pc in self.pcs}
        return any(
            kind == "S" and (addr >> PAGE_SHIFT) in executed
            for kind, addr, _value in self.memops
        )

    def _build_lookahead(self) -> None:
        """Per-register touch indices and memop/fetch chunk indices.

        Sound only while the traced instruction words are immutable
        (``sleep_ok``): the per-PC metadata decoded now describes every
        future execution of that PC.
        """
        touch: dict[int, list[int]] = {}
        fetch: dict[int, list[int]] = {}
        touched_by_pc: dict[int, tuple[tuple[int, ...], bool]] = {}
        metas = self.metas
        memory = self.golden.state.memory
        for i, pc in enumerate(self.pcs):
            cached = touched_by_pc.get(pc)
            if cached is None:
                meta = metas.at(pc)
                regs = set(meta.reads)
                if meta.write >= 0:
                    regs.add(meta.write)
                writable = (
                    memory.protection_at(pc) is not PageProtection.READ_ONLY
                )
                cached = (tuple(regs), writable)
                touched_by_pc[pc] = cached
            regs, writable = cached
            for r in regs:
                lst = touch.get(r)
                if lst is None:
                    lst = touch[r] = []
                lst.append(i)
            if writable:
                # A 4-byte word at a 4-aligned PC sits in one 8-byte chunk.
                lst = fetch.get(pc >> 3)
                if lst is None:
                    lst = fetch[pc >> 3] = []
                lst.append(i)
        chunks: dict[int, list[int]] = {}
        for gm, (_kind, addr, _value) in enumerate(self.memops):
            lst = chunks.get(addr >> 3)
            if lst is None:
                lst = chunks[addr >> 3] = []
            lst.append(gm)
        memop_step = [0] * len(self.memops)
        prev = 0
        for i, count in enumerate(self.memop_counts):
            if count != prev:
                memop_step[count - 1] = i
                prev = count
        self._touch_steps = touch
        self._fetch_chunks = fetch
        self._memop_chunks = chunks
        self._memop_step = memop_step

    def _next_wake(self, shadow: _Shadow, i: int) -> int:
        """First step after ``i`` that can touch this trial's dirty state."""
        wake = _NEVER
        touch = self._touch_steps
        for r in shadow.regs:
            lst = touch.get(r)
            if lst:
                j = bisect_right(lst, i)
                if j < len(lst) and lst[j] < wake:
                    wake = lst[j]
        if shadow.mem:
            chunks = self._memop_chunks
            fetch = self._fetch_chunks
            memop_step = self._memop_step
            next_gm = self.memop_counts[i]
            for chunk in {addr >> 3 for addr in shadow.mem}:
                lst = chunks.get(chunk)
                if lst:
                    j = bisect_left(lst, next_gm)
                    if j < len(lst) and memop_step[lst[j]] < wake:
                        wake = memop_step[lst[j]]
                lst = fetch.get(chunk)
                if lst:
                    j = bisect_right(lst, i)
                    if j < len(lst) and lst[j] < wake:
                        wake = lst[j]
        return wake

    def _result(self, shadow: _Shadow, exception: int | None,
                cfv: int | None, failing: bool) -> None:
        self.results[(shadow.point, shadow.index)] = ArchTrialResult(
            workload=self.workload,
            inject_step=shadow.point,
            bit=shadow.bit,
            exception_latency=exception,
            cfv_latency=cfv,
            memaddr_latency=shadow.memaddr,
            memdata_latency=shadow.memdata,
            failing=failing,
        )

    # ---------------------------------------------------------- main loop

    def run(self, plan) -> dict[tuple[int, int], ArchTrialResult]:
        if not plan:
            return self.results
        if self.sleep_ok:
            self._build_lookahead()
        golden = self.golden
        pending = list(plan)
        pending.reverse()  # pop() from the tail in point order
        heap: list[tuple[int, int, _Shadow]] = []
        active: list[_Shadow] = []  # processed every round (no look-ahead)
        dormant: list[_Shadow] = []  # never woken again before trace end
        seq = 0
        i = golden.retired
        length = self.length
        while True:
            event = pending[-1][0] if pending else _NEVER
            if heap and heap[0][0] < event:
                event = heap[0][0]
            if active and i < event:
                event = i
            if event >= length:
                break
            if event > i:
                golden.run(event - i)
                golden.resume()
                i = event
            woken = active
            if heap:
                while heap and heap[0][0] == i:
                    woken = woken if woken is not active else list(active)
                    woken.append(heappop(heap)[2])
            survivors = self._round(i, woken, heap, dormant)
            if woken is not active or survivors is not None:
                # Re-schedule survivors that stay in per-round mode.
                if self.sleep_ok:
                    for shadow in survivors or ():
                        wake = self._next_wake(shadow, i)
                        if wake >= length:
                            dormant.append(shadow)
                        else:
                            seq += 1
                            heappush(heap, (wake, seq, shadow))
                else:
                    active = survivors or []
            if pending and pending[-1][0] == i:
                point, trials = pending.pop()
                dest = golden.last_dest
                if dest < 0:  # pragma: no cover - writer_steps guarantee
                    raise AssertionError("injection point wrote no register")
                gval = golden.regs[dest]
                for index, bit in trials:
                    shadow = _Shadow(point, index, bit, dest,
                                     flip_bit(gval, bit))
                    self.stats.forks += 1
                    if self.sleep_ok:
                        wake = self._next_wake(shadow, i)
                        if wake >= length:
                            dormant.append(shadow)
                        else:
                            seq += 1
                            heappush(heap, (wake, seq, shadow))
                    else:
                        active.append(shadow)
            i += 1
        # Golden's trace is exhausted (or no trial will ever wake again).
        remaining = active + [entry[2] for entry in heap] + dormant
        if self.halted:
            # Every remaining trial mirrored golden through its halt: it
            # stopped exactly as golden did, with clean control flow, and
            # differs from golden's final state by exactly its overlay.
            for shadow in remaining:
                self.stats.finalized_asleep += 1
                self._result(shadow, None, None,
                             bool(shadow.regs or shadow.mem))
        elif remaining:
            # Golden hit its instruction limit; the serial twin keeps
            # stepping each fork through its slack budget (control-flow
            # divergence fires at the trace boundary). Materialize and do
            # the same.
            if golden.retired < length:
                golden.run(length - golden.retired)
            for shadow in remaining:
                self._solo_from_shadow(
                    shadow, golden.state.pc, length,
                    self.memop_counts[length - 1],
                    self.config.post_injection_slack + 1,
                )
        return self.results

    # ------------------------------------------------------- one round

    def _round(self, i: int, shadows: list[_Shadow], heap, dormant):
        """Execute trace step ``i`` on golden and every active trial.

        Returns the trials still shadowed after this round (None when
        ``shadows`` is empty and only golden stepped).
        """
        golden = self.golden
        if not shadows:
            golden.step()
            return None
        meta = self.metas.at(self.pcs[i])
        stats = self.stats
        # Pre-phase: everything that needs golden's pre-step state.
        staged: list[tuple[_Shadow, tuple]] = []
        for shadow in shadows:
            action = self._pre_step(shadow, meta, i)
            if action is not None:
                staged.append((shadow, action))
        golden.step()
        # Post-phase: heals, memop comparisons, divergence checks against
        # golden's post-step state.
        survivors: list[_Shadow] = []
        for shadow, action in staged:
            if self._post_step(shadow, action, meta, i) is _KEEP:
                survivors.append(shadow)
        return survivors

    def _pre_step(self, shadow: _Shadow, meta: _Meta, i: int):
        """Stage trace step ``i`` for one trial (golden not yet stepped).

        Returns ``None`` when the trial completed here (terminal
        exception, or materialized over a modified instruction word);
        otherwise an action tuple for :meth:`_post_step`.
        """
        overlay = shadow.regs
        mem = shadow.mem
        if mem:
            pc = self.pcs[i]
            if (pc in mem or pc + 1 in mem or pc + 2 in mem
                    or pc + 3 in mem):
                # The word this trial is about to execute differs from
                # golden's: shadowing golden's instruction would be wrong.
                self.stats.materialized += 1
                sim = self._materialize(shadow, pc)
                self._solo(
                    shadow, sim, i, self.memop_counts[i - 1],
                    (self.length - i) + self.config.post_injection_slack + 1,
                )
                return None
        kind = meta.kind
        reads = meta.reads
        dirty = False
        for r in reads:
            if r in overlay:
                dirty = True
                break
        if not dirty and mem and kind == _LOAD:
            gaddr = self.memops[self.memop_counts[i] - 1][1]
            for k in range(meta.size):
                if gaddr + k in mem:
                    dirty = True
                    break
        if not dirty:
            self.stats.clean_wakes += 1
            return (_A_CLEAN,)
        self.stats.dirty_steps += 1
        golden = self.golden
        gregs = golden.regs
        try:
            if kind == _OPERATE:
                a = overlay.get(meta.a, gregs[meta.a])
                b = (meta.literal if meta.literal is not None
                     else overlay.get(meta.b, gregs[meta.b]))
                if meta.trapping is not None:
                    value, overflow = meta.trapping(a, b)
                    if overflow:
                        raise _ShadowFault
                else:
                    value = meta.handler(a, b)
                return (_A_WRITE, value)
            if kind == _CMOV:
                if meta.predicate(overlay.get(meta.a, gregs[meta.a])):
                    value = (meta.literal if meta.literal is not None
                             else overlay.get(meta.b, gregs[meta.b]))
                else:
                    value = overlay.get(meta.c, gregs[meta.c])
                return (_A_WRITE, value)
            if kind == _LDA:
                base = overlay.get(meta.b, gregs[meta.b])
                return (_A_WRITE, (base + meta.disp) & MASK64)
            if kind == _LOAD:
                base = overlay.get(meta.b, gregs[meta.b])
                address = (base + meta.disp) & MASK64
                size = meta.size
                if address & (size - 1):
                    raise _ShadowFault
                raw = golden.memory.read(address, size)  # may raise
                if mem:
                    raw = _patch_int(raw, address, size, mem)
                return (_A_LOAD, address, meta.extend(raw))
            if kind == _STORE:
                base = overlay.get(meta.b, gregs[meta.b])
                address = (base + meta.disp) & MASK64
                size = meta.size
                if address & (size - 1):
                    raise _ShadowFault
                memory = golden.memory
                if not memory.is_mapped(address):
                    raise _ShadowFault
                if memory.protection_at(address) is PageProtection.READ_ONLY:
                    raise _ShadowFault
                value = overlay.get(meta.a, gregs[meta.a]) & meta.mask
                gaddr = self.memops[self.memop_counts[i] - 1][1]
                gpre = None
                if gaddr != address:
                    gpre = memory.read(gaddr, size).to_bytes(size, "little")
                return (_A_STORE, address, value, gaddr, gpre)
            if kind == _COND:
                pc = self.pcs[i]
                if meta.predicate(overlay.get(meta.a, gregs[meta.a])):
                    return (_A_CONTROL, (pc + meta.delta) & MASK64)
                return (_A_CONTROL, (pc + 4) & MASK64)
            if kind == _JUMP:
                target = overlay.get(meta.b, gregs[meta.b]) & ~0x3 & MASK64
                return (_A_JUMP, target)
        except _ShadowFault:
            pass
        except IsaException:
            pass
        # The dirty step raised where the serial fork's step() would have:
        # terminal exception at this retired index.
        self._result(shadow, i - shadow.point, None, True)
        return None

    def _post_step(self, shadow: _Shadow, action: tuple, meta: _Meta,
                   i: int) -> int:
        """Settle one staged step against golden's post-step state."""
        golden = self.golden
        overlay = shadow.regs
        mem = shadow.mem
        code = action[0]
        if code == _A_CLEAN:
            # All inputs matched golden, so all outputs do too: a written
            # register heals, an identical store heals the bytes under it.
            write = meta.write
            if write >= 0 and overlay:
                overlay.pop(write, None)
            if meta.kind == _STORE and mem:
                gaddr = self.memops[self.memop_counts[i] - 1][1]
                for k in range(meta.size):
                    mem.pop(gaddr + k, None)
            if meta.kind == _HALT:
                # The trial halted exactly as golden did (clean control
                # flow throughout); it fails iff any state still differs.
                self.stats.halted_in_lockstep += 1
                self._result(shadow, None, None, bool(overlay or mem))
                return _DONE
        elif code == _A_WRITE:
            value = action[1]
            write = meta.write
            if write >= 0:
                if value != golden.regs[write]:
                    overlay[write] = value
                else:
                    overlay.pop(write, None)
        elif code == _A_LOAD:
            _code, address, value = action
            gop = self.memops[self.memop_counts[i] - 1]
            self._compare_memop(shadow, "L", address, value, gop, i)
            write = meta.write
            if write >= 0:
                if value != golden.regs[write]:
                    overlay[write] = value
                else:
                    overlay.pop(write, None)
        elif code == _A_STORE:
            _code, address, value, gaddr, gpre = action
            size = meta.size
            gop = self.memops[self.memop_counts[i] - 1]
            self._compare_memop(shadow, "S", address, value, gop, i)
            fork_bytes = value.to_bytes(size, "little")
            gbytes = gop[2].to_bytes(size, "little")
            if address == gaddr:
                for k in range(size):
                    if fork_bytes[k] != gbytes[k]:
                        mem[address + k] = fork_bytes[k]
                    else:
                        mem.pop(address + k, None)
            else:
                # Golden's store range: the trial did not write here, so
                # its byte is the overlay value or golden's *old* byte.
                for k in range(size):
                    b = gaddr + k
                    if address <= b < address + size:
                        fork_byte = fork_bytes[b - address]
                    else:
                        fork_byte = mem.get(b, gpre[k])
                    if fork_byte != gbytes[k]:
                        mem[b] = fork_byte
                    else:
                        mem.pop(b, None)
                # The trial's own range outside golden's: golden's bytes
                # there are unchanged by this step.
                memory = golden.memory
                for k in range(size):
                    b = address + k
                    if gaddr <= b < gaddr + size:
                        continue
                    if fork_bytes[k] != memory.read(b, 1):
                        mem[b] = fork_bytes[k]
                    else:
                        mem.pop(b, None)
        else:  # _A_CONTROL or _A_JUMP
            if code == _A_JUMP:
                write = meta.write
                if write >= 0:
                    # The link value is pc+4 — identical to golden's.
                    overlay.pop(write, None)
            next_pc = action[1]
            if next_pc != golden.state.pc:
                # Control-flow divergence: materialize and run the serial
                # continuation (the cfv check fires on its first round).
                self.stats.materialized += 1
                sim = self._materialize(shadow, next_pc)
                # The serial loop has consumed (i - point) of its budget by
                # the end of the iteration that executed step i.
                self._solo(
                    shadow, sim, i + 1, self.memop_counts[i],
                    (self.length - i) + self.config.post_injection_slack,
                )
                return _DONE
        if not overlay and not mem and self.halted:
            # Converged: state equals golden's at the same retired index,
            # and golden is known to halt, so the remaining window is
            # provably identical. Retire early.
            self.stats.early_retired += 1
            self._result(shadow, None, None, False)
            return _DONE
        return _KEEP

    def _compare_memop(self, shadow: _Shadow, kind: str, address: int,
                       value: int, gop, i: int) -> None:
        if shadow.memaddr is None and (kind != gop[0] or address != gop[1]):
            shadow.memaddr = i - shadow.point
        elif (shadow.memdata is None and kind == "S" and address == gop[1]
                and value != gop[2]):
            shadow.memdata = i - shadow.point

    # ------------------------------------------------- materialized path

    def _materialize(self, shadow: _Shadow, pc: int) -> ArchSimulator:
        """A private simulator: golden's current state + this overlay."""
        sim = self.golden.fork(cow=True)
        regs = sim.regs
        for r, value in shadow.regs.items():
            regs[r] = value
        sim.state.pc = pc
        memory = sim.memory
        for address, byte in shadow.mem.items():
            # Overlay bytes only ever cover writable pages (both the
            # trial's and golden's stores respected protection).
            memory.write(address, 1, byte)
        return sim

    def _solo_from_shadow(self, shadow, pc, retired_index, memop_index,
                          budget) -> None:
        self.stats.materialized += 1
        sim = self._materialize(shadow, pc)
        self._solo(shadow, sim, retired_index, memop_index, budget)

    def _solo(self, shadow: _Shadow, sim: ArchSimulator, retired_index: int,
              memop_index: int, budget: int) -> None:
        """The serial window loop, resumed mid-flight for a diverged trial.

        Identical bookkeeping to ``arch_campaign._run_trial``'s loop, with
        one shortcut: once no comparator can fire any more (cfv set, and
        either both memop latencies set or the golden memop stream
        exhausted), the only remaining questions are halt/exception/
        runaway, which the simulator's batch ``run()`` answers directly.
        """
        trace = self.trace
        golden_pcs = self.pcs
        golden_memops = self.memops
        golden_length = self.length
        stats = self.stats
        point = shadow.point
        exception_latency: int | None = None
        cfv_latency: int | None = None
        memaddr_latency = shadow.memaddr
        memdata_latency = shadow.memdata
        memop_total = len(golden_memops)
        solo_start = sim.retired
        batched_before = stats.batched_steps
        running = StopReason.RUNNING
        faulted = StopReason.EXCEPTION
        state = sim.state
        step = sim.step
        while budget > 0 and sim.stop_reason is running:
            if cfv_latency is not None and (
                memop_index >= memop_total
                or (memaddr_latency is not None
                    and memdata_latency is not None)
            ):
                before = sim.retired
                sim.run(budget)
                steps = sim.retired - before
                stats.batched_steps += steps
                if sim.stop_reason is faulted:
                    exception_latency = (retired_index + steps) - point
                break
            budget -= 1
            if cfv_latency is None:
                pc = state.pc
                if (retired_index >= golden_length
                        or golden_pcs[retired_index] != pc):
                    cfv_latency = retired_index - point
            step()
            if sim.stop_reason is not running:
                if sim.stop_reason is faulted:
                    exception_latency = retired_index - point
                break
            memop = sim.last_memop
            if memop is not None:
                if memop_index < memop_total:
                    golden_op = golden_memops[memop_index]
                    if memaddr_latency is None and (
                        memop[0] != golden_op[0] or memop[1] != golden_op[1]
                    ):
                        memaddr_latency = retired_index - point
                    elif (
                        memdata_latency is None
                        and memop[0] == "S"
                        and memop[1] == golden_op[1]
                        and memop[2] != golden_op[2]
                    ):
                        memdata_latency = retired_index - point
                memop_index += 1
            retired_index += 1
        stats.solo_steps += (sim.retired - solo_start) - (
            stats.batched_steps - batched_before
        )
        if exception_latency is not None:
            failing = True
        elif sim.running or sim.stop_reason is StopReason.LIMIT:
            failing = True  # ran past golden without halting: runaway
        elif cfv_latency is not None:
            failing = True
        elif tuple(sim.state.regs) != trace.final_regs:
            failing = True
        else:
            failing = not sim.state.memory.equals(trace.final_memory)
        shadow.memaddr = memaddr_latency
        shadow.memdata = memdata_latency
        self._result(shadow, exception_latency, cfv_latency, failing)


class _ShadowFault(Exception):
    """The patched interpreter hit a condition the real fork's ``step()``
    would have raised as an :class:`IsaException` (alignment, access
    violation, arithmetic trap). Which exception it was does not matter:
    the trial record only keeps the latency."""


# Action codes for the pre/post split of one shadow step.
_A_CLEAN, _A_WRITE, _A_LOAD, _A_STORE, _A_CONTROL, _A_JUMP = range(6)


def _patch_int(raw: int, address: int, size: int, overlay: dict[int, int]) -> int:
    """Apply dirty overlay bytes to a little-endian value read from golden."""
    data = bytearray(raw.to_bytes(size, "little"))
    hit = False
    for k in range(size):
        byte = overlay.get(address + k)
        if byte is not None:
            data[k] = byte
            hit = True
    return int.from_bytes(data, "little") if hit else raw
