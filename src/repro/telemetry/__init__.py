"""Structured tracing and derived metrics for the ReStore reproduction.

The paper evaluates a symptom by exactly three numbers (Section 3.3): how
often failure-causing errors produce it, its error-to-symptom propagation
latency, and how often it fires in error-free execution. This package is
the instrumentation layer that makes those numbers observable instead of
inferable: schema'd trace events tagged with the cycle and architectural
position at which they happened, pluggable sinks to capture them, and
derived per-trial/per-campaign metrics rendered by ``repro campaign
report``.

Layers:

- :mod:`repro.telemetry.events` — the event schema (kinds, required
  fields) plus validation for emitted JSONL traces.
- :mod:`repro.telemetry.sinks` — the :class:`TraceSink` protocol and the
  JSONL / in-memory ring-buffer backends.
- :mod:`repro.telemetry.metrics` — latency histograms, rollback-distance
  distributions, and per-detector coverage/false-positive aggregation.
- :mod:`repro.telemetry.report` — the Section 3.3 metric table and
  figure-style breakdowns for a journaled campaign.

Design rule: every hook in the simulator and controller is guarded by an
``is None`` check on the sink, so the default (``telemetry=None``) costs
one attribute test on paths that already fire rarely, and nothing at all
on the per-cycle hot paths — enforced by ``benchmarks/perf/compare.py``.
"""

from repro.telemetry.events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TelemetryError,
    make_event,
    validate_event,
    validate_trace,
)
from repro.telemetry.metrics import (
    CampaignMetrics,
    CounterSet,
    DetectorMetrics,
    Histogram,
    LATENCY_EDGES,
    aggregate_campaign,
    merge_campaign_metrics,
)
from repro.telemetry.report import render_campaign_report
from repro.telemetry.sinks import (
    JsonlTraceSink,
    RingBufferTraceSink,
    TraceSink,
)

__all__ = [
    "CampaignMetrics",
    "CounterSet",
    "DetectorMetrics",
    "EVENT_KINDS",
    "Histogram",
    "JsonlTraceSink",
    "LATENCY_EDGES",
    "RingBufferTraceSink",
    "SCHEMA_VERSION",
    "TelemetryError",
    "TraceSink",
    "aggregate_campaign",
    "make_event",
    "merge_campaign_metrics",
    "render_campaign_report",
    "validate_event",
    "validate_trace",
]
