"""Chaos: seeded transport faults + killed workers vs. the invariant.

The service's serial-equivalence guarantee is only worth something if it
survives the failures the architecture claims to absorb. These tests
drive real jobs through the real HTTP stack behind a seeded
:class:`ChaosTransport` (drops, resets, duplicates, truncations,
delays), abandon and SIGKILL workers, and then hold the one line that
matters: the finalized journal is byte-identical to a serial
``run_campaign``, with an empty dead-letter queue and no completed unit
ever re-executed.
"""

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaign import run_campaign
from repro.service import (
    CampaignScheduler,
    CampaignService,
    ChaosPlan,
    ChaosTransport,
    LocalWorkerPool,
    RemoteWorker,
    ResultStore,
    TransportError,
    build_config,
)
from repro.service.client import ServiceClient
from repro.util.retry import RetryPolicy

ALL_KERNELS = ["bzip2", "gap", "gcc", "gzip", "mcf", "parser", "vortex"]
CONFIG_OPTIONS = {
    "trials_per_workload": 6,
    "injection_points": 4,
    "workloads": ALL_KERNELS,
    "seed": 7,
}
#: Fast backoff so chaos runs retry in milliseconds, not seconds.
FAST_RETRY = RetryPolicy(
    attempts=3, base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.5
)


class RecordingTransport:
    def __init__(self, *script):
        self.script = list(script)
        self.calls = 0

    def send(self, method, url, data, headers, timeout):
        self.calls += 1
        return self.script.pop(0) if self.script else (200, b'{"ok": 1}')


class TestChaosPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="drop"):
            ChaosPlan(drop=1.5)
        with pytest.raises(ValueError, match="<= 1"):
            ChaosPlan(drop=0.5, reset=0.6)
        with pytest.raises(ValueError, match="max_delay"):
            ChaosPlan(max_delay=-1.0)
        with pytest.raises(ValueError, match="max_faults"):
            ChaosPlan(max_faults=-1)

    def test_uniform_sets_every_rate(self):
        plan = ChaosPlan.uniform(9, 0.1, max_faults=5)
        assert (plan.drop, plan.reset, plan.duplicate, plan.truncate,
                plan.delay_rate) == (0.1,) * 5
        assert plan.max_faults == 5


def single_fault(**rates):
    """A plan injecting exactly one fault kind at rate 1 (others off)."""
    zeroed = {"drop": 0.0, "reset": 0.0, "duplicate": 0.0, "truncate": 0.0,
              "delay_rate": 0.0}
    zeroed.update(rates)
    return ChaosPlan(seed=1, **zeroed)


class TestChaosTransport:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        plan = ChaosPlan(seed=42, drop=0.2, reset=0.2, duplicate=0.2,
                         truncate=0.2, delay_rate=0.5)
        first = ChaosTransport(plan, inner=RecordingTransport())
        second = ChaosTransport(plan, inner=RecordingTransport())
        assert [first._draw() for _ in range(64)] == [
            second._draw() for _ in range(64)
        ]
        assert first.counters == second.counters
        assert first.faults_injected() > 0  # the schedule actually bites

    def test_drop_never_reaches_the_service(self):
        inner = RecordingTransport()
        transport = ChaosTransport(single_fault(drop=1.0), inner=inner)
        with pytest.raises(TransportError, match="dropped"):
            transport.send("GET", "http://x", None, {}, 1.0)
        assert inner.calls == 0
        assert transport.counters["drop"] == 1

    def test_reset_delivers_then_loses_the_response(self):
        inner = RecordingTransport()
        transport = ChaosTransport(single_fault(reset=1.0), inner=inner)
        with pytest.raises(TransportError, match="reset"):
            transport.send("POST", "http://x", b"{}", {}, 1.0)
        assert inner.calls == 1  # the service processed the request

    def test_duplicate_delivers_twice(self):
        inner = RecordingTransport()
        transport = ChaosTransport(
            single_fault(duplicate=1.0), inner=inner
        )
        status, _body = transport.send("POST", "http://x", b"{}", {}, 1.0)
        assert status == 200
        assert inner.calls == 2

    def test_truncate_halves_the_body(self):
        inner = RecordingTransport((200, b'{"accepted": true}'))
        transport = ChaosTransport(
            single_fault(truncate=1.0), inner=inner
        )
        _status, body = transport.send("GET", "http://x", None, {}, 1.0)
        assert body == b'{"accepted": true}'[:9]  # cut in half mid-token

    def test_delay_sleeps_within_the_bound(self):
        slept = []
        transport = ChaosTransport(
            single_fault(delay_rate=1.0, max_delay=0.25),
            inner=RecordingTransport(), sleep=slept.append,
        )
        for _ in range(8):
            transport.send("GET", "http://x", None, {}, 1.0)
        assert len(slept) == 8
        assert all(0.0 < delay <= 0.25 for delay in slept)

    def test_max_faults_budget_makes_the_transport_eventually_clean(self):
        inner = RecordingTransport()
        transport = ChaosTransport(
            single_fault(drop=1.0, max_faults=3), inner=inner
        )
        outcomes = []
        for _ in range(10):
            try:
                transport.send("GET", "http://x", None, {}, 1.0)
                outcomes.append("ok")
            except TransportError:
                outcomes.append("drop")
        assert outcomes == ["drop"] * 3 + ["ok"] * 7
        assert transport.faults_injected() == 3


@contextlib.contextmanager
def chaos_service(data_dir, *, lease_ttl, max_attempts=4, workers=0,
                  sweep_interval=0.05):
    """Scheduler + HTTP API on a background loop, chaos-test tuned.

    ``max_attempts`` is raised above the production default because a
    chaos schedule can legitimately burn an attempt on a lost lease
    response; the invariant under test is journal equivalence, not the
    attempt budget (which has its own tests)."""
    store = ResultStore(":memory:")
    scheduler = CampaignScheduler(
        store, str(data_dir), lease_ttl=lease_ttl, max_attempts=max_attempts
    )
    service = CampaignService(scheduler, port=0, sweep_interval=sweep_interval)
    pool = None
    if workers:
        pool = LocalWorkerPool(
            scheduler, workers=workers,
            executor=ThreadPoolExecutor(max_workers=workers),
        )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    stopping: list = []

    async def main():
        await service.start()
        if pool is not None:
            pool.start()
        stop = asyncio.Event()
        stopping.append(stop)
        started.set()
        await stop.wait()
        if pool is not None:
            await pool.stop()
        await service.stop()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(main()), daemon=True
    )
    thread.start()
    assert started.wait(10), "service failed to start"
    try:
        yield service, scheduler
    finally:
        loop.call_soon_threadsafe(stopping[0].set)
        thread.join(timeout=10)
        loop.close()
        store.close()


class TestChaosEndToEnd:
    def test_chaos_fleet_with_killed_worker_matches_serial_run(
        self, tmp_path, monkeypatch
    ):
        """The headline acceptance test. All seven kernels, two workers
        behind seeded chaos transports, one worker hard-killed holding a
        lease (abandoned: no heartbeat, no report — exactly SIGKILL's
        signature). The finalized journal must equal a serial
        ``run_campaign`` byte for byte, the dead-letter queue must be
        empty, and no completed unit may ever run twice."""
        from repro.service import worker as worker_module

        executions: dict[str, int] = {}
        record_lock = threading.Lock()
        real_execute = worker_module.execute_unit

        def counting_execute(spec_dict, unit_dict, cache_dir=None):
            with record_lock:
                key = unit_dict["unit_id"]
                executions[key] = executions.get(key, 0) + 1
            return real_execute(spec_dict, unit_dict, cache_dir)

        monkeypatch.setattr(
            "repro.service.worker.execute_unit", counting_execute
        )

        with chaos_service(
            tmp_path / "svc", lease_ttl=1.5, max_attempts=4
        ) as (service, scheduler):
            control = ServiceClient(service.address)
            view = control.submit(
                {"level": "arch", "config": dict(CONFIG_OPTIONS),
                 "shards": 2}
            )
            job_id = view["job_id"]

            # The doomed worker leases a unit and is "killed": it never
            # heartbeats and never reports, so only the lease TTL can
            # recover its unit.
            assert control.lease("doomed") is not None

            fleet = []
            threads = []
            for index in range(2):
                transport = ChaosTransport(ChaosPlan(
                    seed=1000 + index, drop=0.15, reset=0.10,
                    duplicate=0.05, truncate=0.10, delay_rate=0.10,
                    max_delay=0.02, max_faults=30,
                ))
                client = ServiceClient(
                    service.address, transport=transport, retry=FAST_RETRY
                )
                worker = RemoteWorker(
                    client, f"chaos-{index}", poll_interval=0.05,
                    outbox_dir=str(tmp_path / f"outbox-{index}"),
                )
                worker.chaos_transport = transport
                fleet.append(worker)
                thread = threading.Thread(target=worker.run, daemon=True)
                threads.append(thread)
                thread.start()

            final = control.wait(job_id, timeout=180)
            for worker in fleet:
                worker.stop()
            for thread in threads:
                thread.join(timeout=30)
            events = scheduler.events(job_id)
            assert final["state"] == "done"
            assert final["error"] is None
            assert control.dead_letter()["total"] == 0

            # Chaos genuinely happened — this was not a clean run.
            assert sum(
                w.chaos_transport.faults_injected() for w in fleet
            ) > 0

            # No completed unit was ever re-executed: every repeat
            # execution is explained by a lease requeue (the abandoned
            # unit, or a lease whose grant response chaos ate), and
            # every spooled result was replayed, not recomputed.
            requeued = {
                e["unit_id"] for e in events if e["event"] == "unit_requeued"
            }
            repeated = {u for u, n in executions.items() if n > 1}
            assert repeated <= requeued
            spooled = sum(w.outbox_spooled for w in fleet)
            replayed = sum(w.outbox_replayed for w in fleet)
            assert spooled == replayed
            assert all(w.outbox.pending() == [] for w in fleet)
            assert all(n <= 2 for n in executions.values())

        # The one line that matters: byte-identical to a serial run.
        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign(
            "arch", build_config("arch", CONFIG_OPTIONS),
            journal_path=serial_path,
        )
        with open(final["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()

    def test_sigkilled_worker_process_unit_is_requeued(self, tmp_path):
        """A real ``repro worker`` OS process is SIGKILLed right after
        leasing: the lease TTL requeues its unit and a healthy worker
        finishes the job with a journal equal to a serial run."""
        from repro.service.chaos import WorkerProcess

        options = {**CONFIG_OPTIONS, "workloads": ["gcc"]}
        with chaos_service(
            tmp_path / "svc", lease_ttl=0.5, max_attempts=4
        ) as (service, scheduler):
            control = ServiceClient(service.address)
            view = control.submit({"level": "arch", "config": options})
            job_id = view["job_id"]

            with WorkerProcess(
                service.address, "victim", poll_interval=0.05
            ) as victim:
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    leased = [
                        e for e in scheduler.events(job_id)
                        if e["event"] == "leased" and e["worker"] == "victim"
                    ]
                    if leased:
                        break
                    time.sleep(0.01)
                assert leased, "the victim never leased a unit"
                victim.kill()  # SIGKILL: no fail report, no heartbeat
            assert victim.wait(timeout=10) is not None

            healthy = RemoteWorker(
                ServiceClient(service.address), "healthy",
                poll_interval=0.05,
                outbox_dir=str(tmp_path / "outbox-healthy"),
            )
            thread = threading.Thread(target=healthy.run, daemon=True)
            thread.start()
            final = control.wait(job_id, timeout=120)
            healthy.stop()
            thread.join(timeout=30)
            events = [e["event"] for e in scheduler.events(job_id)]
            assert final["state"] == "done"
            assert final["error"] is None
            assert "unit_requeued" in events  # the victim's lease expired
            assert control.dead_letter()["total"] == 0

        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign(
            "arch", build_config("arch", options), journal_path=serial_path
        )
        with open(final["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()
