"""Trial-savings benchmark for the adaptive campaign planner.

Runs the same arch-level fault-injection campaign twice — once with the
uniform allocator (every injection point gets ``trials / points``
trials) and once with the adaptive planner — and reports how many
trials the planner avoided *at the same statistical precision*.

"Same precision" is made concrete, not hand-waved: the uniform run goes
first, its journal's per-point tallies are folded into Wilson margins,
and the **widest** of those margins becomes the adaptive run's
``--margin`` target. The planner therefore has to deliver at least the
confidence the uniform campaign actually achieved at its weakest point;
any trials it skips after that are genuine savings, not precision
quietly traded away. The benchmark refuses to publish (exit 1) if any
live adaptive point fails to converge to that target, and CI gates on
``trials_saved_pct >= 30``.

Results are written as schema'd JSON (see ``SCHEMA``) compatible with
``benchmarks/perf/compare.py``. Usage::

    PYTHONPATH=src python benchmarks/planner_savings.py --scale smoke \
        --out benchmarks/out/planner_savings.json

Both runs are deterministic functions of the config seed, so the
numbers are stable across hosts — this benchmark measures trial
*counts*, never wall-clock.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import __version__  # noqa: E402
from repro.campaign.runner import run_campaign  # noqa: E402
from repro.faults.arch_campaign import ArchCampaignConfig  # noqa: E402
from repro.planner import PlannerConfig  # noqa: E402
from repro.planner.margins import journal_point_tallies  # noqa: E402
from repro.util.journal import read_journal  # noqa: E402
from repro.util.stats import wilson_margin  # noqa: E402

SCHEMA = "repro-planner-savings/1"

# The planner only saves trials when the budget comfortably covers the
# sampled points (70 points x 8 min trials > a 210-trial budget saves
# nothing), so the benchmark uses a deliberately trial-rich config: few
# points, many trials per point, exactly the regime where the paper's
# symptom-rate estimates need tight intervals.
SCALES: dict[str, dict] = {
    "smoke": {
        "workloads": ("gcc",),
        "trials_per_workload": 240,
        "injection_points": 12,
        "seed": 77,
    },
    "full": {
        "workloads": ("gcc", "mcf", "vortex"),
        "trials_per_workload": 240,
        "injection_points": 12,
        "seed": 77,
    },
}

_MIN_TRIALS = 8
_ROUND_TRIALS = 4


def _uniform_worst_margin(journal_path: str) -> float:
    """The widest per-point Wilson margin the uniform run achieved."""
    tallies = journal_point_tallies(read_journal(journal_path))
    worst = 0.0
    for points in tallies.values():
        for completed, failing in points.values():
            if completed:
                worst = max(worst, wilson_margin(failing, completed))
    if not 0.0 < worst < 1.0:
        raise SystemExit(
            f"uniform run produced no usable per-point tallies "
            f"(worst margin {worst}); config too small to benchmark"
        )
    return worst


def run_benchmark(scale: str) -> dict:
    knobs = SCALES[scale]
    config = ArchCampaignConfig(
        trials_per_workload=knobs["trials_per_workload"],
        injection_points=knobs["injection_points"],
        seed=knobs["seed"],
        workloads=knobs["workloads"],
    )

    with tempfile.TemporaryDirectory(prefix="planner-bench-") as tmp:
        uniform_journal = os.path.join(tmp, "uniform.jsonl")
        uniform = run_campaign("arch", config, journal_path=uniform_journal)
        uniform_trials = uniform.executed
        # Hold the adaptive run to the precision the uniform campaign
        # actually reached at its weakest point (plus a float-safety
        # epsilon so an identical tally is not "just over" the target).
        target = round(_uniform_worst_margin(uniform_journal) + 1e-6, 6)

        planner = PlannerConfig(
            margin=target,
            min_trials=_MIN_TRIALS,
            round_trials=_ROUND_TRIALS,
            max_trials=knobs["trials_per_workload"],
        )
        adaptive_journal = os.path.join(tmp, "adaptive.jsonl")
        adaptive = run_campaign(
            "arch", config, journal_path=adaptive_journal, planner=planner
        )

    totals = adaptive.planner_totals
    if not totals:
        raise SystemExit("adaptive run produced no planner totals")
    # Gate on the planner's own converged flags (margin is journaled
    # rounded, so re-deriving convergence from float compares can lie).
    if totals["converged_points"] != totals["total_points"]:
        raise SystemExit(
            f"adaptive run left {totals['total_points'] - totals['converged_points']} "
            f"of {totals['total_points']} points unconverged at "
            f"margin<={target}; savings would not be at equal precision"
        )

    adaptive_trials = totals["executed"]
    saved_pct = 100.0 * (uniform_trials - adaptive_trials) / uniform_trials

    metrics = {
        "trials_saved_pct": {
            "value": round(saved_pct, 2),
            "unit": "%",
            "details": {
                "margin_target": target,
                "converged_points": totals["converged_points"],
                "total_points": totals["total_points"],
                "prescreen_points": totals["prescreen_points"],
                "rounds_max": totals["rounds_max"],
            },
        },
        "uniform_trials": {"value": uniform_trials, "unit": "trials"},
        "adaptive_trials": {"value": adaptive_trials, "unit": "trials"},
        "prescreen_trials_avoided": {
            "value": totals["prescreen_trials"],
            "unit": "trials",
        },
    }

    return {
        "schema": SCHEMA,
        "version": __version__,
        "scale": scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "workloads": list(knobs["workloads"]),
            "trials_per_workload": knobs["trials_per_workload"],
            "injection_points": knobs["injection_points"],
            "seed": knobs["seed"],
            "min_trials": _MIN_TRIALS,
            "round_trials": _ROUND_TRIALS,
            "margin_target": target,
        },
        "metrics": metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--min-savings-pct", type=float, default=None,
                        help="exit 1 unless trials_saved_pct meets this")
    parser.add_argument("--out", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    report = run_benchmark(args.scale)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(payload)
        print(f"wrote {args.out}")
    sys.stdout.write(payload)

    saved = report["metrics"]["trials_saved_pct"]["value"]
    if args.min_savings_pct is not None and saved < args.min_savings_pct:
        print(
            f"ERROR: planner saved only {saved}% of trials "
            f"(required >= {args.min_savings_pct}%)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
