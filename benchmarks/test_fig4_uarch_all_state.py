"""Figure 4 + Table 2: microarchitectural injection into all state,
with perfect identification of control-flow violations.

Paper numbers (Sections 5.1.1 and 7):

- "only 8% of all trials ... are failures" (intrinsic masking ~92-93%);
- "with a moderate checkpointing interval of 100 instructions,
  approximately half of all failures are covered by the deadlock,
  exception, and cfv categories";
- "a large fraction of the covered failures are covered by the easier to
  detect deadlock and exception categories".
"""

from repro.faults import UARCH_CATEGORY_DESCRIPTIONS
from repro.faults.classify import classify_uarch_trial
from repro.faults.uarch_campaign import FIGURE46_INTERVALS
from repro.util.tables import format_table

from .conftest import emit, run_shared_uarch_campaign


def test_fig4_coverage_vs_interval(benchmark):
    result = benchmark.pedantic(run_shared_uarch_campaign, rounds=1, iterations=1)

    table2 = format_table(
        ["category", "description"],
        list(UARCH_CATEGORY_DESCRIPTIONS.items()),
        title="Table 2: Figure 4-6 category descriptions",
    )
    benign = result.masked_estimate()
    failures = result.baseline_failure_estimate()
    coverage_100 = result.coverage_of_failures(100)
    headline = format_table(
        ["metric", "paper", "measured"],
        [
            ["masked+other (benign)", "~92-93%",
             f"{benign.proportion:.1%} ±{benign.margin:.1%}"],
            ["failing trials", "~7-8%",
             f"{failures.proportion:.1%} ±{failures.margin:.1%}"],
            ["failure coverage @100 (perfect cfv)", "~50%",
             f"{coverage_100.proportion:.1%} ±{coverage_100.margin:.1%}"],
            ["eligible state bits", "~46,000", f"{result.total_bits:,}"],
        ],
        title="Figure 4 headline comparison",
    )
    emit(
        "fig4_uarch_all_state",
        "\n\n".join(
            [
                table2,
                result.table(
                    FIGURE46_INTERVALS,
                    title="Figure 4: coverage vs checkpoint interval (all state)",
                ),
                headline,
            ]
        ),
    )

    assert 0.80 < benign.proportion < 0.99
    assert 0.25 < coverage_100.proportion < 0.80
    # Deadlock+exception must carry a large share of covered failures.
    covered = [
        trial
        for trial in result.trials
        if trial.failing
        and classify_uarch_trial(trial, 100) in ("deadlock", "exception", "cfv")
    ]
    easy = [
        trial
        for trial in covered
        if classify_uarch_trial(trial, 100) in ("deadlock", "exception")
    ]
    assert len(easy) >= len(covered) * 0.4
    # Coverage grows with the interval.
    fractions = [
        result.coverage_of_failures(interval).proportion
        for interval in (25, 100, 1000)
    ]
    assert fractions == sorted(fractions)
