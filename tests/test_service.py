"""The campaign service: specs, sharding, store, scheduler, leases."""

import json
import os

import pytest

from repro.campaign import run_campaign
from repro.faults import ArchCampaignConfig
from repro.service import (
    CampaignScheduler,
    JobSpec,
    ResultStore,
    ServiceError,
    WorkUnit,
    build_config,
    execute_unit,
    shard_job,
)
from repro.util.journal import config_to_dict, stable_digest

CONFIG_OPTIONS = {
    "trials_per_workload": 6,
    "injection_points": 4,
    "workloads": ["gcc"],
    "seed": 7,
}


def make_spec(**overrides):
    payload = {"level": "arch", "config": dict(CONFIG_OPTIONS)}
    payload.update(overrides)
    return JobSpec.from_request(payload)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def scheduler(tmp_path):
    store = ResultStore(":memory:")
    clock = FakeClock()
    sched = CampaignScheduler(
        store, str(tmp_path), lease_ttl=60.0, max_attempts=2, clock=clock
    )
    sched.test_clock = clock
    yield sched
    store.close()


def drain(scheduler, worker="w0", fail_units=()):
    """Run the lease protocol to completion as one synchronous worker."""
    while True:
        lease = scheduler.lease(worker)
        if lease is None:
            return
        unit = lease["unit"]
        if unit["unit_id"] in fail_units:
            scheduler.fail(
                unit["job_id"], unit["unit_id"], worker, "induced failure"
            )
            continue
        result = execute_unit(lease["spec"], unit)
        scheduler.complete(unit["job_id"], unit["unit_id"], worker, result)


class TestJobSpec:
    def test_from_request_round_trips_config(self):
        spec = make_spec()
        expected = ArchCampaignConfig(
            trials_per_workload=6, injection_points=4,
            workloads=("gcc",), seed=7,
        )
        assert spec.config == expected
        assert spec.config_digest == stable_digest(config_to_dict(expected))

    def test_unknown_config_option_rejected(self):
        with pytest.raises(ServiceError, match="unknown arch config option"):
            build_config("arch", {"trails_per_workload": 6})

    def test_fault_model_dropped_not_rejected(self):
        config = build_config(
            "arch", {**CONFIG_OPTIONS, "fault_model": {"whatever": 1}}
        )
        assert config == build_config("arch", CONFIG_OPTIONS)

    def test_unknown_level_rejected(self):
        with pytest.raises(ServiceError, match="unknown campaign level"):
            make_spec(level="rtl")

    def test_bad_shards_rejected(self):
        with pytest.raises(ServiceError, match="shards_per_workload"):
            make_spec(shards=0)
        with pytest.raises(ServiceError, match="shards_per_workload"):
            make_spec(shards="two")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ServiceError, match="trial_timeout"):
            make_spec(trial_timeout=-1)
        with pytest.raises(ServiceError, match="trial_timeout"):
            make_spec(trial_timeout="soon")

    def test_dict_round_trip(self):
        spec = make_spec(shards=3, trial_timeout=2.5, trace=True)
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestSharding:
    def test_units_cover_workloads_in_order(self):
        spec = make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}, shards=2
        )
        units = shard_job("job-1", spec)
        assert [u.unit_id for u in units] == [
            "gcc:0of2", "gcc:1of2", "gzip:0of2", "gzip:1of2",
        ]
        assert all(u.shard == (u.shard_index, 2) for u in units)

    def test_single_shard_maps_to_whole_workload(self):
        (unit,) = shard_job("job-1", make_spec())
        assert unit.shard is None

    def test_work_unit_round_trip(self):
        unit = WorkUnit("job-1", "gcc:1of2", "gcc", 1, 2)
        assert WorkUnit.from_dict(unit.to_dict()) == unit

    def test_shards_partition_the_trial_space(self):
        """The union of the stride slices is the serial trial set, each
        trial exactly once — the foundation of serial equivalence."""
        spec = make_spec(shards=3)
        keys = []
        for unit in shard_job("job-1", spec):
            result = execute_unit(spec.to_dict(), unit.to_dict())
            keys.extend(entry["key"] for entry in result["outcomes"])
        serial = run_campaign("arch", spec.config)
        assert sorted(keys) == sorted(o.key for o in serial.outcomes)
        assert len(keys) == len(set(keys))


class TestResultStore:
    def test_trial_ingestion_is_idempotent(self):
        store = ResultStore(":memory:")
        store.create_job("j", 1, "arch", {}, created=0.0)
        rows = [("gcc:1:0", 0, 0, "gcc", 1, 0, "ok", "{}")]
        assert store.add_trials("j", rows) == 1
        assert store.add_trials("j", rows) == 0  # retry re-report: no dup
        assert store.trial_count("j") == 1
        store.close()

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "svc.db")
        store = ResultStore(path)
        store.create_job("j", 1, "arch", {"level": "arch"}, created=0.0)
        store.close()
        store = ResultStore(path)
        assert store.job("j")["state"] == "queued"
        store.close()

    def test_lease_respects_job_order(self):
        store = ResultStore(":memory:")
        store.create_job("a", 1, "arch", {}, created=0.0)
        store.create_job("b", 2, "arch", {}, created=1.0)
        store.add_units([
            WorkUnit("b", "gcc:0of1", "gcc", 0, 1),
            WorkUnit("a", "gcc:0of1", "gcc", 0, 1),
        ])
        leased = store.lease_next("w", now=10.0, ttl=5.0)
        assert leased["job_id"] == "a"  # oldest job first, not insert order
        store.close()

    def test_reports_require_lease_ownership(self):
        store = ResultStore(":memory:")
        store.create_job("a", 1, "arch", {}, created=0.0)
        store.add_units([WorkUnit("a", "gcc:0of1", "gcc", 0, 1)])
        store.lease_next("w1", now=0.0, ttl=5.0)
        assert not store.heartbeat("a", "gcc:0of1", "w2", expiry=99.0)
        assert not store.complete_unit(
            "a", "gcc:0of1", "w2", skip_reason=None, total_bits=0, metrics=None
        )
        assert store.complete_unit(
            "a", "gcc:0of1", "w1", skip_reason=None, total_bits=0, metrics=None
        )
        store.close()


class TestSchedulerEndToEnd:
    def test_sharded_job_matches_serial_run_bit_for_bit(
        self, scheduler, tmp_path
    ):
        """The acceptance invariant: a 2-shard job's journal and merged
        telemetry are byte-identical to a serial ``run_campaign``."""
        spec = make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]},
            shards=2, trace=True,
        )
        view = scheduler.submit(spec)
        drain(scheduler)
        view = scheduler.job_view(view["job_id"])
        assert view["state"] == "done"

        serial_journal = str(tmp_path / "serial.jsonl")
        serial_trace = str(tmp_path / "serial.trace.jsonl")
        from repro.telemetry import JsonlTraceSink

        sink = JsonlTraceSink(serial_trace)
        serial = run_campaign(
            "arch", spec.config, journal_path=serial_journal, trace=sink
        )
        sink.close()

        with open(view["journal_path"]) as f, open(serial_journal) as g:
            assert f.read() == g.read()
        with open(view["trace_path"]) as f, open(serial_trace) as g:
            assert f.read() == g.read()
        assert view["outcomes"] == {"ok": len(serial.outcomes)}

    def test_lease_expiry_requeues_killed_workers_unit(self, scheduler):
        """A worker that leases a unit and dies (no heartbeat, no report)
        loses the lease after the TTL; another worker completes the job."""
        scheduler.submit(make_spec())
        lease = scheduler.lease("doomed")
        assert lease is not None
        assert scheduler.lease("idle") is None  # nothing else leasable

        scheduler.test_clock.advance(61.0)  # past the 60 s TTL
        drain(scheduler, worker="survivor")
        view = scheduler.job_view("job-000001")
        assert view["state"] == "done"
        assert view["error"] is None  # requeued, not retired

        # The dead worker's late report must bounce, not double-ingest.
        unit = lease["unit"]
        stale = execute_unit(lease["spec"], unit)
        assert not scheduler.complete(
            unit["job_id"], unit["unit_id"], "doomed", stale
        )
        assert scheduler.job_view("job-000001")["trials"] == view["trials"]

    def test_heartbeat_keeps_a_slow_unit_leased(self, scheduler):
        scheduler.submit(make_spec())
        lease = scheduler.lease("slow")
        unit = lease["unit"]
        for _ in range(5):
            scheduler.test_clock.advance(40.0)
            assert scheduler.heartbeat(unit["job_id"], unit["unit_id"], "slow")
        assert scheduler.lease("thief") is None  # never expired
        result = execute_unit(lease["spec"], unit)
        assert scheduler.complete(unit["job_id"], unit["unit_id"], "slow", result)
        assert scheduler.job_view(unit["job_id"])["state"] == "done"

    def test_exhausted_attempts_retire_unit_and_skip_workload(self, scheduler):
        spec = make_spec(config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]})
        view = scheduler.submit(spec)
        job_id = view["job_id"]
        drain(scheduler, fail_units=("gcc:0of1",))
        view = scheduler.job_view(job_id)
        assert view["state"] == "done"  # the job completes regardless
        assert "skipped workloads: gcc" in view["error"]
        assert view["units"] == {"done": 1, "failed": 1}

        entries = [
            json.loads(line)
            for line in open(view["journal_path"]).read().splitlines()
        ]
        sentinels = {
            e["workload"]: e for e in entries if e["kind"] == "workload"
        }
        assert sentinels["gcc"]["status"] == "skipped"
        assert "induced failure" in sentinels["gcc"]["reason"]
        assert sentinels["gzip"]["status"] == "done"

    def test_cancel_stops_pending_work(self, scheduler):
        view = scheduler.submit(make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}, shards=2
        ))
        job_id = view["job_id"]
        lease = scheduler.lease("w0")
        cancelled = scheduler.cancel(job_id)
        assert cancelled["state"] == "cancelled"
        assert scheduler.lease("w0") is None
        # An in-flight result after cancellation is dropped.
        unit = lease["unit"]
        result = execute_unit(lease["spec"], unit)
        assert not scheduler.complete(unit["job_id"], unit["unit_id"], "w0", result)
        assert scheduler.job_view(job_id)["trials"] == 0

    def test_events_tell_the_jobs_story(self, scheduler):
        view = scheduler.submit(make_spec())
        seen = []
        scheduler.add_listener(view["job_id"], seen.append)
        drain(scheduler)
        kinds = [e["event"] for e in scheduler.events(view["job_id"])]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "done"
        assert "leased" in kinds and "unit_done" in kinds
        # The live listener saw everything after it subscribed.
        assert [e["event"] for e in seen] == kinds[1:]

    def test_unknown_job_raises(self, scheduler):
        with pytest.raises(ServiceError, match="no such job"):
            scheduler.job_view("job-999999")

    def test_jobs_view_paginates(self, scheduler):
        for _ in range(3):
            scheduler.submit(make_spec())
        page = scheduler.jobs_view(offset=1, limit=1)
        assert page["total"] == 3
        assert len(page["jobs"]) == 1
        assert page["jobs"][0]["job_id"] == "job-000002"  # newest first

    def test_journals_land_under_the_data_dir(self, scheduler, tmp_path):
        view = scheduler.submit(make_spec())
        drain(scheduler)
        journal = scheduler.job_view(view["job_id"])["journal_path"]
        assert os.path.dirname(journal) == str(tmp_path / "jobs")


class TestDuplicateCompletes:
    def test_redelivery_from_same_worker_is_idempotent(self, scheduler):
        """A complete whose response was lost and retried (or replayed
        from the outbox) must settle, not bounce forever."""
        scheduler.submit(make_spec())
        lease = scheduler.lease("w0")
        unit = lease["unit"]
        result = execute_unit(lease["spec"], unit)
        assert scheduler.complete(unit["job_id"], unit["unit_id"], "w0", result)
        trials = scheduler.job_view(unit["job_id"])["trials"]
        assert scheduler.complete(unit["job_id"], unit["unit_id"], "w0", result)
        assert scheduler.job_view(unit["job_id"])["trials"] == trials
        assert scheduler.counters["duplicate_completes"] == 1

    def test_duplicate_from_another_worker_still_bounces(self, scheduler):
        scheduler.submit(make_spec())
        lease = scheduler.lease("w0")
        unit = lease["unit"]
        result = execute_unit(lease["spec"], unit)
        assert scheduler.complete(unit["job_id"], unit["unit_id"], "w0", result)
        assert not scheduler.complete(
            unit["job_id"], unit["unit_id"], "thief", result
        )
        assert scheduler.counters["bounced_completes"] == 1


class TestLeaseReissue:
    def test_lease_retry_gets_the_same_unit_back(self, scheduler):
        """A lease whose response was lost and retried is re-issued to
        the same worker — same unit, same attempt — instead of an idle
        answer that strands the grant until TTL expiry."""
        scheduler.submit(make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}
        ))
        first = scheduler.lease("w0")
        again = scheduler.lease("w0")
        assert again["unit"] == first["unit"]
        assert again["attempt"] == first["attempt"] == 1
        assert scheduler.counters["lease_reissues"] == 1
        assert scheduler.counters["leases_granted"] == 1
        events = [
            e["event"] for e in scheduler.events(first["unit"]["job_id"])
        ]
        assert "lease_reissued" in events

    def test_reissue_refreshes_the_lease_expiry(self, scheduler):
        scheduler.submit(make_spec())
        lease = scheduler.lease("w0")
        unit = lease["unit"]
        scheduler.test_clock.advance(45.0)  # 15 s left on a 60 s TTL
        assert scheduler.lease("w0")["unit"] == unit
        scheduler.test_clock.advance(45.0)  # past the original expiry
        row = scheduler.store.unit(unit["job_id"], unit["unit_id"])
        assert row["state"] == "leased" and row["worker"] == "w0"

    def test_other_workers_do_not_steal_a_live_lease(self, scheduler):
        scheduler.submit(make_spec())
        mine = scheduler.lease("w0")
        assert scheduler.lease("w1") is None
        assert scheduler.lease("w0")["unit"] == mine["unit"]

    def test_expired_lease_is_not_reissued(self, scheduler):
        scheduler.submit(make_spec())
        first = scheduler.lease("w0")
        scheduler.test_clock.advance(61.0)
        second = scheduler.lease("w0")
        assert second["unit"] == first["unit"]  # requeued, then re-leased
        assert second["attempt"] == 2
        assert scheduler.counters["lease_reissues"] == 0
        assert scheduler.counters["leases_granted"] == 2

    def test_completed_unit_is_not_reissued(self, scheduler):
        scheduler.submit(make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}
        ))
        lease = scheduler.lease("w0")
        unit = lease["unit"]
        result = execute_unit(lease["spec"], unit)
        scheduler.complete(unit["job_id"], unit["unit_id"], "w0", result)
        follow_on = scheduler.lease("w0")
        assert follow_on["unit"] != unit
        assert scheduler.counters["lease_reissues"] == 0


class TestDeadLetterQueue:
    def _dead_letter_one(self, scheduler):
        view = scheduler.submit(make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}
        ))
        drain(scheduler, fail_units=("gcc:0of1",))
        return view["job_id"]

    def test_exhausted_units_land_in_the_dead_letter_queue(self, scheduler):
        job_id = self._dead_letter_one(scheduler)
        listing = scheduler.dead_letter_view()
        assert listing["total"] == 1
        (unit,) = listing["units"]
        assert unit["job_id"] == job_id
        assert unit["unit_id"] == "gcc:0of1"
        assert unit["attempts"] == 2
        assert "induced failure" in unit["error"]
        assert scheduler.dead_letter_view(job_id) == listing
        assert scheduler.service_metrics()["dead_letter"] == 1

    def test_requeue_reopens_and_refinalizes_byte_identical(
        self, scheduler, tmp_path
    ):
        """The full recovery arc: a dead-lettered unit is requeued, the
        finalized job reopens, and the rebuilt journal is byte-identical
        to a serial run — the stale skip sentinel and error are gone."""
        job_id = self._dead_letter_one(scheduler)
        assert "skipped workloads: gcc" in scheduler.job_view(job_id)["error"]

        view = scheduler.requeue_unit(job_id, "gcc:0of1")
        assert view["state"] == "running"
        drain(scheduler)
        view = scheduler.job_view(job_id)
        assert view["state"] == "done"
        assert view["error"] is None  # the stale skip note is cleared
        assert scheduler.dead_letter_view()["total"] == 0

        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign(
            "arch",
            build_config(
                "arch", {**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}
            ),
            journal_path=serial_path,
        )
        with open(view["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()
        assert scheduler.counters["dead_letter_requeues"] == 1

    def test_requeue_rejects_non_dead_lettered_units(self, scheduler):
        scheduler.submit(make_spec())
        with pytest.raises(ServiceError, match="not dead-lettered"):
            scheduler.requeue_unit("job-000001", "gcc:0of1")
        with pytest.raises(ServiceError, match="no such unit"):
            scheduler.requeue_unit("job-000001", "gcc:9of9")
        with pytest.raises(ServiceError, match="no such job"):
            scheduler.requeue_unit("job-999999", "gcc:0of1")

    def test_requeue_rejects_cancelled_jobs(self, scheduler):
        job_id = scheduler.submit(make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}
        ))["job_id"]
        for _ in range(2):  # exhaust the gcc unit's attempt budget
            lease = scheduler.lease("w0")
            scheduler.fail(job_id, lease["unit"]["unit_id"], "w0", "induced")
        scheduler.cancel(job_id)  # gzip still pending: genuinely cancelled
        with pytest.raises(ServiceError, match="cancelled"):
            scheduler.requeue_unit(job_id, "gcc:0of1")

    def test_service_metrics_tell_the_resilience_story(self, scheduler):
        job_id = self._dead_letter_one(scheduler)
        scheduler.requeue_unit(job_id, "gcc:0of1")
        drain(scheduler)
        counters = scheduler.service_metrics()["counters"]
        assert counters["units_dead_lettered"] == 1
        assert counters["dead_letter_requeues"] == 1
        assert counters["units_requeued"] == 1  # the first induced failure
        assert counters["leases_granted"] >= 4


class TestRestartRecovery:
    def test_scheduler_restart_mid_drain_finishes_byte_identical(
        self, tmp_path
    ):
        """Kill the service mid-drain (store survives on disk, leases
        in flight), restart against the same SQLite file, finish the
        drain: the journal must be byte-identical to a serial run."""
        db = str(tmp_path / "service.sqlite")
        spec = make_spec(
            config={**CONFIG_OPTIONS, "workloads": ["gcc", "gzip"]}, shards=2
        )

        store = ResultStore(db)
        clock = FakeClock()
        sched = CampaignScheduler(
            store, str(tmp_path), lease_ttl=60.0, clock=clock
        )
        job_id = sched.submit(spec)["job_id"]
        # Drain one unit fully, then die holding a lease on a second.
        lease = sched.lease("w0")
        unit = lease["unit"]
        sched.complete(
            unit["job_id"], unit["unit_id"], "w0",
            execute_unit(lease["spec"], unit),
        )
        assert sched.lease("w0") is not None  # in flight at the "crash"
        store.close()

        store = ResultStore(db)
        reboot_clock = FakeClock(start=3.0)  # a fresh monotonic epoch
        sched = CampaignScheduler(
            store, str(tmp_path), lease_ttl=60.0, clock=reboot_clock
        )
        assert sched.job_view(job_id)["state"] == "running"
        # The orphaned lease was re-armed: it expires one ttl after boot.
        reboot_clock.advance(61.0)
        drain(sched, worker="w1")
        view = sched.job_view(job_id)
        assert view["state"] == "done"
        assert view["error"] is None

        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign("arch", spec.config, journal_path=serial_path)
        with open(view["journal_path"]) as f, open(serial_path) as g:
            assert f.read() == g.read()
        store.close()


class TestMonotonicLeases:
    """Lease bookkeeping must run on a monotonic clock (regression: it
    ran on wall time, so an NTP step or an operator fixing the date
    could mass-expire every live lease — or immortalise a dead one)."""

    def _scheduler(self, tmp_path, monkeypatch, **kwargs):
        import repro.service.scheduler as scheduler_module

        mono = FakeClock(start=50.0)
        wall = FakeClock(start=1_700_000_000.0)
        monkeypatch.setattr(scheduler_module, "_lease_clock", mono)
        monkeypatch.setattr(scheduler_module, "_wall_clock", wall)
        store = ResultStore(":memory:")
        sched = CampaignScheduler(
            store, str(tmp_path), lease_ttl=60.0, max_attempts=2, **kwargs
        )
        return sched, mono, wall

    def test_backwards_wall_step_does_not_expire_leases(
        self, tmp_path, monkeypatch
    ):
        sched, mono, wall = self._scheduler(tmp_path, monkeypatch)
        sched.submit(make_spec())
        lease = sched.lease("w0")
        assert lease is not None
        wall.advance(-86_400.0)  # the machine's date was a day ahead
        mono.advance(30.0)  # well inside the 60s ttl
        assert sched.requeue_expired() == 0
        unit = lease["unit"]
        assert sched.heartbeat(unit["job_id"], unit["unit_id"], "w0")

    def test_forwards_wall_jump_does_not_expire_leases(
        self, tmp_path, monkeypatch
    ):
        sched, mono, wall = self._scheduler(tmp_path, monkeypatch)
        sched.submit(make_spec())
        assert sched.lease("w0") is not None
        wall.advance(86_400.0)  # NTP catches a slow clock up by a day
        mono.advance(30.0)
        assert sched.requeue_expired() == 0

    def test_leases_expire_by_elapsed_monotonic_time_alone(
        self, tmp_path, monkeypatch
    ):
        sched, mono, wall = self._scheduler(tmp_path, monkeypatch)
        sched.submit(make_spec())
        assert sched.lease("w0") is not None
        wall.advance(-86_400.0)  # irrelevant to expiry either way
        mono.advance(61.0)
        assert sched.requeue_expired() == 1  # genuinely stale: requeued
        assert sched.lease("w1") is not None  # and re-offerable

    def test_display_timestamps_use_the_wall_clock(
        self, tmp_path, monkeypatch
    ):
        sched, mono, wall = self._scheduler(tmp_path, monkeypatch)
        view = sched.submit(make_spec())
        assert view["created"] == 1_700_000_000.0
        drain(sched)
        finished = sched.job_view(view["job_id"])["finished"]
        assert finished == 1_700_000_000.0  # wall clock, not monotonic

    def test_one_injected_test_clock_drives_both(self, tmp_path):
        """The established test idiom — one FakeClock as ``clock`` —
        keeps serving display fields too."""
        store = ResultStore(":memory:")
        clock = FakeClock(start=123.0)
        sched = CampaignScheduler(store, str(tmp_path), clock=clock)
        assert sched.submit(make_spec())["created"] == 123.0

    def test_restart_rearms_persisted_leases(self, tmp_path):
        """Monotonic timestamps are meaningless across a restart (every
        boot has its own epoch), so a new scheduler re-arms persisted
        leases against its own clock: one extra ttl of patience, after
        which a genuinely dead worker's unit is requeued — never an
        immortal lease, never an instant mass expiry."""
        db = str(tmp_path / "service.sqlite")
        store = ResultStore(db)
        first_boot = FakeClock(start=10_000.0)
        sched = CampaignScheduler(
            store, str(tmp_path), lease_ttl=60.0, clock=first_boot
        )
        sched.submit(make_spec())
        lease = sched.lease("w0")
        assert lease is not None
        store.close()

        # New process, fresh monotonic epoch far below the persisted
        # expiry of ~10060 — which, taken literally, would pin the unit
        # to its vanished worker for nearly three hours.
        store = ResultStore(db)
        second_boot = FakeClock(start=5.0)
        sched = CampaignScheduler(
            store, str(tmp_path), lease_ttl=60.0, clock=second_boot
        )
        assert sched.requeue_expired() == 0  # within the grace ttl
        second_boot.advance(61.0)
        assert sched.requeue_expired() == 1  # requeued, not immortal
        assert sched.lease("w1") is not None
        store.close()
