"""The HTTP JSON API: submit, status, results, SSE progress, leases.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no dependency — serving two audiences:

clients (``repro submit`` / ``repro jobs`` / any curl):

- ``GET  /api/health`` — liveness + version.
- ``POST /api/jobs`` — submit a job spec; returns the job view.
- ``GET  /api/jobs?offset=&limit=`` — paginated job listing.
- ``GET  /api/jobs/<id>`` — one job's status view.
- ``POST /api/jobs/<id>/cancel`` — cancel queued/running work.
- ``GET  /api/jobs/<id>/results?offset=&limit=&status=&workload=`` —
  paginated trial entries in serial (workload, point, index) order.
- ``GET  /api/jobs/<id>/metrics`` — the merged telemetry aggregate.
- ``GET  /api/jobs/<id>/events`` — Server-Sent Events progress stream
  (history replay, then live events until the job reaches a terminal
  state).
- ``GET  /api/metrics`` — service-level resilience counters (leases,
  duplicate completes, lease expiries, dead-letter totals).
- ``GET  /api/dead-letter`` / ``GET /api/jobs/<id>/dead-letter`` —
  attempt-exhausted units awaiting operator triage.
- ``POST /api/jobs/<id>/units/<unit>/requeue`` — return a dead-lettered
  unit to the queue with a fresh attempt budget.

workers (``repro worker`` or anything speaking the lease protocol):

- ``POST /api/lease`` — lease the next work unit (``{"unit": null}``
  when idle). With ``{"count": N}`` in the body, lease up to N units in
  one call (one scheduler transaction, one lease clock per batch) and
  answer ``{"leases": [...], "count": n}`` instead.
- ``POST /api/jobs/<id>/units/<unit>/heartbeat`` — extend a lease.
- ``POST /api/jobs/<id>/units/<unit>/complete`` — deliver results,
  either whole or as one of ``{"chunk": {"index": i, "count": n}}``
  bounded chunks (the final chunk carries the unit-level result).
- ``POST /api/jobs/<id>/units/<unit>/fail`` — report an attempt failure.

Every handler delegates to the synchronous
:class:`~repro.service.scheduler.CampaignScheduler`; the server also
runs a sweeper task so leases expire even while no worker is polling.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, unquote, urlsplit

from repro import __version__
from repro.service.scheduler import CampaignScheduler
from repro.service.spec import JobSpec, ServiceError
from repro.service.store import JOB_TERMINAL_STATES

MAX_BODY = 4 * 1024 * 1024
#: Upper bound on units per batched lease — bounds the response body the
#: way chunked completes bound request bodies.
MAX_LEASE_BATCH = 64
_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class CampaignService:
    """The asyncio HTTP front end over a :class:`CampaignScheduler`."""

    def __init__(
        self,
        scheduler: CampaignScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sweep_interval: float = 1.0,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.sweep_interval = sweep_interval
        self._server: asyncio.AbstractServer | None = None
        self._sweeper: asyncio.Task | None = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.get_running_loop().create_task(
            self._sweep_loop()
        )

    async def stop(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval)
            self.scheduler.requeue_expired()

    # -------------------------------------------------------- plumbing

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, query, body = request
                keep_alive = await self._dispatch(
                    writer, method, path, query, body
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY:
            return method, target, {}, b"\x00"  # rejected in dispatch
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return method, unquote(split.path), query, body

    @staticmethod
    def _json_payload(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceError("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # ------------------------------------------------------- dispatch

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict,
        body: bytes,
    ) -> bool:
        """Route one request; returns whether to keep the connection."""
        if body == b"\x00":
            await self._send_json(
                writer, 413, {"error": "request body too large"}
            )
            return False
        segments = [s for s in path.split("/") if s]
        try:
            if segments[:1] != ["api"]:
                await self._send_json(writer, 404, {"error": f"no route for {path}"})
                return True
            route = segments[1:]
            if route == ["health"] and method == "GET":
                await self._send_json(
                    writer, 200, {"ok": True, "version": __version__}
                )
            elif route == ["metrics"] and method == "GET":
                await self._send_json(
                    writer, 200, self.scheduler.service_metrics()
                )
            elif route == ["dead-letter"] and method == "GET":
                await self._send_json(
                    writer, 200, self.scheduler.dead_letter_view()
                )
            elif (
                route[:1] == ["jobs"] and len(route) == 3
                and route[2] == "dead-letter" and method == "GET"
            ):
                await self._send_json(
                    writer, 200, self.scheduler.dead_letter_view(route[1])
                )
            elif route == ["jobs"] and method == "POST":
                spec = JobSpec.from_request(self._json_payload(body))
                view = self.scheduler.submit(spec)
                await self._send_json(writer, 201, view)
            elif route == ["jobs"] and method == "GET":
                offset = _int_arg(query, "offset", 0, minimum=0)
                limit = _int_arg(query, "limit", 50, minimum=1)
                await self._send_json(
                    writer, 200, self.scheduler.jobs_view(offset, limit)
                )
            elif len(route) == 2 and route[0] == "jobs" and method == "GET":
                await self._send_json(
                    writer, 200, self.scheduler.job_view(route[1])
                )
            elif route[:1] == ["jobs"] and len(route) == 3 and route[2] == "cancel" and method == "POST":
                await self._send_json(
                    writer, 200, self.scheduler.cancel(route[1])
                )
            elif route[:1] == ["jobs"] and len(route) == 3 and route[2] == "results" and method == "GET":
                await self._send_json(
                    writer, 200, self._results(route[1], query)
                )
            elif route[:1] == ["jobs"] and len(route) == 3 and route[2] == "metrics" and method == "GET":
                view = self.scheduler.job_view(route[1])
                if "metrics" not in view:
                    await self._send_json(
                        writer, 404,
                        {"error": f"{route[1]} has no metrics yet "
                                  f"(state: {view['state']})"},
                    )
                else:
                    await self._send_json(
                        writer, 200,
                        {"job_id": route[1], "metrics": view["metrics"]},
                    )
            elif route[:1] == ["jobs"] and len(route) == 3 and route[2] == "events" and method == "GET":
                await self._stream_events(writer, route[1])
                return False  # SSE consumes the connection
            elif route == ["lease"] and method == "POST":
                payload = self._json_payload(body)
                worker = str(payload.get("worker") or "anonymous")
                if "count" in payload:
                    count = payload["count"]
                    if not isinstance(count, int) or isinstance(count, bool) \
                            or not 1 <= count <= MAX_LEASE_BATCH:
                        raise ServiceError(
                            f"lease count must be an integer in "
                            f"1..{MAX_LEASE_BATCH}, got {count!r}"
                        )
                    leases = self.scheduler.lease_batch(worker, count)
                    await self._send_json(
                        writer, 200,
                        {"leases": leases, "count": len(leases)},
                    )
                else:
                    lease = self.scheduler.lease(worker)
                    await self._send_json(
                        writer, 200,
                        lease if lease is not None else {"unit": None},
                    )
            elif (
                len(route) == 5 and route[0] == "jobs" and route[2] == "units"
                and method == "POST"
            ):
                await self._unit_report(writer, route[1], route[3], route[4], body)
            else:
                await self._send_json(
                    writer, 405 if route else 404,
                    {"error": f"no route for {method} {path}"},
                )
        except ServiceError as exc:
            status = 404 if str(exc).startswith("no such job") else 400
            await self._send_json(writer, status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — the server must not die
            await self._send_json(
                writer, 500, {"error": f"internal error: {exc!r}"}
            )
        return True

    def _results(self, job_id: str, query: dict) -> dict:
        self.scheduler.job_view(job_id)  # 404 on unknown jobs
        offset = _int_arg(query, "offset", 0, minimum=0)
        limit = _int_arg(query, "limit", 100, minimum=1)
        status = query.get("status")
        workload = query.get("workload")
        entries = self.scheduler.store.trial_entries(
            job_id, offset=offset, limit=limit,
            status=status, workload=workload,
        )
        return {
            "job_id": job_id,
            "total": self.scheduler.store.trial_count(
                job_id, status=status, workload=workload
            ),
            "offset": offset,
            "limit": limit,
            "results": entries,
        }

    async def _unit_report(
        self,
        writer: asyncio.StreamWriter,
        job_id: str,
        unit_id: str,
        action: str,
        body: bytes,
    ) -> None:
        payload = self._json_payload(body)
        worker = str(payload.get("worker") or "anonymous")
        if action == "heartbeat":
            ok = self.scheduler.heartbeat(job_id, unit_id, worker)
            await self._send_json(writer, 200, {"ok": ok})
        elif action == "complete":
            result = payload.get("result")
            if not isinstance(result, dict):
                raise ServiceError("'result' must be a JSON object")
            chunk = payload.get("chunk")
            if chunk is not None:
                if not isinstance(chunk, dict):
                    raise ServiceError("'chunk' must be a JSON object")
                try:
                    index = int(chunk["index"])
                    count = int(chunk["count"])
                except (KeyError, TypeError, ValueError):
                    raise ServiceError(
                        "'chunk' needs integer 'index' and 'count' fields"
                    ) from None
                accepted = self.scheduler.complete_chunk(
                    job_id, unit_id, worker, result, index, count
                )
            else:
                accepted = self.scheduler.complete(
                    job_id, unit_id, worker, result
                )
            await self._send_json(writer, 200, {"accepted": accepted})
        elif action == "fail":
            accepted = self.scheduler.fail(
                job_id, unit_id, worker, str(payload.get("error") or "unknown")
            )
            await self._send_json(writer, 200, {"accepted": accepted})
        elif action == "requeue":
            view = self.scheduler.requeue_unit(job_id, unit_id)
            await self._send_json(writer, 200, view)
        else:
            raise ServiceError(f"unknown unit action {action!r}")

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        view = self.scheduler.job_view(job_id)  # raises for unknown jobs
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        queue: asyncio.Queue = asyncio.Queue()
        listener = queue.put_nowait
        self.scheduler.add_listener(job_id, listener)
        try:
            for event in self.scheduler.events(job_id):
                await self._send_event(writer, event)
            if view["state"] in JOB_TERMINAL_STATES:
                return
            while True:
                try:
                    event = await asyncio.wait_for(queue.get(), timeout=15.0)
                except asyncio.TimeoutError:
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    continue
                await self._send_event(writer, event)
                if event.get("event") in ("done", "cancelled"):
                    return
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            self.scheduler.remove_listener(job_id, listener)

    @staticmethod
    async def _send_event(writer: asyncio.StreamWriter, event: dict) -> None:
        data = json.dumps(event)
        writer.write(
            f"event: {event.get('event', 'message')}\ndata: {data}\n\n".encode()
        )
        await writer.drain()


def _int_arg(query: dict, name: str, default: int, *, minimum: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ServiceError(f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise ServiceError(f"{name} must be >= {minimum}, got {value}")
    return value
