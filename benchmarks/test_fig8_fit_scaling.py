"""Figure 8: silent-data-corruption FIT rates under device scaling.

Paper (Section 5.3): raw FIT of 0.001/bit; designs from ~46k bits (the
model) up to 25.6M bits; a 1000-year-MTBF goal line at 115 FIT; and
"the lhf+ReStore configuration yields a MTBF comparable to a design 1/7th
the size".
"""

from repro.reliability import (
    FIGURE8_DESIGN_SIZES,
    MTBF_GOAL_FIT,
    PAPER_FAILURE_FRACTIONS,
    ConfigFailureFractions,
    equivalent_design_factor,
    fit_rate,
    fit_scaling_table,
    max_bits_within_goal,
)
from repro.restore.hardened import ProtectionMap
from repro.util.tables import format_table

from .conftest import emit, run_shared_uarch_campaign


def test_fig8_fit_vs_design_size(benchmark):
    campaign = run_shared_uarch_campaign()
    pmap = ProtectionMap()

    def build_fractions():
        return ConfigFailureFractions(
            baseline=campaign.baseline_failure_estimate().proportion,
            restore=campaign.failure_estimate(
                100, require_confident_cfv=True
            ).proportion,
            lhf=campaign.failure_estimate(
                0, require_confident_cfv=True, protection=pmap
            ).proportion,
            lhf_restore=campaign.failure_estimate(
                100, require_confident_cfv=True, protection=pmap
            ).proportion,
        )

    measured = benchmark.pedantic(build_fractions, rounds=1, iterations=1)

    goals = format_table(
        ["configuration", "max bits within 115-FIT goal (measured)"],
        [
            [name, f"{max_bits_within_goal(measured.of(name)):,.0f}"]
            for name in ("baseline", "ReStore", "lhf", "lhf+ReStore")
        ],
        title="Design-size budget at the 1000-year-MTBF goal",
    )
    factor_measured = equivalent_design_factor(measured)
    trials = len(campaign.trials)
    if factor_measured == float("inf"):
        # Rule-of-three lower bound when no residual failures were sampled.
        factor_text = (
            f">{measured.of('baseline') / (3 / trials):.0f}x (0/{trials})"
        )
    else:
        factor_text = f"{factor_measured:.1f}x"
    factor_paper = equivalent_design_factor(PAPER_FAILURE_FRACTIONS)
    emit(
        "fig8_fit_scaling",
        "\n\n".join(
            [
                fit_scaling_table(
                    PAPER_FAILURE_FRACTIONS
                ).replace("Figure 8:", "Figure 8 (paper fractions):"),
                fit_scaling_table(measured).replace(
                    "Figure 8:", "Figure 8 (measured fractions):"
                ),
                goals,
                (
                    f"equivalent-design factor (lhf+ReStore vs baseline): "
                    f"paper {factor_paper:.1f}x, measured {factor_text}"
                ),
            ]
        ),
    )

    # Structural checks on the scaling model.
    assert fit_rate(46_000, measured.of("baseline")) < MTBF_GOAL_FIT
    assert fit_rate(FIGURE8_DESIGN_SIZES[-1], measured.of("baseline")) > MTBF_GOAL_FIT
    # Protection ordering: every layer extends the design budget.
    budgets = [
        max_bits_within_goal(measured.of(name))
        for name in ("baseline", "ReStore", "lhf+ReStore")
    ]
    assert budgets == sorted(budgets)
    # The combined configuration buys a multiple of the baseline design size.
    assert factor_measured > 2.5
