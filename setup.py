"""Setuptools shim so legacy installs work in offline environments."""

from setuptools import setup

setup()
