"""Human-readable pipeline state dumps.

Debugging aid for users extending the pipeline or investigating a fault
trial: renders the machine's occupancy and in-flight instructions as text.
"""

from __future__ import annotations

from repro.isa.disassembler import disassemble
from repro.uarch.pipeline import Pipeline
from repro.util.tables import format_table


def dump_status(pipeline: Pipeline) -> str:
    """One-paragraph machine status."""
    state = (
        "halted" if pipeline.halted
        else "stopped" if pipeline.stopped
        else "running"
    )
    lines = [
        f"cycle {pipeline.cycle_count}, {pipeline.retired_count} retired "
        f"({pipeline.total_retired} total), state: {state}",
        f"fetch pc 0x{pipeline._fetch_pc[0]:x}, "
        f"rob {pipeline.rob.count}/{pipeline.rob.size}, "
        f"free pregs {pipeline.freelist.count}",
        f"branches {pipeline.branch_count} "
        f"(mispredicted {pipeline.mispredict_count}, "
        f"high-confidence {pipeline.hc_mispredict_count})",
    ]
    if pipeline.exception is not None:
        lines.append(
            f"exception: {pipeline.exception_name()} "
            f"at 0x{pipeline.exception[1]:x}"
        )
    return "\n".join(lines)


def dump_rob(pipeline: Pipeline, limit: int = 16) -> str:
    """The oldest in-flight instructions, head first."""
    rob = pipeline.rob
    rows = []
    index = rob.head
    for _ in range(min(limit, rob.count)):
        if not rob.valid[index]:
            break
        flags = "".join(
            letter
            for letter, value in (
                ("D", rob.done[index]),
                ("B", rob.is_branch[index]),
                ("L", rob.is_load[index]),
                ("S", rob.is_store[index]),
                ("X", rob.exc[index]),
                ("H", rob.is_halt[index]),
            )
            if value
        )
        try:
            text = disassemble(pipeline.memory.read(rob.pc[index], 4))
        except Exception:
            text = "<unreadable>"
        rows.append([index, f"0x{rob.pc[index]:x}", flags or "-", text])
        index = (index + 1) % rob.size
    return format_table(
        ["rob", "pc", "flags", "instruction"],
        rows,
        title=f"ROB (oldest {len(rows)} of {rob.count} in flight)",
    )


def dump_scheduler(pipeline: Pipeline) -> str:
    """Occupied scheduler slots with readiness."""
    sched = pipeline.sched
    rows = []
    for slot in range(sched.size):
        if not sched.valid[slot]:
            continue
        readiness = (
            f"{sched.src1_ready[slot]}{sched.src2_ready[slot]}"
            f"{sched.src3_ready[slot]}"
        )
        rows.append(
            [
                slot,
                sched.rob_idx[slot],
                "issued" if sched.issued[slot] else "waiting",
                readiness,
                disassemble(sched.word[slot]),
            ]
        )
    return format_table(
        ["slot", "rob", "state", "rdy", "instruction"],
        rows,
        title=f"Scheduler ({len(rows)}/{sched.size} occupied)",
    )


def dump_state_summary(pipeline: Pipeline) -> str:
    """Registered state bits per structure (the injection surface)."""
    rows = sorted(
        pipeline.registry.bits_by_structure().items(),
        key=lambda item: -item[1],
    )
    total = pipeline.registry.total_bits()
    table_rows = [
        [name, bits, f"{bits / total:.1%}"] for name, bits in rows
    ]
    table_rows.append(["TOTAL", total, "100.0%"])
    return format_table(
        ["structure", "bits", "share"],
        table_rows,
        title="Injectable state by structure",
    )


def dump_all(pipeline: Pipeline) -> str:
    return "\n\n".join(
        [
            dump_status(pipeline),
            dump_rob(pipeline),
            dump_scheduler(pipeline),
            dump_state_summary(pipeline),
        ]
    )
