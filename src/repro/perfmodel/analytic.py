"""Closed-form performance model for Figure 7.

The paper evaluates false-positive cost "on a timing model configured to
resemble our processor model". The analytic model here captures the same
mechanics:

- High-confidence misprediction symptoms arrive at a measured rate ``f``
  per retired instruction (error-free execution).
- An immediate rollback restores the *older* of two checkpoints, so its
  mean rollback distance is 1.5 checkpoint intervals; the delayed policy
  waits for the interval to complete and re-executes the polluted interval
  exactly once from its starting checkpoint (distance 1.0 interval, at most
  one rollback per interval regardless of how many symptoms fired in it).
- Re-executed instructions run faster than first-time execution because
  the event log supplies perfect branch prediction; ``reexec_speedup``
  scales their cost.

Slowdown = 1 + (re-executed instructions per retired instruction) x
(relative cost of a re-executed instruction), plus a fixed restore latency
per rollback.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AnalyticInputs:
    """Measured machine parameters feeding the model."""

    hc_mispredict_rate: float  # symptoms per retired instruction, error-free
    base_ipc: float = 1.0
    reexec_speedup: float = 1.3  # event-log-assisted IPC gain on re-execution
    restore_latency_cycles: float = 4.0  # checkpoint restoration + refill


class AnalyticPerfModel:
    """Evaluate relative performance for an interval and policy."""

    def __init__(self, inputs: AnalyticInputs):
        self.inputs = inputs

    def _reexec_cost_cycles(self, distance_insns: float) -> float:
        """Cycles to re-execute ``distance_insns`` with event-log help."""
        ipc = self.inputs.base_ipc * self.inputs.reexec_speedup
        return distance_insns / ipc + self.inputs.restore_latency_cycles

    def speedup(self, interval: int, policy: str) -> float:
        """Relative performance vs a machine without rollbacks."""
        f = self.inputs.hc_mispredict_rate
        if f <= 0:
            return 1.0
        base_cycles_per_insn = 1.0 / self.inputs.base_ipc
        if policy == "imm":
            # Every symptom triggers a rollback; the mean distance back to
            # the older checkpoint is 1.5 intervals.
            rollbacks_per_insn = f
            distance = 1.5 * interval
        elif policy == "delayed":
            # At most one rollback per interval: the probability an interval
            # contains at least one symptom is 1 - (1 - f)^n.
            p_interval = 1.0 - (1.0 - f) ** interval
            rollbacks_per_insn = p_interval / interval
            distance = 1.0 * interval
        else:
            raise ValueError(f"unknown policy {policy!r}")
        extra_cycles_per_insn = rollbacks_per_insn * self._reexec_cost_cycles(distance)
        return base_cycles_per_insn / (base_cycles_per_insn + extra_cycles_per_insn)

    def overhead_percent(self, interval: int, policy: str) -> float:
        return (1.0 - self.speedup(interval, policy)) * 100.0
