"""Instruction word -> assembly text, mainly for debugging and traces."""

from __future__ import annotations

from repro.isa import opcodes as op
from repro.isa.encoding import try_decode_word
from repro.isa.instructions import DecodedInst
from repro.isa.program import Program
from repro.isa.registers import register_name


def _signed_disp(inst: DecodedInst) -> int:
    disp = inst.disp
    if disp >= 1 << 63:
        disp -= 1 << 64
    return disp


def disassemble(word: int, pc: int | None = None) -> str:
    """Disassemble one word; illegal encodings render as ``.illegal``."""
    inst = try_decode_word(word)
    if inst is None:
        return f".illegal 0x{word:08x}"
    return disassemble_inst(inst, pc)


def disassemble_inst(inst: DecodedInst, pc: int | None = None) -> str:
    """Render a decoded instruction."""
    mnemonic = inst.mnemonic
    if inst.is_halt:
        return "halt"
    if inst.format is op.Format.OPERATE:
        second = str(inst.literal) if inst.is_literal else register_name(inst.rb)
        return (
            f"{mnemonic} {register_name(inst.ra)}, {second}, "
            f"{register_name(inst.rc)}"
        )
    if inst.format is op.Format.MEMORY:
        return (
            f"{mnemonic} {register_name(inst.ra)}, "
            f"{_signed_disp(inst)}({register_name(inst.rb)})"
        )
    if inst.format is op.Format.JUMP:
        return f"{mnemonic} {register_name(inst.ra)}, ({register_name(inst.rb)})"
    # Branch format.
    if pc is not None:
        target = inst.branch_target(pc)
        suffix = f"0x{target:x}"
    else:
        suffix = f".{_signed_disp(inst):+d} words"
    if inst.opcode in (op.OP_BR, op.OP_BSR):
        return f"{mnemonic} {register_name(inst.ra)}, {suffix}"
    return f"{mnemonic} {register_name(inst.ra)}, {suffix}"


def disassemble_program(program: Program) -> str:
    """Full text-segment listing with addresses and symbol annotations."""
    labels_by_address: dict[int, list[str]] = {}
    for name, address in program.symbols.items():
        labels_by_address.setdefault(address, []).append(name)
    lines = []
    for index, word in enumerate(program.text_words):
        address = program.text_base + 4 * index
        for label in sorted(labels_by_address.get(address, [])):
            lines.append(f"{label}:")
        lines.append(f"  0x{address:08x}:  {disassemble(word, pc=address)}")
    return "\n".join(lines)
