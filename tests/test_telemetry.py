"""Telemetry: event schema, sinks, derived metrics, campaign report."""

import json

import pytest

from repro.faults.classify import ArchTrialResult, UarchTrialResult
from repro.restore import ReStoreController
from repro.telemetry import (
    EVENT_KINDS,
    CampaignMetrics,
    Histogram,
    JsonlTraceSink,
    RingBufferTraceSink,
    TelemetryError,
    TraceSink,
    aggregate_campaign,
    make_event,
    render_campaign_report,
    validate_event,
    validate_trace,
)
from repro.uarch import load_pipeline
from repro.workloads import build_workload


class TestEventSchema:
    def test_make_event_is_valid(self):
        event = make_event("symptom", cycle=10, position=5,
                           symptom="exception", pc=0x40)
        validate_event(event)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError, match="unknown event kind"):
            validate_event({"kind": "nope", "cycle": 0, "position": 0})

    def test_missing_required_field_rejected(self):
        event = make_event("rollback_begin", cycle=1, position=2,
                           symptom="exception", from_position=2,
                           to_position=0, distance=2)
        validate_event(event)
        del event["distance"]
        with pytest.raises(TelemetryError, match="missing field 'distance'"):
            validate_event(event)

    def test_non_integer_int_field_rejected(self):
        event = make_event("symptom", cycle="10", position=5,
                           symptom="exception", pc=0)
        with pytest.raises(TelemetryError, match="must be an integer"):
            validate_event(event)

    def test_non_object_rejected(self):
        with pytest.raises(TelemetryError, match="not a JSON object"):
            validate_event([1, 2, 3])

    def test_every_kind_has_required_fields(self):
        for kind, fields in EVENT_KINDS.items():
            assert isinstance(fields, tuple), kind


class TestJsonlSink:
    def test_round_trip_and_validate(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(path) as sink:
            sink.emit(make_event("trial_end", cycle=1, position=2, status="ok"))
            sink.emit(make_event("symptom", cycle=3, position=4,
                                 symptom="deadlock", pc=0))
            assert sink.emitted == 2
        assert validate_trace(path) == 2
        lines = [json.loads(line) for line in open(path)]
        assert lines[0]["status"] == "ok"

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"kind": "trial_end"})

    def test_invalid_trace_line_reported_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trial_end", "cycle": 0, "position": 0}\n')
        with pytest.raises(TelemetryError, match="bad.jsonl:1"):
            validate_trace(str(path))

    def test_satisfies_protocol(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        assert isinstance(sink, TraceSink)
        sink.close()


class TestRingBufferSink:
    def test_keeps_newest_and_counts_dropped(self):
        sink = RingBufferTraceSink(capacity=3)
        for index in range(5):
            sink.emit(make_event("trial_end", cycle=index, position=0,
                                 status="ok"))
        assert sink.emitted == 5
        assert sink.dropped == 2
        assert [event["cycle"] for event in sink.events()] == [2, 3, 4]

    def test_kind_filter(self):
        sink = RingBufferTraceSink()
        sink.emit(make_event("trial_end", cycle=0, position=0, status="ok"))
        sink.emit(make_event("symptom", cycle=1, position=0,
                             symptom="cfv", pc=4))
        assert len(sink.events("symptom")) == 1
        assert isinstance(sink, TraceSink)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferTraceSink(capacity=0)


class TestHistogram:
    def test_bucketing_and_overflow(self):
        histogram = Histogram((10, 20))
        for value in (1, 10, 11, 21, 100):
            histogram.add(value)
        assert histogram.counts == [2, 1, 2]
        assert histogram.total == 5

    def test_mean_is_exact_not_bucketed(self):
        histogram = Histogram((10, 20))
        histogram.add(3)
        histogram.add(17)
        assert histogram.mean == 10.0

    def test_quantile(self):
        histogram = Histogram((10, 20, 30))
        for value in (5, 5, 15, 25):
            histogram.add(value)
        assert histogram.quantile(0.5) == 10
        assert histogram.quantile(1.0) == 30

    def test_merge_and_dict_round_trip(self):
        left, right = Histogram((10, 20)), Histogram((10, 20))
        left.add(5)
        right.add(15)
        left.merge(right)
        restored = Histogram.from_dict(left.as_dict())
        assert restored.counts == left.counts
        assert restored.mean == left.mean

    def test_merge_rejects_different_edges(self):
        with pytest.raises(ValueError):
            Histogram((10,)).merge(Histogram((20,)))

    def test_edges_validated(self):
        with pytest.raises(ValueError):
            Histogram((20, 10))


def uarch_record(**kwargs):
    return UarchTrialResult(
        workload="gcc", inject_cycle=500, target="rob", state_class="ctrl",
        bit=0, **kwargs,
    )


class TestAggregation:
    def test_coverage_latency_and_benign_rate(self):
        records = [
            uarch_record(inject_retired=430, exception_latency=40,
                         arch_corrupt=True),
            uarch_record(inject_retired=410, cfv_latency=8,
                         cfv_detected_latency=12),
            uarch_record(cfv_detected_latency=77),  # benign firing
            uarch_record(),  # masked, quiet
        ]
        metrics = aggregate_campaign("uarch", records)
        assert metrics.trials == 4 and metrics.failing == 2
        exception = metrics.detectors["exception"]
        assert exception.coverage == 0.5
        assert exception.benign_rate == 0.0
        assert exception.latency.total == 1 and exception.latency.mean == 40.0
        hc = metrics.detectors["hc_mispredict"]
        assert hc.fired_on_failing == 1 and hc.fired_on_benign == 1
        assert hc.benign_rate == 0.5

    def test_rollback_distance_is_interval_plus_position_mod_interval(self):
        # Symptom at position 430 + 40 = 470: with interval 100 the older
        # checkpoint sits at 400, distance 100 + 470 % 100 = 170.
        records = [uarch_record(inject_retired=430, exception_latency=40,
                                arch_corrupt=True)]
        metrics = aggregate_campaign("uarch", records, intervals=(100,))
        histogram = metrics.rollback_distance[100]
        assert histogram.total == 1
        assert histogram.mean == 170.0

    def test_symptom_beyond_interval_does_not_roll_back(self):
        records = [uarch_record(inject_retired=0, exception_latency=400,
                                arch_corrupt=True)]
        metrics = aggregate_campaign("uarch", records, intervals=(100,))
        assert metrics.rollback_distance[100].total == 0

    def test_arch_records_use_inject_step(self):
        records = [
            ArchTrialResult(workload="gcc", inject_step=55, bit=3,
                            exception_latency=10, failing=True),
        ]
        metrics = aggregate_campaign("arch", records, intervals=(50,))
        assert metrics.detectors["exception"].coverage == 1.0
        # Symptom at 55 + 10 = 65: distance 50 + 65 % 50 = 65.
        assert metrics.rollback_distance[50].mean == 65.0

    def test_metrics_journal_entry_round_trip(self):
        records = [uarch_record(inject_retired=10, cfv_latency=5,
                                cfv_detected_latency=5)]
        metrics = aggregate_campaign("uarch", records)
        entry = json.loads(json.dumps(metrics.to_entry()))
        assert entry["kind"] == "telemetry"
        restored = CampaignMetrics.from_entry(entry)
        assert restored.trials == metrics.trials
        assert restored.detectors["cfv"].fired_on_failing == 1
        assert (restored.rollback_distance[100].counts
                == metrics.rollback_distance[100].counts)


class TestControllerTracing:
    def test_fault_free_run_emits_schema_valid_events(self):
        bundle = build_workload("bzip2")
        pipeline = load_pipeline(bundle.program)
        sink = RingBufferTraceSink(capacity=200_000)
        controller = ReStoreController(pipeline, interval=50, telemetry=sink)
        pipeline.run(2_000_000)
        assert pipeline.halted and bundle.check(pipeline.memory) == []
        assert sink.dropped == 0
        for event in sink.events():
            validate_event(event)
        kinds = {event["kind"] for event in sink.events()}
        assert "checkpoint_create" in kinds
        assert "checkpoint_release" in kinds
        # bzip2 produces HC-mispredict rollbacks when fault-free.
        assert len(sink.events("rollback_begin")) == controller.stats.rollbacks
        assert len(sink.events("rollback_end")) == controller.stats.rollbacks
        verdicts = [e["verdict"] for e in sink.events("rollback_end")]
        assert verdicts.count("false_positive") == controller.stats.false_positives

    def test_rollback_begin_carries_distance(self):
        bundle = build_workload("bzip2")
        pipeline = load_pipeline(bundle.program)
        sink = RingBufferTraceSink(capacity=200_000)
        controller = ReStoreController(pipeline, interval=50, telemetry=sink)
        pipeline.run(2_000_000)
        begins = sink.events("rollback_begin")
        assert begins, "expected at least one rollback"
        for event in begins:
            assert event["distance"] == (
                event["from_position"] - event["to_position"]
            )
        total = sum(event["distance"] for event in begins)
        assert total == controller.stats.rollback_distance_total

    def test_disabled_telemetry_attribute_defaults_to_none(self):
        bundle = build_workload("gcc")
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(pipeline, interval=100)
        assert pipeline.telemetry is None
        assert controller.telemetry is None
        assert controller.checkpoints.telemetry is None


class TestCampaignReport:
    def _journal(self, tmp_path):
        from repro.faults import UarchCampaignConfig
        from repro.campaign import run_campaign

        path = str(tmp_path / "campaign.jsonl")
        config = UarchCampaignConfig(
            trials_per_workload=8, injection_points=4,
            workloads=("gcc",), seed=7,
        )
        run_campaign("uarch", config, journal_path=path)
        return path

    def test_report_renders_metrics_and_histograms(self, tmp_path):
        path = self._journal(tmp_path)
        text = render_campaign_report(path)
        assert "Section 3.3 symptom metrics" in text
        assert "hc_mispredict" in text and "deadlock" in text
        assert "error-to-symptom latency" in text
        assert "rollback distance" in text
        assert "95% margin" in text

    def test_journal_carries_telemetry_aggregate(self, tmp_path):
        path = self._journal(tmp_path)
        entries = [json.loads(line) for line in open(path)]
        aggregates = [e for e in entries if e.get("kind") == "telemetry"]
        assert len(aggregates) == 1
        restored = CampaignMetrics.from_entry(aggregates[0])
        ok_trials = sum(1 for e in entries
                        if e.get("kind") == "trial" and e["status"] == "ok")
        assert restored.trials == ok_trials

    def test_report_requires_manifest(self, tmp_path):
        from repro.util.journal import JournalError

        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "trial"}\n')
        with pytest.raises(JournalError, match="missing manifest"):
            render_campaign_report(str(path))


class TestMetricsMerge:
    """Per-shard aggregates merge exactly into the serial aggregate."""

    def _records(self, seed, n=12):
        from repro.faults import ArchTrialResult

        records = []
        for i in range(n):
            records.append(ArchTrialResult(
                workload="gcc", inject_step=10 + i, bit=i % 8,
                exception_latency=(i * seed) % 40 if i % 3 else None,
                cfv_latency=(i * 7) % 25 if i % 4 else None,
                failing=bool(i % 2),
            ))
        return records

    def test_merged_partition_equals_whole_aggregate(self):
        from repro.telemetry import aggregate_campaign, merge_campaign_metrics

        records = self._records(seed=3)
        whole = aggregate_campaign("arch", records)
        parts = [
            aggregate_campaign("arch", records[0::3]),
            aggregate_campaign("arch", records[1::3]),
            aggregate_campaign("arch", records[2::3]),
        ]
        merged = merge_campaign_metrics(parts)
        assert merged.to_entry() == whole.to_entry()
        # The inputs were not mutated by the merge.
        assert parts[0].trials == len(records[0::3])

    def test_merge_rejects_level_mismatch(self):
        from repro.telemetry import aggregate_campaign, merge_campaign_metrics

        arch = aggregate_campaign("arch", [])
        uarch = aggregate_campaign("uarch", [])
        with pytest.raises(ValueError, match="cannot merge"):
            merge_campaign_metrics([arch, uarch])

    def test_merge_rejects_empty_collection(self):
        from repro.telemetry import merge_campaign_metrics

        with pytest.raises(ValueError, match="empty"):
            merge_campaign_metrics([])

    def test_detector_merge_rejects_symptom_mismatch(self):
        from repro.telemetry.metrics import DetectorMetrics

        with pytest.raises(ValueError, match="cannot merge detector"):
            DetectorMetrics("cfv").merge(DetectorMetrics("exception"))

    def test_histogram_merge_rejects_different_edges(self):
        from repro.telemetry.metrics import Histogram

        with pytest.raises(ValueError, match="different edges"):
            Histogram((1, 2)).merge(Histogram((1, 3)))


class TestExtraSymptomAggregation:
    """Opt-in memory-hierarchy detector columns in the aggregate."""

    def test_default_aggregate_has_no_extra_columns(self):
        metrics = aggregate_campaign("uarch", [uarch_record()])
        assert set(metrics.detectors) == {
            "deadlock", "exception", "cfv", "hc_mispredict"
        }

    def test_extra_symptoms_tally_coverage_and_benign_rate(self):
        records = [
            uarch_record(inject_retired=100, exception_latency=40,
                         arch_corrupt=True, miss_spike_latency=12),
            uarch_record(spurious_memop_latency=3),  # benign firing
            uarch_record(),
        ]
        metrics = aggregate_campaign(
            "uarch", records,
            extra_symptoms=("miss_spike", "stall_outlier", "spurious_memop"),
        )
        spike = metrics.detectors["miss_spike"]
        assert spike.fired_on_failing == 1 and spike.failing_trials == 1
        assert spike.latency.total == 1 and spike.latency.mean == 12.0
        spurious = metrics.detectors["spurious_memop"]
        assert spurious.fired_on_benign == 1
        assert spurious.benign_rate == 0.5
        assert metrics.detectors["stall_outlier"].latency.total == 0

    def test_extra_symptom_can_shorten_rollback_distance(self):
        """A detector firing before any stock symptom becomes the trial's
        earliest rollback trigger."""
        record = uarch_record(inject_retired=430, exception_latency=40,
                              arch_corrupt=True, miss_spike_latency=10)
        plain = aggregate_campaign("uarch", [record], intervals=(100,))
        extra = aggregate_campaign("uarch", [record], intervals=(100,),
                                   extra_symptoms=("miss_spike",))
        # Stock: symptom at 470 -> distance 170. With the spike detector
        # the earliest symptom is at 440 -> distance 100 + 440 % 100 = 140.
        assert plain.rollback_distance[100].mean == 170.0
        assert extra.rollback_distance[100].mean == 140.0

    def test_records_without_the_fields_report_none(self):
        from repro.telemetry.metrics import trial_symptom_latencies

        latencies = trial_symptom_latencies(
            "uarch", uarch_record(), extra_symptoms=("miss_spike",)
        )
        assert latencies["miss_spike"] is None

    def test_extra_metrics_merge_and_round_trip(self):
        records = [uarch_record(arch_corrupt=True, stall_outlier_latency=7)]
        metrics = aggregate_campaign("uarch", records,
                                     extra_symptoms=("stall_outlier",))
        entry = json.loads(json.dumps(metrics.to_entry()))
        restored = CampaignMetrics.from_entry(entry)
        assert restored.detectors["stall_outlier"].fired_on_failing == 1
        restored.merge(metrics)
        assert restored.detectors["stall_outlier"].fired_on_failing == 2


class TestDetectorRecordJournaling:
    """Trial entries omit the detector latency fields while None."""

    def _outcome(self, record):
        from repro.campaign.outcomes import TrialOutcome

        return TrialOutcome(
            key="gcc:500:0", workload="gcc", point=500, index=0,
            status="ok", record=record,
        )

    def test_none_latencies_are_omitted_from_the_entry(self):
        entry = self._outcome(uarch_record()).to_entry()
        for name in ("miss_spike_latency", "stall_outlier_latency",
                     "spurious_memop_latency"):
            assert name not in entry["record"]

    def test_set_latencies_are_journaled(self):
        entry = self._outcome(
            uarch_record(miss_spike_latency=9)
        ).to_entry()
        assert entry["record"]["miss_spike_latency"] == 9
        assert "stall_outlier_latency" not in entry["record"]

    def test_omitted_fields_round_trip_as_none(self):
        from repro.campaign.outcomes import TrialOutcome

        entry = json.loads(json.dumps(self._outcome(uarch_record()).to_entry()))
        restored = TrialOutcome.from_entry(entry, "uarch")
        assert restored.record.miss_spike_latency is None
        assert restored.record.spurious_memop_latency is None


class TestMemhierCampaignReport:
    def test_report_includes_configured_detector_columns(self, tmp_path):
        from repro.faults import UarchCampaignConfig
        from repro.campaign import run_campaign

        path = str(tmp_path / "memhier.jsonl")
        config = UarchCampaignConfig(
            trials_per_workload=6, injection_points=3, window_cycles=800,
            workloads=("gcc",), seed=7, memhier_targets=True,
            detectors=("miss_spike", "stall_outlier", "spurious_memop"),
        )
        run_campaign("uarch", config, journal_path=path)
        text = render_campaign_report(path)
        assert "miss_spike" in text
        assert "stall_outlier" in text
        assert "spurious_memop" in text
