"""The reproduction's Alpha-like 64-bit RISC instruction set.

The paper's experiments run Alpha ISA binaries; we define a faithful subset
with Alpha's instruction formats (operate, operate-literal, memory, branch),
a 32-register integer file with R31 hardwired to zero, and the integer,
memory, and control-flow operations the paper's workloads exercise. Floating
point is omitted, exactly as in the paper's processor model ("due to time
considerations, floating point instructions ... were not implemented").

Public surface:

- :mod:`repro.isa.registers` — register file constants and names.
- :mod:`repro.isa.opcodes` — opcode/function-code tables and mnemonics.
- :mod:`repro.isa.encoding` — encode/decode of 32-bit instruction words.
- :mod:`repro.isa.instructions` — :class:`DecodedInst` and classification.
- :mod:`repro.isa.semantics` — pure operand->result semantics shared by the
  architectural simulator and the pipeline model's functional units.
- :mod:`repro.isa.assembler` — two-pass assembler producing a
  :class:`~repro.isa.program.Program`.
- :mod:`repro.isa.disassembler` — word -> text.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.disassembler import disassemble, disassemble_program
from repro.isa.encoding import IllegalInstructionError, decode_word
from repro.isa.instructions import DecodedInst, InstClass
from repro.isa.program import Program, Segment
from repro.isa.registers import (
    NUM_REGS,
    REG_GP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    register_name,
    register_number,
)

__all__ = [
    "AssemblerError",
    "DecodedInst",
    "IllegalInstructionError",
    "InstClass",
    "NUM_REGS",
    "Program",
    "REG_GP",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "Segment",
    "assemble",
    "decode_word",
    "disassemble",
    "disassemble_program",
    "register_name",
    "register_number",
]
