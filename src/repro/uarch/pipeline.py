"""The cycle-level out-of-order pipeline.

Execution semantics come from :mod:`repro.isa.semantics` — the same code
the architectural simulator uses — so the pipeline's retired instruction
stream must match the architectural simulator exactly on fault-free runs
(the test suite checks this on every workload).

Stage processing order within a cycle: pending events (register-read
completion, writeback, load completion), then retire, issue, rename (which
includes decode), and fetch. The watchdog ticks last.

Design rule for fault-injection fidelity: pipeline logic always reads
structure fields at the moment the hardware would read the corresponding
latch — operands at register read, store data at store-queue writeback,
retired values at retirement — so an injected bit flip is visible for
exactly the window in which that state is live.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.exceptions import AccessViolation
from repro.arch.memory import PageProtection, SparseMemory
from repro.isa import opcodes as op
from repro.isa import semantics
from repro.isa.encoding import try_decode_word
from repro.isa.instructions import DecodedInst, InstClass, PredecodedInst
from repro.isa.program import STACK_BYTES, STACK_TOP, Program
from repro.isa.registers import REG_GP, REG_SP
from repro.uarch.branch_predictor import (
    BranchTargetBuffer,
    CombiningPredictor,
    ReturnAddressStack,
)
from repro.uarch.caches import MshrFile, SetAssociativeCache, Tlb
from repro.uarch.confidence import JrsConfidenceEstimator
from repro.uarch.config import PipelineConfig
from repro.uarch.latches import StateRegistry
from repro.uarch.memdep import MemoryDependencePredictor
from repro.uarch.structures import (
    EXC_ACCESS,
    EXC_ALIGN,
    EXC_ARITH,
    EXC_ILLEGAL,
    EXC_NAMES,
    EXC_NONE,
    FetchQueue,
    FreeList,
    LoadQueue,
    PhysicalRegisterFile,
    RegisterAliasTable,
    ReorderBuffer,
    Scheduler,
    StoreBuffer,
    StoreQueue,
)
from repro.util.bitops import MASK64

# Instruction classes sharing the ALU functional units at issue.
_ALU_CLASSES = (InstClass.ALU, InstClass.MULTIPLY)


@dataclass(frozen=True, slots=True)
class RetiredInst:
    """One retired instruction, as recorded for golden/faulty comparison."""

    pc: int
    dest: int  # architectural register written, or -1
    value: int
    store_addr: int  # -1 when not a store
    store_data: int
    store_size: int
    exc: int  # EXC_* code; nonzero only on the final, faulting record
    is_cond: bool = False
    taken: bool = False
    next_pc: int = 0  # address of the next instruction in program order
    is_load: bool = False
    load_addr: int = -1


@dataclass(frozen=True, slots=True)
class SymptomEvent:
    """A detector-visible event (Section 3's symptom candidates)."""

    kind: str  # exception | mispredict | hc_mispredict | deadlock | *_miss
    cycle: int
    retired: int  # instructions retired when the event fired
    pc: int


class Pipeline:
    """One pipeline instance bound to a memory image."""

    def __init__(
        self,
        memory: SparseMemory,
        entry_pc: int,
        config: PipelineConfig | None = None,
        collect_retired: bool = False,
        record_cache_symptoms: bool = False,
        fast: bool = True,
        memhier_targets: bool = False,
        record_memhier_symptoms: bool = False,
    ):
        self.config = config or PipelineConfig()
        self.memory = memory
        # fast=False selects the unoptimised reference path — per-access
        # property decode, full-scan wakeup, unconditional retire records —
        # kept as the differential-testing anchor for the fast path.
        self.fast = fast
        self.registry = StateRegistry()
        cfg = self.config

        # Storage structures (registered, injectable).
        self.fetchq = FetchQueue(cfg, self.registry)
        self.prf = PhysicalRegisterFile(cfg, self.registry)
        self.spec_rat = RegisterAliasTable("spec_rat", cfg, self.registry)
        self.arch_rat = RegisterAliasTable("arch_rat", cfg, self.registry)
        self.freelist = FreeList(cfg, self.registry)
        self.sched = Scheduler(cfg, self.registry)
        self.rob = ReorderBuffer(cfg, self.registry)
        self.ldq = LoadQueue(cfg, self.registry)
        self.stq = StoreQueue(cfg, self.registry)
        self.storebuf = StoreBuffer(cfg, self.registry)
        self.sched.use_wakeup_index = fast
        self._fetch_pc = [entry_pc]
        self.registry.register_list("fetch", "data", "fetch.pc", self._fetch_pc, 64)

        # Predictors and caches (excluded from injection by default; the
        # caches and MSHR file register as "mem"-class state when the
        # memory-hierarchy fault surface is enabled).
        self.predictor = CombiningPredictor(cfg)
        self.btb = BranchTargetBuffer(cfg.btb_entries)
        self.ras = ReturnAddressStack(cfg.ras_entries)
        self.confidence = JrsConfidenceEstimator(cfg)
        self.memdep = MemoryDependencePredictor(cfg.memdep_entries)
        self.icache = SetAssociativeCache(cfg.l1i_sets, cfg.l1i_ways, cfg.l1i_line_bytes)
        self.dcache = SetAssociativeCache(cfg.l1d_sets, cfg.l1d_ways, cfg.l1d_line_bytes)
        self.itlb = Tlb(cfg.itlb_entries)
        self.dtlb = Tlb(cfg.dtlb_entries)
        self.mshr = MshrFile(cfg.mshr_entries)
        self.memhier_targets = memhier_targets
        if memhier_targets:
            self.icache.register_state(self.registry, "icache")
            self.dcache.register_state(self.registry, "dcache")
            self.mshr.register_state(self.registry, "mshr")

        # Machine status.
        self.cycle_count = 0
        self.retired_count = 0
        # Monotonic count of retirements, never rewound by ReStore rollback
        # (retired_count is the architectural position and rewinds).
        self.total_retired = 0
        self.halted = False
        self.stopped = False  # stopped on an unhandled exception or deadlock
        self.exception: tuple[int, int] | None = None  # (EXC code, pc)
        self.deadlock = False
        self.watchdog_counter = 0
        self.mispredict_count = 0
        self.hc_mispredict_count = 0
        self.branch_count = 0

        # Fetch status (wiring, not latched state).
        self._fetch_stalled_until = 0
        self._fetch_faulted = False  # stop fetching past a faulting fetch

        # Store buffer policy: drained immediately unless gated by ReStore.
        self.store_buffer_gated = False

        # Event wheel: cycle -> list of event tuples.
        self._events: dict[int, list[tuple]] = {}
        self._next_seq = 1

        # Observability.
        self.retired_log: list[RetiredInst] | None = [] if collect_retired else None
        self.on_retire = None  # optional callable(RetiredInst)
        self.symptoms: list[SymptomEvent] = []
        self.record_cache_symptoms = record_cache_symptoms
        # Gates stall_streak / spurious_memop emission (and the store-buffer
        # accounting check behind the latter), so pipelines that never asked
        # for memory-hierarchy symptoms pay nothing for them.
        self.record_memhier_symptoms = record_memhier_symptoms
        self._spurious_flagged = False
        # Hook invoked when an exception reaches the ROB head or the
        # watchdog saturates; a ReStore controller installs itself here.
        # Signature: handler(kind: str, payload) -> bool (True = handled).
        self.symptom_handler = None
        # Optional trace sink (repro.telemetry); None keeps symptom
        # emission on the allocation-free fast path.
        self.telemetry = None

        # Optional branch-outcome oracle used during ReStore re-execution
        # (the event log provides perfect prediction; Section 3.2.3).
        self.branch_oracle = None
        # Controller hooks: called at the top of every cycle; retire_stall
        # freezes retirement until a deferred rollback executes;
        # storebuf_full_hook lets a checkpoint manager release buffer space
        # (by taking a forced checkpoint) before a store must retire.
        self.pre_cycle_hook = None
        self.retire_stall = False
        self.storebuf_full_hook = None
        # Mapping-based checkpointing (Section 2.1's "saving the current
        # mapping" variant) pins physical registers; the hook returns True
        # to defer the free of a retiring instruction's old mapping.
        self.preg_free_hook = None

        # Decode cache: pure word -> decoded record (or None for an illegal
        # word). The fast path caches flattened PredecodedInst records so
        # classification is paid once per distinct word instead of through
        # property calls on every access; the reference path caches plain
        # DecodedInst exactly as the unoptimised pipeline did. Both types
        # expose the same read interface, so all stage code is shared.
        self._decode_cache: dict[int, DecodedInst | PredecodedInst | None] = {}
        # Per-cycle scratch reused by the issue stage (fast path only).
        self._issue_scratch: list[tuple[int, int]] = []
        # Fast-path fetch cache: pc -> (word, decoded) for instructions on
        # READ_ONLY pages. Stores can never write those pages (the bus drops
        # the access), so the only way the word under a pc changes is a
        # load_bytes/map_region call — which bumps memory.image_version and
        # invalidates the whole cache at the top of the next fetch stage.
        self._fetch_cache: dict[int, tuple[int, DecodedInst | PredecodedInst | None]] = {}
        self._fetch_cache_version = memory.image_version

    # ------------------------------------------------------------ utilities

    def _decode(self, word: int) -> DecodedInst | PredecodedInst | None:
        cached = self._decode_cache.get(word, False)
        if cached is not False:
            return cached
        inst = try_decode_word(word)
        if inst is not None and self.fast:
            inst = PredecodedInst(inst)
        self._decode_cache[word] = inst
        return inst

    def _emit_symptom(self, kind: str, pc: int) -> None:
        self.symptoms.append(
            SymptomEvent(kind, self.cycle_count, self.retired_count, pc)
        )
        if self.telemetry is not None:
            self.telemetry.emit({
                "kind": "symptom",
                "cycle": self.cycle_count,
                "position": self.retired_count,
                "symptom": kind,
                "pc": pc,
            })

    def _schedule(self, delay: int, event: tuple) -> None:
        cycle = self.cycle_count + max(1, delay)
        self._events.setdefault(cycle, []).append(event)

    def exception_name(self) -> str | None:
        if self.exception is None:
            return None
        return EXC_NAMES.get(self.exception[0], "unknown")

    @property
    def running(self) -> bool:
        return not (self.halted or self.stopped)

    # ------------------------------------------------------------- main loop

    def run(self, max_cycles: int, max_retired: int | None = None) -> None:
        """Advance until halt, stop, or a cycle/retirement budget expires."""
        target_cycle = self.cycle_count + max_cycles
        step = self.step_cycle
        while not (self.halted or self.stopped) and self.cycle_count < target_cycle:
            if max_retired is not None and self.retired_count >= max_retired:
                break
            step()

    def step_cycle(self) -> None:
        """Advance the machine by one clock cycle."""
        self.cycle_count += 1
        if self.pre_cycle_hook is not None:
            self.pre_cycle_hook()
        retired_before = self.retired_count
        self._process_events()
        if not (self.halted or self.stopped):
            self._retire_stage()
        if not (self.halted or self.stopped):
            self._issue_stage()
            self._rename_stage()
            self._fetch_stage()
        # Watchdog.
        if self.retired_count > retired_before:
            streak = self.watchdog_counter
            self.watchdog_counter = 0
            if (
                self.record_memhier_symptoms
                and streak >= self.config.stall_streak_floor
            ):
                # A no-retirement streak just ended: report its length so
                # the stall-duration-outlier detector can compare it to the
                # error-free baseline. Payload: (position, streak, pc).
                pc = self._fetch_pc[0]
                self._emit_symptom("stall_streak", pc)
                if self.symptom_handler is not None:
                    self.symptom_handler(
                        "stall_streak", (self.retired_count, streak, pc)
                    )
        else:
            self.watchdog_counter += 1
            if self.watchdog_counter >= self.config.watchdog_cycles and self.running:
                self.watchdog_counter = 0
                self.deadlock = True
                self._emit_symptom("deadlock", self._fetch_pc[0])
                if self.symptom_handler is not None and self.symptom_handler(
                    "deadlock", None
                ):
                    self.deadlock = False
                else:
                    self.stopped = True

    # -------------------------------------------------------------- events

    def _process_events(self) -> None:
        events = self._events.pop(self.cycle_count, None)
        if not events:
            return
        for event in events:
            kind = event[0]
            if kind == "exec":
                self._execute(event[1], event[2], event[3])
            elif kind == "wb":
                self._writeback(event[1], event[2], event[3], event[4])
            elif kind == "load_try":
                self._load_try(event[1], event[2], event[3], event[4])
            elif kind == "load_fin":
                self._load_finish(event[1], event[2], event[3], event[4])
            elif kind == "mshr_fin":
                self._mshr_fill_complete(event[1])

    def _mshr_fill_complete(self, address: int) -> None:
        """A D-cache fill returned: release its MSHR entry. A fill with no
        matching outstanding miss is a spurious memory op — the signature
        of a flipped MSHR valid or address bit."""
        if not self.mshr.release(address) and self.record_memhier_symptoms:
            self._emit_symptom("spurious_memop", address)
            if self.symptom_handler is not None:
                self.symptom_handler(
                    "spurious_memop", (self.retired_count, address)
                )

    # -------------------------------------------------------------- retire

    def _retire_stage(self) -> None:
        if self.retire_stall:
            return
        rob = self.rob
        # Building a RetiredInst per retirement is pure observability; skip
        # the allocation when nobody is listening (fast path only — the
        # reference path keeps the unoptimised allocation behaviour).
        observe = (
            self.retired_log is not None
            or self.on_retire is not None
            or not self.fast
        )
        rob_count = rob._count
        rob_valid = rob.valid
        rob_done = rob.done
        for _ in range(self.config.retire_width):
            if rob_count[0] == 0:
                return
            index = rob._head[0]
            if not rob_valid[index] or not rob_done[index]:
                return
            exc = rob.exc[index]
            pc = rob.pc[index]
            if exc != EXC_NONE:
                self._emit_symptom("exception", pc)
                if self.symptom_handler is not None and self.symptom_handler(
                    "exception", (exc, pc)
                ):
                    return  # controller rolled back; pipeline was flushed
                self.exception = (exc, pc)
                self._record_retired(
                    RetiredInst(pc, -1, 0, -1, 0, 0, exc)
                )
                self.stopped = True
                return
            if rob.is_halt[index]:
                self.halted = True
                self._record_retired(RetiredInst(pc, -1, 0, -1, 0, 0, EXC_NONE))
                self._pop_rob_head(index)
                self.retired_count += 1
                self.total_retired += 1
                # Program end: all committed stores become unconditional.
                self._drain_store_buffer()
                return
            dest = -1
            value = 0
            if rob.has_dest[index]:
                dest = rob.dest_areg[index]
                preg = rob.new_preg[index]
                value = self.prf.values[preg]
                self.arch_rat.map[dest] = preg
                old_preg = rob.old_preg[index]
                if self.preg_free_hook is None or not self.preg_free_hook(old_preg):
                    self.freelist.free(old_preg)
            store_addr, store_data, store_size = -1, 0, 0
            if rob.is_store[index]:
                if self.storebuf.is_full():
                    if self.storebuf_full_hook is not None:
                        self.storebuf_full_hook(pc)
                    if self.storebuf.is_full():
                        # No manager (or it could not free space): release
                        # the oldest committed store unconditionally.
                        entry = self.storebuf.pop_oldest()
                        if entry is not None:
                            addr, data, size_log2 = entry
                            try:
                                self.memory.write(addr, 1 << size_log2, data)
                            except AccessViolation:
                                pass
                store_addr, store_data, store_size = self._retire_store(index)
            if rob.is_branch[index] and self.branch_oracle is not None:
                self.branch_oracle.on_retire(pc)
            is_load = bool(rob.is_load[index])
            if observe:
                if rob.is_branch[index] and rob.actual_taken[index]:
                    next_pc = rob.actual_target[index]
                else:
                    next_pc = (pc + 4) & MASK64
                load_addr = -1
                if is_load:
                    load_addr = self.ldq.addr[rob.lsq_idx[index] % self.ldq.size]
                self._record_retired(
                    RetiredInst(
                        pc,
                        dest,
                        value,
                        store_addr,
                        store_data,
                        store_size,
                        EXC_NONE,
                        bool(rob.is_cond[index]),
                        bool(rob.actual_taken[index]),
                        next_pc,
                        is_load,
                        load_addr,
                    )
                )
            if is_load:
                self.ldq.valid[rob.lsq_idx[index] % self.ldq.size] = 0
            self._pop_rob_head(index)
            self.retired_count += 1
            self.total_retired += 1
            if not self.store_buffer_gated:
                self._drain_store_buffer()

    def _pop_rob_head(self, index: int) -> None:
        rob = self.rob
        rob.valid[index] = 0
        rob._head[0] = (index + 1) % rob.size
        # Callers only pop when count > 0, so the decrement cannot go
        # negative; the upper clamp matters when injection has flipped a
        # high bit of the count register (the property clamped to size).
        count = rob._count[0] - 1
        rob._count[0] = count if count < rob.size else rob.size

    def _retire_store(self, rob_index: int) -> tuple[int, int, int]:
        stq = self.stq
        slot = self.rob.lsq_idx[rob_index] % stq.size
        addr = stq.addr[slot]
        size_log2 = stq.size_log2[slot]
        size = 1 << size_log2
        data = stq.data[slot] & ((1 << (8 * size)) - 1)
        stq.valid[slot] = 0
        self.storebuf.push(addr, data, size_log2)
        return addr, data, size

    def _check_storebuf_accounting(self) -> None:
        """Emit spurious_memop when the store buffer's live entries no
        longer reconcile with its push/pop sequence — a valid bit was
        conjured (a phantom committed store about to drain) or destroyed
        (a committed store silently dropped). Edge-triggered so one
        corruption produces one symptom, not one per retirement."""
        storebuf = self.storebuf
        if storebuf.live_count() == storebuf.total_pushed - storebuf.total_popped:
            self._spurious_flagged = False
            return
        if self._spurious_flagged:
            return
        self._spurious_flagged = True
        addr = storebuf.addr[storebuf.head]
        self._emit_symptom("spurious_memop", addr)
        if self.symptom_handler is not None:
            self.symptom_handler("spurious_memop", (self.retired_count, addr))

    def _drain_store_buffer(self) -> None:
        """Release every committed store to memory (ungated mode)."""
        if self.record_memhier_symptoms:
            self._check_storebuf_accounting()
        while True:
            entry = self.storebuf.pop_oldest()
            if entry is None:
                return
            addr, data, size_log2 = entry
            size = 1 << size_log2
            try:
                self.memory.write(addr, size, data)
            except AccessViolation:
                # The write would have faulted at retirement in an unfaulted
                # machine; with corrupted state the bus simply drops it.
                pass

    def drain_store_buffer_until(self, push_mark: int) -> None:
        """Release committed stores with sequence below ``push_mark`` (used
        by the ReStore checkpoint manager when a checkpoint is released)."""
        if self.record_memhier_symptoms:
            self._check_storebuf_accounting()
        while self.storebuf.total_popped < push_mark:
            entry = self.storebuf.pop_oldest()
            if entry is None:
                return
            addr, data, size_log2 = entry
            try:
                self.memory.write(addr, 1 << size_log2, data)
            except AccessViolation:
                pass

    def _record_retired(self, record: RetiredInst) -> None:
        if self.retired_log is not None:
            self.retired_log.append(record)
        if self.on_retire is not None:
            self.on_retire(record)

    # --------------------------------------------------------------- issue

    def _issue_stage(self) -> None:
        cfg = self.config
        sched = self.sched
        rob = self.rob
        valid = sched.valid
        issued_flags = sched.issued
        src1_ready = sched.src1_ready
        src2_ready = sched.src2_ready
        src3_ready = sched.src3_ready
        sched_rob_idx = sched.rob_idx
        rob_head = rob._head[0]
        rob_size = rob.size
        if self.fast:
            candidates = self._issue_scratch
            candidates.clear()
        else:
            candidates = []
        for slot in range(sched.size):
            if not valid[slot] or issued_flags[slot]:
                continue
            if not (src1_ready[slot] and src2_ready[slot] and src3_ready[slot]):
                continue
            # Inlined rob.age_of: distance from head (0 = oldest in flight).
            candidates.append(((sched_rob_idx[slot] - rob_head) % rob_size, slot))
        if not candidates:
            return
        candidates.sort()
        alu_free = cfg.alu_units
        branch_free = cfg.branch_units
        agen_free = cfg.agen_units
        issue_width = cfg.issue_width
        decode_cache = self._decode_cache
        sched_word = sched.word
        rob_seq = rob.seq
        wheel = self._events
        exec_cycle = self.cycle_count + max(1, cfg.regread_delay)
        issued = 0
        for _, slot in candidates:
            if issued >= issue_width:
                break
            inst = decode_cache.get(sched_word[slot], False)
            if inst is False:
                inst = self._decode(sched_word[slot])
            if inst is None or inst.inst_class in _ALU_CLASSES:
                if alu_free == 0:
                    continue
                alu_free -= 1
            elif inst.inst_class is InstClass.BRANCH:
                if branch_free == 0:
                    continue
                branch_free -= 1
            else:  # loads and stores use an AGEN unit
                if agen_free == 0:
                    continue
                agen_free -= 1
            issued_flags[slot] = 1
            rob_idx = sched_rob_idx[slot]
            event = ("exec", slot, rob_idx, rob_seq[rob_idx])
            bucket = wheel.get(exec_cycle)
            if bucket is None:
                wheel[exec_cycle] = [event]
            else:
                bucket.append(event)
            issued += 1

    # ------------------------------------------------------------- execute

    def _entry_live(self, rob_idx: int, seq: int) -> bool:
        return bool(self.rob.valid[rob_idx]) and self.rob.seq[rob_idx] == seq

    def _free_sched_slot(self, slot: int, seq: int | None = None) -> None:
        if seq is not None and self.sched.seq[slot] != seq:
            return  # the slot was reallocated after a squash
        self.sched.valid[slot] = 0
        self.sched.issued[slot] = 0

    def _operand(self, preg: int) -> int:
        return self.prf.values[preg]

    def _execute(self, slot: int, rob_idx: int, seq: int) -> None:
        rob = self.rob
        if not rob.valid[rob_idx] or rob.seq[rob_idx] != seq:
            self._free_sched_slot(slot, seq)
            return
        sched = self.sched
        word = sched.word[slot]
        pc = sched.pc[slot]
        inst = self._decode_cache.get(word, False)
        if inst is False:
            inst = self._decode(word)
        if inst is None or inst.is_halt:
            # The control word was corrupted after dispatch.
            self._mark_exception(rob_idx, EXC_ILLEGAL)
            self._free_sched_slot(slot)
            return
        if inst.is_load:
            self._execute_load(slot, rob_idx, seq, inst, pc)
            return
        if inst.is_store:
            self._execute_store(slot, rob_idx, seq, inst, pc)
            return
        if inst.is_control:
            self._execute_branch(slot, rob_idx, seq, inst, pc)
            return
        self._execute_operate(slot, rob_idx, seq, inst)

    def _execute_operate(self, slot, rob_idx, seq, inst: DecodedInst) -> None:
        sched = self.sched
        values = self.prf.values
        if inst.is_lda:
            base = values[sched.src2_preg[slot]]
            value = semantics.lda_value(inst, base)
            overflow = False
        elif inst.is_cmov:
            a = values[sched.src1_preg[slot]]
            b = (
                inst.literal
                if inst.is_literal
                else values[sched.src2_preg[slot]]
            )
            old = values[sched.src3_preg[slot]]
            result = semantics.execute_cmov(inst, a, b, old)
            value, overflow = result.value, result.overflow
        else:
            a = values[sched.src1_preg[slot]]
            b = (
                inst.literal
                if inst.is_literal
                else values[sched.src2_preg[slot]]
            )
            result = semantics.execute_operate(inst, a, b)
            value, overflow = result.value, result.overflow
        if overflow:
            self.rob.exc[rob_idx] = EXC_ARITH
        latency = (
            self.config.multiply_latency
            if inst.inst_class is InstClass.MULTIPLY
            else self.config.alu_latency
        )
        self._schedule(latency, ("wb", slot, rob_idx, seq, value))

    def _execute_branch(self, slot, rob_idx, seq, inst: DecodedInst, pc: int) -> None:
        rob = self.rob
        if inst.is_cond_branch:
            a = self._operand(self.sched.src1_preg[slot])
            taken = semantics.branch_taken(inst, a)
            target = inst.branch_target(pc) if taken else (pc + 4) & MASK64
            link_value = None
        elif inst.is_uncond_branch:
            taken = True
            target = inst.branch_target(pc)
            link_value = (pc + 4) & MASK64
        else:  # jump format
            taken = True
            target = semantics.jump_target(self._operand(self.sched.src2_preg[slot]))
            link_value = (pc + 4) & MASK64
        rob.actual_taken[rob_idx] = int(taken)
        rob.actual_target[rob_idx] = target
        predicted_target = (
            rob.pred_target[rob_idx] if rob.pred_taken[rob_idx] else (pc + 4) & MASK64
        )
        mispredicted = predicted_target != target
        history = rob.hist[rob_idx]
        self.branch_count += 1
        if inst.is_cond_branch:
            self.predictor.update(pc, taken, history)
            self.confidence.update(pc, history, correct=not mispredicted)
        if taken and (inst.is_jump or inst.is_cond_branch):
            self.btb.update(pc, target)
        if mispredicted:
            rob.mispredicted[rob_idx] = 1
            self.mispredict_count += 1
            self._emit_symptom("mispredict", pc)
            if inst.is_cond_branch and rob.conf[rob_idx]:
                self.hc_mispredict_count += 1
                self._emit_symptom("hc_mispredict", pc)
                if self.symptom_handler is not None:
                    if self.symptom_handler("hc_mispredict", (pc, rob_idx)):
                        return  # rollback flushed the pipeline
            self._recover_from_branch(rob_idx, target, history, taken)
        if link_value is not None:
            self._schedule(
                self.config.branch_latency, ("wb", slot, rob_idx, seq, link_value)
            )
        else:
            self._schedule(self.config.branch_latency, ("wb", slot, rob_idx, seq, None))

    def _recover_from_branch(
        self, branch_idx: int, target: int, history: int, taken: bool
    ) -> None:
        """Squash everything younger than the branch and redirect fetch."""
        self._squash_younger_than(branch_idx)
        mask = (1 << self.config.history_bits) - 1
        self.predictor.restore_history(((history << 1) | int(taken)) & mask)
        self._redirect_fetch(target)

    def _redirect_fetch(self, target: int) -> None:
        self.fetchq.clear()
        self._fetch_pc[0] = target
        self._fetch_faulted = False
        self._fetch_stalled_until = 0
        if self.branch_oracle is not None:
            self.branch_oracle.on_flush()

    def _squash_younger_than(self, boundary_idx: int) -> None:
        """Squash ROB entries strictly younger than ``boundary_idx``."""
        rob = self.rob
        squashed: set[int] = set()
        guard = rob.size
        while rob.count > 0 and guard > 0:
            index = (rob.tail - 1) % rob.size
            if index == boundary_idx or rob.count == 0:
                break
            if not rob.valid[index]:
                break
            self._undo_rob_entry(index)
            squashed.add(index)
            rob.tail = index
            rob.count -= 1
            guard -= 1
        if squashed:
            self._clear_squashed(squashed)

    def _squash_from(self, first_idx: int) -> None:
        """Squash ``first_idx`` and everything younger (load replay)."""
        rob = self.rob
        squashed: set[int] = set()
        guard = rob.size
        while rob.count > 0 and guard > 0:
            index = (rob.tail - 1) % rob.size
            if not rob.valid[index]:
                break
            self._undo_rob_entry(index)
            squashed.add(index)
            rob.tail = index
            rob.count -= 1
            guard -= 1
            if index == first_idx:
                break
        if squashed:
            self._clear_squashed(squashed)

    def _undo_rob_entry(self, index: int) -> None:
        rob = self.rob
        if rob.has_dest[index]:
            self.spec_rat.map[rob.dest_areg[index]] = rob.old_preg[index]
            self.freelist.free(rob.new_preg[index])
            self.prf.ready[rob.new_preg[index]] = 1
        if rob.is_load[index]:
            self.ldq.valid[rob.lsq_idx[index] % self.ldq.size] = 0
        if rob.is_store[index]:
            self.stq.valid[rob.lsq_idx[index] % self.stq.size] = 0
        rob.valid[index] = 0
        rob.seq[index] = 0

    def _clear_squashed(self, squashed: set[int]) -> None:
        sched = self.sched
        for slot in range(sched.size):
            if sched.valid[slot] and sched.rob_idx[slot] in squashed:
                sched.valid[slot] = 0
                sched.issued[slot] = 0

    # ----------------------------------------------------- loads and stores

    def _mark_exception(self, rob_idx: int, code: int) -> None:
        self.rob.exc[rob_idx] = code
        self.rob.done[rob_idx] = 1

    def _execute_load(self, slot, rob_idx, seq, inst: DecodedInst, pc: int) -> None:
        base = self._operand(self.sched.src2_preg[slot])
        address = semantics.effective_address(inst, base)
        size = inst.access_size
        ldq_idx = self.rob.lsq_idx[rob_idx] % self.ldq.size
        if size > 1 and address % size:
            self._mark_exception(rob_idx, EXC_ALIGN)
            self._free_sched_slot(slot)
            return
        self.ldq.addr[ldq_idx] = address
        self.ldq.addr_valid[ldq_idx] = 1
        self._load_try(slot, rob_idx, seq, ldq_idx)

    def _scan_older_stores(self, rob_idx: int, address: int, size: int):
        """Disambiguate a load at ``address`` against older stores.

        Returns ``(best_slot, unresolved_older, forward_is_speculative)``:
        the youngest older store overlapping [address, address+size), whether
        any older store address is still unresolved, and whether an
        unresolved store *younger than the match* exists — in which case a
        forward from the match may be stale and must be treated as
        speculative (caught by the violation check when the store resolves).
        """
        rob = self.rob
        stq = self.stq
        load_age = rob.age_of(rob_idx)
        best_slot = -1
        best_age = -1
        max_unresolved_age = -1
        for store_slot in range(stq.size):
            if not stq.valid[store_slot]:
                continue
            store_rob = stq.rob_idx[store_slot]
            if not rob.valid[store_rob]:
                continue
            store_age = rob.age_of(store_rob)
            if store_age >= load_age:
                continue
            if not stq.addr_valid[store_slot]:
                max_unresolved_age = max(max_unresolved_age, store_age)
                continue
            store_addr = stq.addr[store_slot]
            store_size = 1 << stq.size_log2[store_slot]
            if store_addr < address + size and address < store_addr + store_size:
                if store_age > best_age:
                    best_age = store_age
                    best_slot = store_slot
        unresolved_older = max_unresolved_age >= 0
        forward_is_speculative = best_slot >= 0 and max_unresolved_age > best_age
        return best_slot, unresolved_older, forward_is_speculative

    def _load_try(self, slot, rob_idx, seq, ldq_idx) -> None:
        """Disambiguate against older stores; forward, wait, or access."""
        if not self._entry_live(rob_idx, seq):
            self._free_sched_slot(slot, seq)
            return
        rob = self.rob
        ldq = self.ldq
        address = ldq.addr[ldq_idx]
        inst = self._decode(self.sched.word[slot])
        if inst is None or not inst.is_load:
            self._mark_exception(rob_idx, EXC_ILLEGAL)
            self._free_sched_slot(slot)
            return
        size = inst.access_size
        stq = self.stq
        best_slot, unresolved_older, spec_forward = self._scan_older_stores(
            rob_idx, address, size
        )
        if best_slot >= 0:
            if spec_forward and self.memdep.should_wait(self.sched.pc[slot]):
                self._schedule(1, ("load_try", slot, rob_idx, seq, ldq_idx))
                return
            store_addr = stq.addr[best_slot]
            store_size = 1 << stq.size_log2[best_slot]
            contains = store_addr <= address and address + size <= store_addr + store_size
            if not contains or not stq.data_valid[best_slot]:
                # Partial overlap or data not ready: retry next cycle.
                self._schedule(1, ("load_try", slot, rob_idx, seq, ldq_idx))
                return
            if spec_forward:
                ldq.speculative[ldq_idx] = 1
            offset = address - store_addr
            raw = (stq.data[best_slot] >> (8 * offset)) & ((1 << (8 * size)) - 1)
            value = semantics.extend_loaded(inst, raw)
            self._complete_load(slot, rob_idx, ldq_idx, value, latency=1)
            return
        if unresolved_older:
            if self.memdep.should_wait(self.sched.pc[slot]):
                self._schedule(1, ("load_try", slot, rob_idx, seq, ldq_idx))
                return
            ldq.speculative[ldq_idx] = 1
        # Access the memory hierarchy. Symptom-handler payloads carry the
        # architectural position first — detectors window and prune by
        # retired-instruction position, not by PC — then the faulting PC.
        latency = self.config.cache_hit_latency
        if not self.dtlb.access(address):
            latency += self.config.tlb_miss_penalty
            pc = self.sched.pc[slot]
            if self.record_cache_symptoms:
                self._emit_symptom("dtlb_miss", pc)
            if self.symptom_handler is not None and self.symptom_handler(
                "dtlb_miss", (self.retired_count, pc)
            ):
                return  # rollback flushed the pipeline; the load is gone
        if not self.dcache.access(address):
            latency = self.config.cache_miss_latency
            pc = self.sched.pc[slot]
            if self.record_cache_symptoms:
                self._emit_symptom("dcache_miss", pc)
            if self.symptom_handler is not None and self.symptom_handler(
                "dcache_miss", (self.retired_count, pc)
            ):
                return
            if self.memhier_targets:
                # Outstanding-miss tracking: a full MSHR file is a
                # structural hazard charged as one extra miss penalty.
                if self.mshr.allocate(address) is None:
                    latency += self.config.cache_miss_latency
                else:
                    self._schedule(latency, ("mshr_fin", address))
        self._schedule(latency, ("load_fin", slot, rob_idx, seq, ldq_idx))

    def _load_finish(self, slot, rob_idx, seq, ldq_idx) -> None:
        """Data return from the hierarchy: read memory/store buffer now."""
        if not self._entry_live(rob_idx, seq):
            self._free_sched_slot(slot, seq)
            return
        inst = self._decode(self.sched.word[slot])
        if inst is None or not inst.is_load:
            self._mark_exception(rob_idx, EXC_ILLEGAL)
            self._free_sched_slot(slot)
            return
        address = self.ldq.addr[ldq_idx]
        size = inst.access_size
        # An older store may have resolved its address while the access was
        # in flight; re-disambiguate before consuming memory data.
        best_slot, _, spec_forward = self._scan_older_stores(rob_idx, address, size)
        if best_slot >= 0:
            stq = self.stq
            store_addr = stq.addr[best_slot]
            store_size = 1 << stq.size_log2[best_slot]
            contains = (
                store_addr <= address and address + size <= store_addr + store_size
            )
            if not contains or not stq.data_valid[best_slot]:
                self._schedule(1, ("load_try", slot, rob_idx, seq, ldq_idx))
                return
            if spec_forward:
                self.ldq.speculative[ldq_idx] = 1
            offset = address - store_addr
            raw = (stq.data[best_slot] >> (8 * offset)) & ((1 << (8 * size)) - 1)
            value = semantics.extend_loaded(inst, raw)
            self._complete_load(slot, rob_idx, ldq_idx, value, latency=0)
            return
        try:
            raw = self._read_through_store_buffer(address, size)
        except AccessViolation:
            self._mark_exception(rob_idx, EXC_ACCESS)
            self._free_sched_slot(slot)
            return
        value = semantics.extend_loaded(inst, raw)
        self._complete_load(slot, rob_idx, ldq_idx, value, latency=0)

    def _read_through_store_buffer(self, address: int, size: int) -> int:
        """Read bytes, honouring committed-but-ungated stores."""
        if self.storebuf.is_empty():
            # Ungated store buffers drain at retirement, so this is the
            # overwhelmingly common case — skip building the entry list.
            return self.memory.read(address, size)
        pending = self.storebuf.entries_youngest_first()
        if not pending:
            return self.memory.read(address, size)
        result = 0
        for index in range(size):
            byte_addr = (address + index) & MASK64
            byte = None
            for slot in pending:
                start = self.storebuf.addr[slot]
                length = 1 << self.storebuf.size_log2[slot]
                if start <= byte_addr < start + length:
                    byte = (self.storebuf.data[slot] >> (8 * (byte_addr - start))) & 0xFF
                    break
            if byte is None:
                byte = self.memory.read(byte_addr, 1)
            result |= byte << (8 * index)
        return result

    def _complete_load(self, slot, rob_idx, ldq_idx, value, latency) -> None:
        self.ldq.value[ldq_idx] = value
        self.ldq.done[ldq_idx] = 1
        seq = self.rob.seq[rob_idx]
        if latency > 0:
            self._schedule(latency, ("wb", slot, rob_idx, seq, value))
        else:
            self._writeback(slot, rob_idx, seq, value)

    def _execute_store(self, slot, rob_idx, seq, inst: DecodedInst, pc: int) -> None:
        data = self._operand(self.sched.src1_preg[slot])
        base = self._operand(self.sched.src2_preg[slot])
        address = semantics.effective_address(inst, base)
        size = inst.access_size
        if size > 1 and address % size:
            self._mark_exception(rob_idx, EXC_ALIGN)
            self._free_sched_slot(slot)
            return
        if not (
            self.memory.is_mapped(address)
            and self.memory.protection_at(address) is PageProtection.READ_WRITE
        ):
            self._mark_exception(rob_idx, EXC_ACCESS)
            self._free_sched_slot(slot)
            return
        stq_idx = self.rob.lsq_idx[rob_idx] % self.stq.size
        stq = self.stq
        stq.addr[stq_idx] = address
        stq.addr_valid[stq_idx] = 1
        stq.data[stq_idx] = semantics.store_value(inst, data)
        stq.data_valid[stq_idx] = 1
        stq.size_log2[stq_idx] = size.bit_length() - 1
        self._check_load_violations(rob_idx, address, size, pc)
        self._schedule(self.config.alu_latency, ("wb", slot, rob_idx, seq, None))

    def _check_load_violations(self, store_rob, address, size, store_pc) -> None:
        """A store resolved its address: any younger done load that read an
        overlapping address speculatively has consumed stale data."""
        rob = self.rob
        ldq = self.ldq
        store_age = rob.age_of(store_rob)
        victim_rob = -1
        victim_age = None
        for load_slot in range(ldq.size):
            if not (ldq.valid[load_slot] and ldq.done[load_slot]):
                continue
            if not ldq.speculative[load_slot]:
                continue
            load_rob = ldq.rob_idx[load_slot]
            if not rob.valid[load_rob]:
                continue
            load_age = rob.age_of(load_rob)
            if load_age <= store_age:
                continue
            load_addr = ldq.addr[load_slot]
            # Conservative overlap: compare 8-byte blocks.
            if load_addr < address + size and address < load_addr + 8:
                if victim_age is None or load_age < victim_age:
                    victim_age = load_age
                    victim_rob = load_rob
        if victim_rob >= 0:
            self.memdep.record_violation(rob.pc[victim_rob])
            replay_pc = rob.pc[victim_rob]
            self._squash_from(victim_rob)
            self._redirect_fetch(replay_pc)

    # ----------------------------------------------------------- writeback

    def _writeback(self, slot, rob_idx, seq, value) -> None:
        rob = self.rob
        if not rob.valid[rob_idx] or rob.seq[rob_idx] != seq:
            self._free_sched_slot(slot, seq)
            return
        if value is not None and rob.has_dest[rob_idx]:
            preg = rob.new_preg[rob_idx]
            prf = self.prf
            prf.values[preg] = value & MASK64
            prf.ready[preg] = 1
            self.sched.wakeup(preg)
        rob.done[rob_idx] = 1
        sched = self.sched
        sched.valid[slot] = 0
        sched.issued[slot] = 0

    # -------------------------------------------------------------- rename

    def _rename_stage(self) -> None:
        fetchq = self.fetchq
        fq_head = fetchq._head
        fq_valid = fetchq.valid
        fq_ready = fetchq.ready_cycle
        fq_word = fetchq.word
        now = self.cycle_count
        rob_count = self.rob._count
        rob_size = self.rob.size
        decode_cache = self._decode_cache
        for _ in range(self.config.rename_width):
            # Inlined fetchq.front_ready / rob.is_full.
            slot = fq_head[0]
            if not fq_valid[slot] or fq_ready[slot] > now:
                return
            if rob_count[0] >= rob_size:
                return
            word = fq_word[slot]
            inst = decode_cache.get(word, False)
            if inst is False:
                inst = self._decode(word)
            # Resource pre-checks so allocation never has to unwind; the
            # slots found here feed allocation directly, so the free-slot
            # scans run once per instruction instead of twice.
            sched_slot = ldq_idx = stq_idx = None
            if inst is not None and not inst.is_halt:
                if inst.dest_reg is not None and self.freelist.count < 1:
                    return
                sched_slot = self.sched.find_free()
                if sched_slot is None:
                    return
                if inst.is_load:
                    ldq_idx = self.ldq.find_free()
                    if ldq_idx is None:
                        return
                if inst.is_store:
                    stq_idx = self.stq.find_free()
                    if stq_idx is None:
                        return
            self._rename_one(slot, word, inst, sched_slot, ldq_idx, stq_idx)

    def _rename_one(
        self,
        fq_slot: int,
        word: int,
        inst: DecodedInst | PredecodedInst | None,
        sched_slot: int | None = None,
        ldq_idx: int | None = None,
        stq_idx: int | None = None,
    ) -> None:
        fetchq = self.fetchq
        rob = self.rob
        seq = self._next_seq
        self._next_seq += 1
        rob_idx = rob.allocate(seq)
        if rob_idx is None:  # pragma: no cover - guarded by is_full
            return
        pc = fetchq.pc[fq_slot]
        rob.pc[rob_idx] = pc
        rob.pred_taken[rob_idx] = fetchq.pred_taken[fq_slot]
        rob.pred_target[rob_idx] = fetchq.pred_target[fq_slot]
        rob.conf[rob_idx] = fetchq.conf[fq_slot]
        rob.hist[rob_idx] = fetchq.hist[fq_slot]
        fetch_fault = fetchq.fetch_fault[fq_slot]
        # Inlined fetchq.pop().
        fetchq.valid[fq_slot] = 0
        fetchq._head[0] = (fq_slot + 1) % fetchq.size

        if fetch_fault:
            rob.exc[rob_idx] = EXC_ACCESS
            rob.done[rob_idx] = 1
            return
        if inst is None:
            rob.exc[rob_idx] = EXC_ILLEGAL
            rob.done[rob_idx] = 1
            return
        if inst.is_halt:
            rob.is_halt[rob_idx] = 1
            rob.done[rob_idx] = 1
            return

        # Source mapping (before destination rename).
        spec_map = self.spec_rat.map
        src1 = src2 = src3 = 0
        src1_used = src2_used = src3_used = False
        if inst.format is op.Format.OPERATE:
            src1 = spec_map[inst.ra]
            src1_used = True
            if not inst.is_literal:
                src2 = spec_map[inst.rb]
                src2_used = True
            if inst.is_cmov:
                src3 = spec_map[inst.rc]
                src3_used = True
        elif inst.is_load or inst.is_lda:
            src2 = spec_map[inst.rb]
            src2_used = True
        elif inst.is_store:
            src1 = spec_map[inst.ra]
            src2 = spec_map[inst.rb]
            src1_used = src2_used = True
        elif inst.is_cond_branch:
            src1 = spec_map[inst.ra]
            src1_used = True
        elif inst.is_jump:
            src2 = spec_map[inst.rb]
            src2_used = True

        # Destination rename.
        dest = inst.dest_reg
        if dest is not None:
            new_preg = self.freelist.allocate()
            if new_preg is None:  # pragma: no cover - guarded in rename stage
                new_preg = 0
            rob.has_dest[rob_idx] = 1
            rob.dest_areg[rob_idx] = dest
            rob.old_preg[rob_idx] = spec_map[dest]
            rob.new_preg[rob_idx] = new_preg
            spec_map[dest] = new_preg
            self.prf.ready[new_preg] = 0

        # Class flags and LSQ allocation.
        if inst.is_control:
            rob.is_branch[rob_idx] = 1
            rob.is_cond[rob_idx] = int(inst.is_cond_branch)
        if inst.is_load:
            if ldq_idx is None:
                ldq_idx = self.ldq.find_free()
            rob.is_load[rob_idx] = 1
            rob.lsq_idx[rob_idx] = ldq_idx
            self.ldq.valid[ldq_idx] = 1
            self.ldq.rob_idx[ldq_idx] = rob_idx
            self.ldq.addr_valid[ldq_idx] = 0
            self.ldq.done[ldq_idx] = 0
            self.ldq.speculative[ldq_idx] = 0
        if inst.is_store:
            if stq_idx is None:
                stq_idx = self.stq.find_free()
            rob.is_store[rob_idx] = 1
            rob.lsq_idx[rob_idx] = stq_idx
            self.stq.valid[stq_idx] = 1
            self.stq.rob_idx[stq_idx] = rob_idx
            self.stq.addr_valid[stq_idx] = 0
            self.stq.data_valid[stq_idx] = 0

        # Scheduler dispatch.
        if sched_slot is None:
            sched_slot = self.sched.find_free()
        if sched_slot is None:  # pragma: no cover - guarded in rename stage
            rob.done[rob_idx] = 1
            return
        sched = self.sched
        sched.valid[sched_slot] = 1
        sched.issued[sched_slot] = 0
        sched.seq[sched_slot] = seq
        sched.rob_idx[sched_slot] = rob_idx
        sched.word[sched_slot] = word
        sched.pc[sched_slot] = pc
        sched.src1_preg[sched_slot] = src1
        sched.src2_preg[sched_slot] = src2
        sched.src3_preg[sched_slot] = src3
        prf_ready = self.prf.ready
        sched.src1_ready[sched_slot] = 1 if not src1_used else prf_ready[src1]
        sched.src2_ready[sched_slot] = 1 if not src2_used else prf_ready[src2]
        sched.src3_ready[sched_slot] = 1 if not src3_used else prf_ready[src3]
        sched.note_dispatch(sched_slot)

    # --------------------------------------------------------------- fetch

    def _fetch_stage(self) -> None:
        if self._fetch_faulted or self.cycle_count < self._fetch_stalled_until:
            return
        cfg = self.config
        memory = self.memory
        fetchq = self.fetchq
        fq_valid = fetchq.valid
        fq_tail = fetchq._tail
        itlb_access = self.itlb.access
        icache_access = self.icache.access
        predictor = self.predictor
        fetch_cache = self._fetch_cache if self.fast else None
        if fetch_cache is not None and self._fetch_cache_version != memory.image_version:
            fetch_cache.clear()
            self._fetch_cache_version = memory.image_version
        pc = self._fetch_pc[0]
        ready_cycle = self.cycle_count + cfg.frontend_delay
        for _ in range(cfg.fetch_width):
            if fq_valid[fq_tail[0]]:  # inlined fetchq.is_full
                break
            if pc & 3:
                # Misaligned fetch target (e.g. a corrupted jump): the
                # fetched "instruction" faults at retirement.
                fetchq.push(pc, 0, False, 0, False,
                            predictor.history, ready_cycle,
                            fetch_fault=True)
                self._fetch_faulted = True
                break
            if not itlb_access(pc):
                self._fetch_stalled_until = self.cycle_count + cfg.tlb_miss_penalty
                if self.record_cache_symptoms:
                    self._emit_symptom("itlb_miss", pc)
                if self.symptom_handler is not None and self.symptom_handler(
                    "itlb_miss", (self.retired_count, pc)
                ):
                    return  # rollback flushed the pipeline mid-fetch
                break
            if not icache_access(pc):
                self._fetch_stalled_until = self.cycle_count + cfg.icache_miss_latency
                if self.record_cache_symptoms:
                    self._emit_symptom("icache_miss", pc)
                if self.symptom_handler is not None and self.symptom_handler(
                    "icache_miss", (self.retired_count, pc)
                ):
                    return
                break
            cached = None if fetch_cache is None else fetch_cache.get(pc)
            if cached is not None:
                word, inst = cached
            else:
                try:
                    word = memory.read(pc, 4)
                except AccessViolation:
                    fetchq.push(pc, 0, False, 0, False,
                                predictor.history, ready_cycle,
                                fetch_fault=True)
                    self._fetch_faulted = True
                    break
                inst = self._decode_cache.get(word, False)
                if inst is False:
                    inst = self._decode(word)
                if (
                    fetch_cache is not None
                    and memory.protection_at(pc) is PageProtection.READ_ONLY
                ):
                    fetch_cache[pc] = (word, inst)
            pred_taken = False
            pred_target = 0
            conf = False
            history = predictor.history
            if inst is not None and inst.is_control:
                if inst.is_cond_branch:
                    oracle_outcome = None
                    if self.branch_oracle is not None:
                        oracle_outcome = self.branch_oracle.predict(pc)
                    if oracle_outcome is not None:
                        pred_taken = oracle_outcome
                    else:
                        pred_taken = predictor.predict(pc)
                    conf = self.confidence.estimate(pc, history)
                    predictor.push_history(pred_taken)
                    if pred_taken:
                        pred_target = inst.branch_target(pc)
                elif inst.is_uncond_branch:
                    pred_taken = True
                    pred_target = inst.branch_target(pc)
                    if inst.is_call:
                        self.ras.push((pc + 4) & MASK64)
                else:  # jump format
                    if inst.is_return:
                        pred_taken = True
                        pred_target = self.ras.pop()
                    else:
                        btb_target = self.btb.lookup(pc)
                        if btb_target is not None:
                            pred_taken = True
                            pred_target = btb_target
                        if inst.is_call:
                            self.ras.push((pc + 4) & MASK64)
            # Inlined fetchq.push — the is_full check at the loop top
            # guarantees the slot is free.
            slot = fq_tail[0]
            fq_valid[slot] = 1
            fetchq.pc[slot] = pc
            fetchq.word[slot] = word
            fetchq.pred_taken[slot] = int(pred_taken)
            fetchq.pred_target[slot] = pred_target
            fetchq.conf[slot] = int(conf)
            fetchq.fetch_fault[slot] = 0
            fetchq.hist[slot] = history
            fetchq.ready_cycle[slot] = ready_cycle
            fq_tail[0] = (slot + 1) % fetchq.size
            if pred_taken:
                pc = pred_target
                self._fetch_pc[0] = pc
                return
            pc = (pc + 4) & MASK64
        self._fetch_pc[0] = pc

    # -------------------------------------------------------------- forking

    def fork(self) -> "Pipeline":
        """An independent deep copy of the full machine state.

        Fault campaigns run one golden pipeline forward and fork it at each
        injection point, so a trial only pays for the post-injection window
        instead of a whole run from reset. Registered state is copied via
        the registry; unregistered substrate (memory image, predictor and
        cache arrays, timing metadata, event wheel) is copied explicitly.
        """
        copy = Pipeline(
            self.memory.clone(),
            self._fetch_pc[0],
            config=self.config,
            collect_retired=False,
            record_cache_symptoms=self.record_cache_symptoms,
            fast=self.fast,
            memhier_targets=self.memhier_targets,
            record_memhier_symptoms=self.record_memhier_symptoms,
        )
        copy.registry.restore(self.registry.snapshot())
        # Predictors.
        copy.predictor.bimodal[:] = self.predictor.bimodal
        copy.predictor.gshare[:] = self.predictor.gshare
        copy.predictor.chooser[:] = self.predictor.chooser
        copy.predictor.history = self.predictor.history
        copy.btb.tags[:] = self.btb.tags
        copy.btb.targets[:] = self.btb.targets
        copy.ras.stack[:] = self.ras.stack
        copy.ras.top = self.ras.top
        copy.confidence.table[:] = self.confidence.table
        copy.memdep.table[:] = self.memdep.table
        # Caches, TLBs, and the MSHR file. Storage is copied in place —
        # rebinding the lists would orphan any registry closures over them
        # — and the hit/miss tallies come along so a fork's miss-rate
        # telemetry continues from the parent instead of restarting at
        # zero. (Under memhier_targets the registry restore above already
        # wrote the registered arrays; these assignments are then no-ops.)
        for mine, theirs in (
            (self.icache, copy.icache),
            (self.dcache, copy.dcache),
        ):
            theirs._tags[:] = mine._tags
            theirs._valid[:] = mine._valid
            theirs._order[:] = mine._order
            theirs.hits = mine.hits
            theirs.misses = mine.misses
        for mine, theirs in ((self.itlb, copy.itlb), (self.dtlb, copy.dtlb)):
            theirs._pages[:] = mine._pages
            theirs.hits = mine.hits
            theirs.misses = mine.misses
        copy.mshr._valid[:] = self.mshr._valid
        copy.mshr._addr[:] = self.mshr._addr
        copy.mshr.allocations = self.mshr.allocations
        copy.mshr.overflows = self.mshr.overflows
        copy._spurious_flagged = self._spurious_flagged
        # Machine status.
        copy.cycle_count = self.cycle_count
        copy.retired_count = self.retired_count
        copy.total_retired = self.total_retired
        copy.halted = self.halted
        copy.stopped = self.stopped
        copy.exception = self.exception
        copy.deadlock = self.deadlock
        copy.watchdog_counter = self.watchdog_counter
        copy.mispredict_count = self.mispredict_count
        copy.hc_mispredict_count = self.hc_mispredict_count
        copy.branch_count = self.branch_count
        copy._fetch_stalled_until = self._fetch_stalled_until
        copy._fetch_faulted = self._fetch_faulted
        copy.store_buffer_gated = self.store_buffer_gated
        # Timing metadata and the event wheel (tuples are immutable).
        copy._events = {cycle: list(events) for cycle, events in self._events.items()}
        copy._next_seq = self._next_seq
        copy.rob.seq[:] = self.rob.seq
        copy.sched.seq[:] = self.sched.seq
        copy.fetchq.ready_cycle[:] = self.fetchq.ready_cycle
        copy.storebuf.total_pushed = self.storebuf.total_pushed
        copy.storebuf.total_popped = self.storebuf.total_popped
        # The decode cache is pure and safely shared.
        copy._decode_cache = self._decode_cache
        return copy

    # -------------------------------------------------- architectural views

    def arch_reg_values(self) -> list[int]:
        """Architectural register file contents via the retirement RAT."""
        return [self.prf.values[self.arch_rat.map[areg]] for areg in range(32)]

    def full_flush(self, restart_pc: int) -> None:
        """Discard all speculative state and restart fetch at ``restart_pc``.

        Used by ReStore rollback (after architectural state is restored) and
        by deadlock recovery. The speculative RAT is re-seeded from the
        retirement RAT and the free list is rebuilt.
        """
        rob = self.rob
        for index in range(rob.size):
            rob.valid[index] = 0
            rob.seq[index] = 0
        rob.head = 0
        rob.tail = 0
        rob.count = 0
        for slot in range(self.sched.size):
            self.sched.valid[slot] = 0
            self.sched.issued[slot] = 0
        for slot in range(self.ldq.size):
            self.ldq.valid[slot] = 0
        for slot in range(self.stq.size):
            self.stq.valid[slot] = 0
        self.fetchq.clear()
        self._events.clear()
        # The event wheel just dropped every in-flight fill completion, so
        # outstanding MSHR entries would leak (and eventually wedge loads
        # behind a permanently-full file); discard them with the flush.
        self.mshr.clear()
        self.spec_rat.restore(self.arch_rat.snapshot())
        self.freelist.rebuild(set(self.arch_rat.map))
        for preg in range(self.prf.size):
            self.prf.ready[preg] = 1
        self._fetch_pc[0] = restart_pc
        self._fetch_faulted = False
        self._fetch_stalled_until = 0
        self.watchdog_counter = 0


def load_pipeline(
    program: Program,
    config: PipelineConfig | None = None,
    collect_retired: bool = False,
    record_cache_symptoms: bool = False,
    stack_bytes: int = STACK_BYTES,
    fast: bool = True,
    memhier_targets: bool = False,
    record_memhier_symptoms: bool = False,
) -> Pipeline:
    """Build a pipeline with the program loaded per the ABI conventions
    (mirrors :func:`repro.arch.simulator.load_program`)."""
    memory = SparseMemory()
    text = program.text_segment
    memory.map_region(text.base, max(len(text.data), 1), PageProtection.READ_ONLY)
    memory.load_bytes(text.base, text.data)
    data = program.data_segment
    if data.data:
        memory.map_region(data.base, len(data.data), PageProtection.READ_WRITE)
        memory.load_bytes(data.base, data.data)
    else:
        memory.map_region(data.base, 1, PageProtection.READ_WRITE)
    memory.map_region(STACK_TOP - stack_bytes, stack_bytes, PageProtection.READ_WRITE)
    pipeline = Pipeline(
        memory,
        program.entry_point,
        config=config,
        collect_retired=collect_retired,
        record_cache_symptoms=record_cache_symptoms,
        fast=fast,
        memhier_targets=memhier_targets,
        record_memhier_symptoms=record_memhier_symptoms,
    )
    pipeline.prf.values[REG_SP] = STACK_TOP - 64
    pipeline.prf.values[REG_GP] = program.data_base
    return pipeline
