"""Disassembler rendering."""

from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.isa.disassembler import disassemble, disassemble_program


class TestDisassemble:
    def test_operate(self):
        program = assemble(".text\naddq r1, r2, r3\n")
        assert disassemble(program.text_words[0]) == "addq r1, r2, r3"

    def test_literal(self):
        program = assemble(".text\naddq r1, 5, r3\n")
        assert disassemble(program.text_words[0]) == "addq r1, 5, r3"

    def test_memory(self):
        program = assemble(".text\nldq r4, -8(sp)\n")
        assert disassemble(program.text_words[0]) == "ldq r4, -8(sp)"

    def test_branch_with_pc(self):
        program = assemble(".text\nloop: br loop\n")
        text = disassemble(program.text_words[0], pc=program.text_base)
        assert hex(program.text_base) in text

    def test_halt(self):
        assert disassemble(0) == "halt"

    def test_illegal(self):
        assert disassemble(0x0000_0001).startswith(".illegal")

    @given(st.integers(0, (1 << 32) - 1))
    def test_never_crashes(self, word):
        assert isinstance(disassemble(word), str)


class TestProgramListing:
    def test_contains_labels_and_addresses(self):
        program = assemble(".text\nstart: nop\nloop: br loop\n")
        listing = disassemble_program(program)
        assert "start:" in listing and "loop:" in listing
        assert f"0x{program.text_base:08x}" in listing
