"""Per-point outcome margins from a campaign journal.

``campaign status`` and ``campaign report`` historically showed only the
aggregate interval; converged-vs-wide is a per-point question — the very
signal the adaptive planner acts on — so these helpers recompute each
injection point's Wilson margin from the journaled trial entries. They
work on *any* journal, adaptive or fixed-budget: a uniform campaign's
per-point margins are exactly what ``--adaptive`` would have equalized.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.util.stats import wilson_margin
from repro.util.tables import format_table


def journal_point_tallies(
    entries: Iterable[dict],
) -> dict[str, dict[int, list[int]]]:
    """``workload -> point -> [completed, failing]`` from journal entries.

    Deduplicates by trial key (a retried workload may re-journal a key)
    and counts only completed (``ok``) trials; harness crashes/timeouts
    carry no verdict and therefore no tally.
    """
    tallies: dict[str, dict[int, list[int]]] = {}
    seen: set[str] = set()
    for entry in entries:
        if entry.get("kind") != "trial" or entry.get("status") != "ok":
            continue
        key = entry.get("key")
        if key in seen:
            continue
        seen.add(key)
        record = entry.get("record") or {}
        per_point = tallies.setdefault(entry["workload"], {})
        tally = per_point.setdefault(int(entry["point"]), [0, 0])
        tally[0] += 1
        tally[1] += bool(record.get("failing"))
    return tallies


def point_margins(
    tallies: dict[str, dict[int, list[int]]],
) -> dict[str, list[dict]]:
    """Per-workload point rows, each with its Wilson margin (None = no
    completed trials yet)."""
    result: dict[str, list[dict]] = {}
    for workload, per_point in tallies.items():
        rows = []
        for point in sorted(per_point):
            trials, failing = per_point[point]
            margin = wilson_margin(failing, trials) if trials else None
            rows.append({
                "point": point,
                "trials": trials,
                "failing": failing,
                "margin": margin,
            })
        result[workload] = rows
    return result


def format_point_margins(
    tallies: dict[str, dict[int, list[int]]],
    target: float,
    widest: int = 3,
) -> str:
    """A per-workload margin table: convergence counts against ``target``
    plus the widest points still open.

    ``target`` is the manifest's planner margin when the journal is
    adaptive, or the caller's reference margin for a fixed-budget one.
    """
    per_workload = point_margins(tallies)
    rows = []
    for workload in sorted(per_workload):
        points = per_workload[workload]
        margins = [
            row["margin"] if row["margin"] is not None else math.inf
            for row in points
        ]
        converged = sum(1 for m in margins if m <= target)
        finite = sorted(m for m in margins if not math.isinf(m))
        median = finite[len(finite) // 2] if finite else None
        open_points = sorted(
            (row for row in points
             if (row["margin"] is None or row["margin"] > target)),
            key=lambda row: (-(row["margin"]
                               if row["margin"] is not None else math.inf),
                             row["point"]),
        )[:widest]
        widest_text = " ".join(
            f"{row['point']}@" + (f"{row['margin']:.3f}"
                                  if row["margin"] is not None else "n/a")
            for row in open_points
        ) or "-"
        rows.append([
            workload,
            str(len(points)),
            f"{converged}/{len(points)}",
            f"{median:.3f}" if median is not None else "n/a",
            widest_text,
        ])
    return format_table(
        ["workload", "points", f"<= {target:g}", "median", "widest open"],
        rows,
        title=f"Per-point Wilson margins (target {target:g})",
    )
