"""Golden-artifact cache benchmark: cold vs. warm campaign startup.

Every campaign work unit pays a startup preamble before its first fault:
the golden run, the comparator prefix counts, and the walk to the first
injection point. The :mod:`repro.cache` store memoizes that preamble on
disk, so a warm unit loads it instead of recomputing. This benchmark
measures the difference two ways:

- ``*_unit_starts_per_sec_{cold,warm}`` — single-trial workload units
  per second (one trial pins down the full startup path, including the
  snapshot fast-forward, while keeping the common trial cost identical
  on both sides). Cold units each write into a fresh cache directory;
  warm units all hit one populated directory.
- ``campaign_trials_per_sec_{cold,warm}`` — end-to-end ``run_campaign``
  trial throughput against a cold vs. a warm cache directory.

plus the machine-independent ratios the CI gate pins:

- ``arch_cache_warm_speedup``  — cold/warm arch unit startup (gate: 2x)
- ``uarch_cache_warm_speedup`` — cold/warm uarch unit startup

Results use the same ``repro-perf/1`` schema as ``perf/perfbench.py``,
so ``perf/compare.py`` can diff them against the committed baseline::

    PYTHONPATH=src python benchmarks/cache_speedup.py --scale smoke \
        --out benchmarks/out/cache_speedup.json --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import __version__  # noqa: E402
from repro.cache import GoldenArtifactCache  # noqa: E402
from repro.campaign import run_campaign  # noqa: E402
from repro.faults import ArchCampaignConfig, UarchCampaignConfig  # noqa: E402
from repro.faults import arch_campaign, uarch_campaign  # noqa: E402

SCHEMA = "repro-perf/1"
SEED = 2005

SCALES = {
    "smoke": {
        "min_seconds": 0.8,
        "arch_workloads": ("gcc", "gzip", "mcf"),
        "uarch_workloads": ("gcc", "mcf"),
        "campaign": {"trials_per_workload": 12, "injection_points": 6,
                     "workloads": ("gzip", "mcf")},
    },
    "full": {
        "min_seconds": 3.0,
        "arch_workloads": ("bzip2", "gap", "gcc", "gzip", "mcf", "parser",
                           "vortex"),
        "uarch_workloads": ("gcc", "gzip", "mcf", "parser"),
        "campaign": {"trials_per_workload": 40, "injection_points": 10,
                     "workloads": ("gzip", "mcf", "parser")},
    },
}

_LEVELS = {
    "arch": (arch_campaign, ArchCampaignConfig, {}),
    "uarch": (uarch_campaign, UarchCampaignConfig, {"window_cycles": 1200}),
}


def _unit_config(level: str, workload: str):
    _, config_cls, extra = _LEVELS[level]
    return config_cls(
        trials_per_workload=1, injection_points=1, seed=SEED,
        workloads=(workload,), **extra,
    )


def _bench_unit_starts(level: str, workloads, min_seconds: float):
    """(cold units/s, warm units/s): single-trial workload runs, each
    cold one against a fresh cache directory, each warm one against the
    same populated directory."""
    module = _LEVELS[level][0]
    configs = {name: _unit_config(level, name) for name in workloads}
    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as root:
        warm_dir = os.path.join(root, "warm")
        for name in workloads:  # populate (and JIT-warm) outside the clock
            module.run_workload_trials(
                configs[name], name, cache=GoldenArtifactCache(warm_dir)
            )

        fills = 0
        units = 0
        start = time.perf_counter()
        while True:
            for name in workloads:
                cold_dir = os.path.join(root, f"cold-{fills}")
                fills += 1
                module.run_workload_trials(
                    configs[name], name, cache=GoldenArtifactCache(cold_dir)
                )
                units += 1
            cold_elapsed = time.perf_counter() - start
            if cold_elapsed >= min_seconds:
                break
        cold_rate = units / cold_elapsed

        units = 0
        cache = GoldenArtifactCache(warm_dir)
        start = time.perf_counter()
        while True:
            for name in workloads:
                outcome = module.run_workload_trials(
                    configs[name], name, cache=cache
                )
                assert outcome.golden_cache == "hit"
                units += 1
            warm_elapsed = time.perf_counter() - start
            if warm_elapsed >= min_seconds:
                break
        warm_rate = units / warm_elapsed
    return cold_rate, warm_rate


def _bench_campaign(campaign_cfg: dict):
    """(cold trials/s, warm trials/s) for an end-to-end arch campaign."""
    config = ArchCampaignConfig(seed=SEED, **campaign_cfg)
    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as root:
        cache_dir = os.path.join(root, "cache")
        rates = []
        for _ in ("cold", "warm"):
            start = time.perf_counter()
            report = run_campaign("arch", config, cache_dir=cache_dir)
            elapsed = time.perf_counter() - start
            rates.append(len(report.result.trials) / elapsed)
    return rates[0], rates[1]


def run_benchmarks(scale: str) -> dict:
    knobs = SCALES[scale]
    min_seconds = knobs["min_seconds"]
    metrics: dict[str, dict] = {}

    for level in ("arch", "uarch"):
        workloads = knobs[f"{level}_workloads"]
        cold, warm = _bench_unit_starts(level, workloads, min_seconds)
        details = {"workloads": list(workloads)}
        metrics[f"{level}_unit_starts_per_sec_cold"] = {
            "value": round(cold, 2), "unit": "units/s", "details": details,
        }
        metrics[f"{level}_unit_starts_per_sec_warm"] = {
            "value": round(warm, 2), "unit": "units/s", "details": details,
        }
        metrics[f"{level}_cache_warm_speedup"] = {
            "value": round(warm / cold, 2), "unit": "x", "details": details,
        }

    cold, warm = _bench_campaign(knobs["campaign"])
    metrics["campaign_trials_per_sec_cold"] = {
        "value": round(cold, 2), "unit": "trials/s",
        "details": dict(knobs["campaign"]),
    }
    metrics["campaign_trials_per_sec_warm"] = {
        "value": round(warm, 2), "unit": "trials/s",
        "details": dict(knobs["campaign"]),
    }

    return {
        "schema": SCHEMA,
        "version": __version__,
        "scale": scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--out", default=None,
                        help="write JSON here (default: stdout)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail (exit 2) when arch_cache_warm_speedup "
                             "lands below this ratio")
    args = parser.parse_args(argv)

    report = run_benchmarks(args.scale)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(payload)
        print(f"wrote {args.out}")
    sys.stdout.write(payload)

    if args.min_speedup is not None:
        speedup = report["metrics"]["arch_cache_warm_speedup"]["value"]
        if speedup < args.min_speedup:
            print(f"FAIL: arch_cache_warm_speedup {speedup}x is below the "
                  f"required {args.min_speedup}x", file=sys.stderr)
            return 2
        print(f"OK: arch_cache_warm_speedup {speedup}x >= "
              f"{args.min_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
