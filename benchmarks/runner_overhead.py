"""Smoke-scale benchmark of campaign-runner overhead and parallel speedup.

Runs a reduced uarch campaign three ways — serial, ``--jobs 2``, and
``--jobs 4`` — plus a serial run with journaling enabled, and records
wall-clock times under ``benchmarks/out/runner_overhead.{json,md}`` so
later PRs can track runner regressions::

    PYTHONPATH=src python benchmarks/runner_overhead.py

All four configurations must produce identical trial records; the script
asserts this before writing results.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro import __version__
from repro.campaign import run_campaign
from repro.faults import UarchCampaignConfig

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

CONFIG = UarchCampaignConfig(
    trials_per_workload=24,
    injection_points=8,
    window_cycles=800,
    workloads=("gcc", "gzip", "mcf", "parser"),
)


def timed_run(**kwargs) -> tuple[float, object]:
    start = time.perf_counter()
    report = run_campaign("uarch", CONFIG, **kwargs)
    return time.perf_counter() - start, report


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    results = []
    baseline_trials = None
    baseline_seconds = None
    variants = [
        ("serial", {}),
        ("serial+journal", {"journal_path": os.path.join(OUT_DIR, "_bench.jsonl")}),
        ("jobs=2", {"jobs": 2}),
        ("jobs=4", {"jobs": 4}),
    ]
    for label, kwargs in variants:
        journal = kwargs.get("journal_path")
        if journal and os.path.exists(journal):
            os.remove(journal)
        seconds, report = timed_run(**kwargs)
        if baseline_trials is None:
            baseline_trials = report.result.trials
            baseline_seconds = seconds
        else:
            assert report.result.trials == baseline_trials, (
                f"{label} produced different trial records than serial"
            )
        results.append(
            {
                "variant": label,
                "seconds": round(seconds, 3),
                "speedup_vs_serial": round(baseline_seconds / seconds, 3),
                "trials": len(report.result.trials),
                "outcomes": report.outcome_counts(),
            }
        )
        print(f"{label:>16}: {seconds:6.2f}s  "
              f"({baseline_seconds / seconds:4.2f}x vs serial)")
    journal = os.path.join(OUT_DIR, "_bench.jsonl")
    if os.path.exists(journal):
        os.remove(journal)

    payload = {
        "benchmark": "runner_overhead",
        "version": __version__,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "config": {
            "trials_per_workload": CONFIG.trials_per_workload,
            "injection_points": CONFIG.injection_points,
            "window_cycles": CONFIG.window_cycles,
            "workloads": list(CONFIG.workloads),
        },
        "results": results,
    }
    with open(os.path.join(OUT_DIR, "runner_overhead.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    lines = [
        "# Campaign runner overhead (smoke scale)",
        "",
        f"Reduced uarch campaign: {CONFIG.trials_per_workload} trials x "
        f"{len(CONFIG.workloads)} workloads, window {CONFIG.window_cycles} "
        f"cycles. Python {platform.python_version()}, repro {__version__}, "
        f"{os.cpu_count()} CPU(s).",
        "",
        "| variant | seconds | speedup vs serial |",
        "|---|---|---|",
    ]
    for row in results:
        lines.append(
            f"| {row['variant']} | {row['seconds']:.2f} | "
            f"{row['speedup_vs_serial']:.2f}x |"
        )
    lines += [
        "",
        "All variants produce bit-identical trial records; journaling adds "
        "one flushed JSONL write per trial; parallel speedup is bounded by "
        "the slowest workload since the fan-out unit is one workload — and "
        "by the machine's core count: on a single-CPU host (like CI "
        "containers) the jobs variants only measure pool overhead, so "
        "compare speedups across PRs on like-for-like hosts.",
        "",
    ]
    with open(os.path.join(OUT_DIR, "runner_overhead.md"), "w") as handle:
        handle.write("\n".join(lines))


if __name__ == "__main__":
    main()
