"""Pure execution semantics of the ISA.

Both the architectural simulator and the pipeline model's functional units
call into this module, so the two can never disagree about what an
instruction computes — which is what lets the fault-injection framework use
the architectural simulator as a golden reference for the pipeline.

Everything here is a pure function of the decoded instruction and its
operand values. Memory access and exceptions are the caller's business.

Dispatch is table-driven: each operation is one small handler function, and
``(opcode, func)``-indexed dictionaries replace per-call ``if``/``elif``
chains. The tables are also exported (:func:`value_handler`,
:data:`BRANCH_PREDICATES`, :func:`load_extender`, :func:`store_mask`) so the
architectural simulator's instruction compiler can bind a handler once per
static instruction and skip all per-step dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa import opcodes as op
from repro.isa.instructions import DecodedInst
from repro.util.bitops import (
    MASK32,
    MASK64,
    sign_extend,
    to_signed64,
    to_unsigned64,
)

SIGNED_MIN = -(1 << 63)
SIGNED_MAX = (1 << 63) - 1


@dataclass(frozen=True)
class OperateResult:
    """Result of an operate-format instruction."""

    value: int
    overflow: bool = False  # signals an arithmetic trap for *V opcodes


def operand_b(inst: DecodedInst, rb_value: int) -> int:
    """The second operand: the literal when present, else the RB value."""
    if inst.is_literal:
        return inst.literal
    return rb_value


def _signed_overflows(value: int) -> bool:
    return not SIGNED_MIN <= value <= SIGNED_MAX


# ------------------------------------------------------- operate handlers
#
# A "value handler" maps two unsigned-64 operands to the unsigned-64
# result; a "trapping handler" additionally reports overflow. One handler
# per operation — these small functions *are* the semantics, and every
# dispatch path (table lookup here, bound closure in the simulator) calls
# the same object.


def _addl(a: int, b: int) -> int:
    return sign_extend((a + b) & MASK32, 32)


def _subl(a: int, b: int) -> int:
    return sign_extend((a - b) & MASK32, 32)


def _addq(a: int, b: int) -> int:
    return (a + b) & MASK64


def _subq(a: int, b: int) -> int:
    return (a - b) & MASK64


def _cmpeq(a: int, b: int) -> int:
    return 1 if a == b else 0


def _cmplt(a: int, b: int) -> int:
    return 1 if to_signed64(a) < to_signed64(b) else 0


def _cmple(a: int, b: int) -> int:
    return 1 if to_signed64(a) <= to_signed64(b) else 0


def _cmpult(a: int, b: int) -> int:
    return 1 if a < b else 0


def _cmpule(a: int, b: int) -> int:
    return 1 if a <= b else 0


def _and(a: int, b: int) -> int:
    return a & b


def _bic(a: int, b: int) -> int:
    return a & ~b & MASK64


def _bis(a: int, b: int) -> int:
    return a | b


def _ornot(a: int, b: int) -> int:
    return (a | (~b & MASK64)) & MASK64


def _xor(a: int, b: int) -> int:
    return a ^ b


def _eqv(a: int, b: int) -> int:
    return (a ^ b) ^ MASK64


def _sll(a: int, b: int) -> int:
    return (a << (b & 0x3F)) & MASK64


def _srl(a: int, b: int) -> int:
    return a >> (b & 0x3F)


def _sra(a: int, b: int) -> int:
    return to_unsigned64(to_signed64(a) >> (b & 0x3F))


def _mull(a: int, b: int) -> int:
    return sign_extend((a * b) & MASK32, 32)


def _mulq(a: int, b: int) -> int:
    return (a * b) & MASK64


def _umulh(a: int, b: int) -> int:
    return ((a * b) >> 64) & MASK64


def _addqv(a: int, b: int) -> tuple[int, bool]:
    total = to_signed64(a) + to_signed64(b)
    return to_unsigned64(total), _signed_overflows(total)


def _subqv(a: int, b: int) -> tuple[int, bool]:
    total = to_signed64(a) - to_signed64(b)
    return to_unsigned64(total), _signed_overflows(total)


def _mulqv(a: int, b: int) -> tuple[int, bool]:
    product = to_signed64(a) * to_signed64(b)
    return to_unsigned64(product), _signed_overflows(product)


VALUE_HANDLERS: dict[tuple[int, int], Callable[[int, int], int]] = {
    (op.OP_INTA, op.FUNC_ADDL): _addl,
    (op.OP_INTA, op.FUNC_SUBL): _subl,
    (op.OP_INTA, op.FUNC_ADDQ): _addq,
    (op.OP_INTA, op.FUNC_SUBQ): _subq,
    (op.OP_INTA, op.FUNC_CMPEQ): _cmpeq,
    (op.OP_INTA, op.FUNC_CMPLT): _cmplt,
    (op.OP_INTA, op.FUNC_CMPLE): _cmple,
    (op.OP_INTA, op.FUNC_CMPULT): _cmpult,
    (op.OP_INTA, op.FUNC_CMPULE): _cmpule,
    (op.OP_INTL, op.FUNC_AND): _and,
    (op.OP_INTL, op.FUNC_BIC): _bic,
    (op.OP_INTL, op.FUNC_BIS): _bis,
    (op.OP_INTL, op.FUNC_ORNOT): _ornot,
    (op.OP_INTL, op.FUNC_XOR): _xor,
    (op.OP_INTL, op.FUNC_EQV): _eqv,
    (op.OP_INTS, op.FUNC_SLL): _sll,
    (op.OP_INTS, op.FUNC_SRL): _srl,
    (op.OP_INTS, op.FUNC_SRA): _sra,
    (op.OP_INTM, op.FUNC_MULL): _mull,
    (op.OP_INTM, op.FUNC_MULQ): _mulq,
    (op.OP_INTM, op.FUNC_UMULH): _umulh,
}

TRAPPING_HANDLERS: dict[tuple[int, int], Callable[[int, int], tuple[int, bool]]] = {
    (op.OP_INTA, op.FUNC_ADDQV): _addqv,
    (op.OP_INTA, op.FUNC_SUBQV): _subqv,
    (op.OP_INTM, op.FUNC_MULQV): _mulqv,
}

_CMOV_FUNCS = frozenset(
    (op.FUNC_CMOVEQ, op.FUNC_CMOVNE, op.FUNC_CMOVLT, op.FUNC_CMOVGE)
)

_OPCODE_GROUPS = {
    op.OP_INTA: "INTA",
    op.OP_INTL: "INTL",
    op.OP_INTS: "INTS",
    op.OP_INTM: "INTM",
}


def value_handler(inst: DecodedInst) -> Callable[[int, int], int] | None:
    """The non-trapping value handler for an operate instruction, if any."""
    return VALUE_HANDLERS.get((inst.opcode, inst.spec.func))


def trapping_handler(
    inst: DecodedInst,
) -> Callable[[int, int], tuple[int, bool]] | None:
    """The overflow-reporting handler for a *V operate instruction, if any."""
    return TRAPPING_HANDLERS.get((inst.opcode, inst.spec.func))


def execute_operate(inst: DecodedInst, a: int, b: int) -> OperateResult:
    """Compute an operate-format instruction on unsigned-64 operands."""
    opcode = inst.opcode
    func = inst.spec.func
    handler = VALUE_HANDLERS.get((opcode, func))
    if handler is not None:
        return OperateResult(handler(a, b))
    trapping = TRAPPING_HANDLERS.get((opcode, func))
    if trapping is not None:
        value, overflow = trapping(a, b)
        return OperateResult(value, overflow=overflow)
    if opcode == op.OP_INTL and func in _CMOV_FUNCS:
        # CMOV also reads RC; the caller merges via execute_cmov.
        raise ValueError("CMOV must be executed with execute_cmov")
    group = _OPCODE_GROUPS.get(opcode)
    if group is None:
        raise ValueError(f"{inst.mnemonic} is not an operate instruction")
    raise ValueError(f"unknown {group} function 0x{func:02x}")


def is_cmov(inst: DecodedInst) -> bool:
    """True for conditional-move instructions, which also read RC."""
    return inst.is_cmov


CMOV_PREDICATES: dict[int, Callable[[int], bool]] = {
    op.FUNC_CMOVEQ: lambda a: a == 0,
    op.FUNC_CMOVNE: lambda a: a != 0,
    op.FUNC_CMOVLT: lambda a: to_signed64(a) < 0,
    op.FUNC_CMOVGE: lambda a: to_signed64(a) >= 0,
}


def cmov_predicate(inst: DecodedInst) -> Callable[[int], bool]:
    """The take-condition predicate of a conditional move."""
    predicate = CMOV_PREDICATES.get(inst.spec.func)
    if predicate is None:
        raise ValueError(f"{inst.mnemonic} is not a conditional move")
    return predicate


def execute_cmov(inst: DecodedInst, a: int, b: int, old_rc: int) -> OperateResult:
    """Conditional move: RC = B if cond(A) else old RC."""
    return OperateResult(b if cmov_predicate(inst)(a) else old_rc)


BRANCH_PREDICATES: dict[int, Callable[[int], bool]] = {
    op.OP_BEQ: lambda a: a == 0,
    op.OP_BNE: lambda a: a != 0,
    op.OP_BLT: lambda a: to_signed64(a) < 0,
    op.OP_BGE: lambda a: to_signed64(a) >= 0,
    op.OP_BLE: lambda a: to_signed64(a) <= 0,
    op.OP_BGT: lambda a: to_signed64(a) > 0,
    op.OP_BLBC: lambda a: (a & 1) == 0,
    op.OP_BLBS: lambda a: (a & 1) == 1,
}


def branch_predicate(inst: DecodedInst) -> Callable[[int], bool]:
    """The taken-condition predicate of a conditional branch."""
    predicate = BRANCH_PREDICATES.get(inst.opcode)
    if predicate is None:
        raise ValueError(f"{inst.mnemonic} is not a conditional branch")
    return predicate


def branch_taken(inst: DecodedInst, a: int) -> bool:
    """Evaluate a conditional branch's condition on the RA operand."""
    return branch_predicate(inst)(a)


def signed_displacement(inst: DecodedInst) -> int:
    """The memory-format displacement as a signed integer."""
    offset = inst.disp
    if offset >= 1 << 63:
        offset -= 1 << 64
    return offset


def effective_address(inst: DecodedInst, base: int) -> int:
    """Base-plus-displacement address of a memory operation."""
    return (base + signed_displacement(inst)) & MASK64


def lda_displacement(inst: DecodedInst) -> int:
    """The signed displacement of LDA / LDAH (scaled for LDAH)."""
    offset = signed_displacement(inst)
    if inst.opcode == op.OP_LDAH:
        offset *= 65536
    return offset


def lda_value(inst: DecodedInst, base: int) -> int:
    """Result of LDA / LDAH (address arithmetic, no memory access)."""
    return (base + lda_displacement(inst)) & MASK64


def jump_target(rb_value: int) -> int:
    """Target of a jump-format instruction: RB with the low bits cleared."""
    return rb_value & ~0x3 & MASK64


LOAD_EXTENDERS: dict[int, Callable[[int], int]] = {
    op.OP_LDBU: lambda raw: raw & 0xFF,
    op.OP_LDL: lambda raw: sign_extend(raw & MASK32, 32),
    op.OP_LDQ: lambda raw: raw & MASK64,
}


def load_extender(inst: DecodedInst) -> Callable[[int], int]:
    """The raw-bytes-to-register extension function of a load."""
    extender = LOAD_EXTENDERS.get(inst.opcode)
    if extender is None:
        raise ValueError(f"{inst.mnemonic} is not a load")
    return extender


def extend_loaded(inst: DecodedInst, raw: int) -> int:
    """Extend raw loaded bytes per the load flavour."""
    return load_extender(inst)(raw)


STORE_MASKS: dict[int, int] = {
    op.OP_STB: 0xFF,
    op.OP_STL: MASK32,
    op.OP_STQ: MASK64,
}


def store_mask(inst: DecodedInst) -> int:
    """The access-width mask applied to store data."""
    mask = STORE_MASKS.get(inst.opcode)
    if mask is None:
        raise ValueError(f"{inst.mnemonic} is not a store")
    return mask


def store_value(inst: DecodedInst, value: int) -> int:
    """Truncate the store data to the access width."""
    return value & store_mask(inst)
