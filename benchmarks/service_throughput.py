"""Throughput benchmark for the campaign service worker fleet.

Submits the same sharded fault-injection job to an in-process
scheduler + :class:`LocalWorkerPool` at 1, 2, and 4 workers and records
end-to-end trials/second for each fleet size (submit → journal
finalized), plus the scaling ratio relative to the single-worker run.
Every run executes the identical trial set — the serial-equivalence
invariant means fleet size can only change wall-clock, never results —
and the benchmark asserts the outcome tables agree before reporting.

Results are written as schema'd JSON (see ``SCHEMA``). Usage::

    PYTHONPATH=src python benchmarks/service_throughput.py --scale smoke \
        --out benchmarks/out/service_throughput.json

By default units execute on a process pool — the production
configuration, one OS process per worker — with workers leasing in
batches of ``--lease-batch`` units per scheduler call. Scaling numbers
from a process fleet are only honest on a multi-core host, so when
``os.cpu_count() < 2`` the benchmark refuses to publish: at smoke scale
it warns and exits 0 without writing ``--out`` (CI smoke stays green on
tiny runners), at full scale it exits 1. Pass ``--executor thread`` to
measure the GIL-bound configuration anyway.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import __version__  # noqa: E402
from repro.service import (  # noqa: E402
    CampaignScheduler,
    JobSpec,
    LocalWorkerPool,
    ResultStore,
    build_config,
)
from repro.service.store import JOB_TERMINAL_STATES  # noqa: E402

SCHEMA = "repro-service-bench/1"

WORKER_COUNTS = (1, 2, 4)

# Per-scale campaign sizing. Shard count is fixed at the largest fleet
# size so every run decomposes into the same units and only the worker
# count varies between measurements.
SCALES = {
    "smoke": {
        "level": "arch",
        "config": {
            "trials_per_workload": 24,
            "injection_points": 8,
            "workloads": ["gzip", "mcf"],
            "seed": 2005,
        },
        "shards_per_workload": max(WORKER_COUNTS),
    },
    "full": {
        "level": "arch",
        "config": {
            "trials_per_workload": 60,
            "injection_points": 12,
            "workloads": ["gzip", "mcf", "parser"],
            "seed": 2005,
        },
        "shards_per_workload": max(WORKER_COUNTS),
    },
}

POLL_INTERVAL = 0.01


async def _run_job(spec: JobSpec, workers: int, executor_kind: str,
                   lease_batch: int, data_dir: str) -> dict:
    """One timed run: submit, drain with ``workers`` workers, finalize."""
    store = ResultStore(":memory:")
    scheduler = CampaignScheduler(store, data_dir)
    pool = LocalWorkerPool(
        scheduler, workers=workers, executor_kind=executor_kind,
        lease_batch=lease_batch, poll_interval=POLL_INTERVAL,
    )
    try:
        pool.start()
        start = time.perf_counter()
        view = scheduler.submit(spec)
        job_id = view["job_id"]
        while store.job(job_id)["state"] not in JOB_TERMINAL_STATES:
            await asyncio.sleep(POLL_INTERVAL)
        elapsed = time.perf_counter() - start
        final = scheduler.job_view(job_id)
    finally:
        await pool.stop()
        store.close()
    if final["state"] != "done":
        raise RuntimeError(
            f"benchmark job ended {final['state']!r}: {final.get('error')}"
        )
    return {
        "workers": workers,
        "seconds": elapsed,
        "trials": final["trials"],
        "outcomes": final["outcomes"],
    }


def run_benchmarks(scale: str, executor_kind: str, lease_batch: int,
                   data_dir: str) -> dict:
    knobs = SCALES[scale]
    spec = JobSpec(
        level=knobs["level"],
        config=build_config(knobs["level"], knobs["config"]),
        shards_per_workload=knobs["shards_per_workload"],
    )

    # Warm-up: one throwaway single-worker run so decode caches and
    # executor start-up cost don't land in the first measurement.
    asyncio.run(_run_job(spec, 1, executor_kind, lease_batch, data_dir))

    runs = [
        asyncio.run(_run_job(spec, workers, executor_kind, lease_batch,
                             data_dir))
        for workers in WORKER_COUNTS
    ]

    tables = {json.dumps(run["outcomes"], sort_keys=True) for run in runs}
    if len(tables) != 1:
        raise RuntimeError(
            f"outcome tables diverged across fleet sizes: {sorted(tables)}"
        )

    metrics: dict[str, dict] = {}
    base_rate = runs[0]["trials"] / runs[0]["seconds"]
    for run in runs:
        rate = run["trials"] / run["seconds"]
        metrics[f"service_trials_per_sec_{run['workers']}w"] = {
            "value": round(rate, 2),
            "unit": "trials/s",
            "details": {
                "workers": run["workers"],
                "trials": run["trials"],
                "seconds": round(run["seconds"], 3),
            },
        }
        if run["workers"] > 1:
            metrics[f"service_scaling_{run['workers']}w"] = {
                "value": round(rate / base_rate, 2),
                "unit": "x vs 1 worker",
                "details": {"workers": run["workers"]},
            }

    return {
        "schema": SCHEMA,
        "version": __version__,
        "scale": scale,
        "executor": executor_kind,
        "lease_batch": lease_batch,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "job": {
            "level": knobs["level"],
            "config": knobs["config"],
            "shards_per_workload": knobs["shards_per_workload"],
        },
        "outcomes": runs[0]["outcomes"],
        "metrics": metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="process",
                        help="how workers run units (default: process)")
    parser.add_argument("--lease-batch", type=int, default=4,
                        help="units leased per scheduler call (default: 4)")
    parser.add_argument("--out", default=None,
                        help="write JSON here (default: stdout)")
    args = parser.parse_args(argv)

    if args.lease_batch < 1:
        parser.error(f"--lease-batch must be >= 1, got {args.lease_batch}")

    cpus = os.cpu_count() or 1
    if args.executor == "process" and cpus < 2:
        message = (
            f"service_throughput: host has cpu_count={cpus}; a process-"
            f"fleet scaling baseline from a single-core machine would be "
            f"dishonest, refusing to publish one"
        )
        if args.scale == "smoke":
            print(f"WARNING: {message} (smoke scale: exiting 0, "
                  f"no output written)", file=sys.stderr)
            return 0
        print(f"ERROR: {message}", file=sys.stderr)
        return 1

    import tempfile

    with tempfile.TemporaryDirectory(prefix="service-bench-") as data_dir:
        report = run_benchmarks(args.scale, args.executor, args.lease_batch,
                                data_dir)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(payload)
        print(f"wrote {args.out}")
    sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
