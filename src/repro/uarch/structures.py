"""Pipeline storage structures.

Each structure owns parallel lists of integer fields and registers every
slot with the :class:`~repro.uarch.latches.StateRegistry`. Field widths
match structure sizes exactly (a 6-bit ROB index for a 64-entry ROB, a
7-bit physical register number for 128 registers, ...), so a corrupted
field always holds an in-range — but possibly wrong — value, exactly like
flipped hardware bits.

The pipeline logic in :mod:`repro.uarch.pipeline` reads these fields at the
moment the hardware would (operands at register read, store data at
retirement, ...), so an injected flip matters during precisely the window
in which the real latch is live.
"""

from __future__ import annotations

from repro.uarch.config import PipelineConfig
from repro.uarch.latches import StateRegistry

# Exception codes stored in the ROB's 3-bit exception field.
EXC_NONE = 0
EXC_ACCESS = 1
EXC_ALIGN = 2
EXC_ARITH = 3
EXC_ILLEGAL = 4

EXC_NAMES = {
    EXC_NONE: "none",
    EXC_ACCESS: "access_violation",
    EXC_ALIGN: "alignment_fault",
    EXC_ARITH: "arithmetic_trap",
    EXC_ILLEGAL: "illegal_opcode",
}


def _bits_for(count: int) -> int:
    """Width needed to index ``count`` entries."""
    width = 1
    while (1 << width) < count:
        width += 1
    return width


class FetchQueue:
    """32-entry circular queue between fetch and decode/rename.

    An SRAM structure in the paper's model (an ECC target of the hardened
    pipeline). ``ready_cycle`` is timing metadata modelling front-end depth,
    not stored bits.
    """

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        size = config.fetch_queue_entries
        self.size = size
        self.valid = [0] * size
        self.pc = [0] * size
        self.word = [0] * size
        self.pred_taken = [0] * size
        self.pred_target = [0] * size
        self.conf = [0] * size
        self.fetch_fault = [0] * size
        self.hist = [0] * size
        self.ready_cycle = [0] * size  # unregistered timing metadata
        self._head = [0]
        self._tail = [0]
        index_bits = _bits_for(size)
        registry.register_list("fetchq", "ram", "fetchq.valid", self.valid, 1)
        registry.register_list("fetchq", "ram", "fetchq.pc", self.pc, 64)
        registry.register_list("fetchq", "ram", "fetchq.word", self.word, 32)
        registry.register_list("fetchq", "ram", "fetchq.pred_taken", self.pred_taken, 1)
        registry.register_list("fetchq", "ram", "fetchq.pred_target", self.pred_target, 64)
        registry.register_list("fetchq", "ram", "fetchq.conf", self.conf, 1)
        registry.register_list("fetchq", "ram", "fetchq.fetch_fault", self.fetch_fault, 1)
        registry.register_list("fetchq", "ram", "fetchq.hist", self.hist, config.history_bits)
        registry.register_list("fetchq", "data", "fetchq.head", self._head, index_bits)
        registry.register_list("fetchq", "data", "fetchq.tail", self._tail, index_bits)

    @property
    def head(self) -> int:
        return self._head[0]

    @head.setter
    def head(self, value: int) -> None:
        self._head[0] = value % self.size

    @property
    def tail(self) -> int:
        return self._tail[0]

    @tail.setter
    def tail(self, value: int) -> None:
        self._tail[0] = value % self.size

    def is_full(self) -> bool:
        return self.valid[self.tail] == 1

    def is_empty(self) -> bool:
        return self.valid[self.head] == 0

    def clear(self) -> None:
        for index in range(self.size):
            self.valid[index] = 0
        self.head = 0
        self.tail = 0

    def push(
        self,
        pc: int,
        word: int,
        pred_taken: bool,
        pred_target: int,
        conf: bool,
        hist: int,
        ready_cycle: int,
        fetch_fault: bool = False,
    ) -> bool:
        slot = self._tail[0]
        if self.valid[slot]:
            return False
        self.valid[slot] = 1
        self.pc[slot] = pc
        self.word[slot] = word
        self.pred_taken[slot] = int(pred_taken)
        self.pred_target[slot] = pred_target
        self.conf[slot] = int(conf)
        self.fetch_fault[slot] = int(fetch_fault)
        self.hist[slot] = hist
        self.ready_cycle[slot] = ready_cycle
        self._tail[0] = (slot + 1) % self.size
        return True

    def front_ready(self, now: int) -> int | None:
        """Slot index of the head entry if present and past front-end delay."""
        slot = self._head[0]
        if self.valid[slot] and self.ready_cycle[slot] <= now:
            return slot
        return None

    def pop(self) -> None:
        slot = self._head[0]
        self.valid[slot] = 0
        self._head[0] = (slot + 1) % self.size


class PhysicalRegisterFile:
    """128 x 64-bit physical registers plus a ready scoreboard."""

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        self.size = config.physical_registers
        self.values = [0] * self.size
        self.ready = [1] * self.size
        registry.register_list("prf", "ram", "prf.value", self.values, 64)
        registry.register_list("prf", "ctrl", "prf.ready", self.ready, 1)


class RegisterAliasTable:
    """Architectural-to-physical mapping (speculative or retirement copy)."""

    def __init__(self, name: str, config: PipelineConfig, registry: StateRegistry):
        self.name = name
        preg_bits = _bits_for(config.physical_registers)
        # Identity-map the first 32 physical registers initially.
        self.map = list(range(32))
        registry.register_list(name, "ram", f"{name}.map", self.map, preg_bits)

    def snapshot(self) -> list[int]:
        return list(self.map)

    def restore(self, snapshot: list[int]) -> None:
        self.map[:] = snapshot


class FreeList:
    """Circular free list of physical register numbers."""

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        self.capacity = config.physical_registers
        preg_bits = _bits_for(config.physical_registers)
        # Registers 32..127 start free; slots is a ring buffer.
        self.slots = list(range(32, config.physical_registers)) + [0] * 32
        self._head = [0]
        self._tail = [config.physical_registers - 32]
        self._count = [config.physical_registers - 32]
        registry.register_list("freelist", "ram", "freelist.slot", self.slots, preg_bits)
        index_bits = _bits_for(self.capacity)
        registry.register_list("freelist", "data", "freelist.head", self._head, index_bits)
        registry.register_list("freelist", "data", "freelist.tail", self._tail, index_bits)
        registry.register_list("freelist", "data", "freelist.count", self._count, index_bits + 1)

    @property
    def count(self) -> int:
        return self._count[0]

    def allocate(self) -> int | None:
        if self._count[0] <= 0:
            return None
        preg = self.slots[self._head[0]]
        self._head[0] = (self._head[0] + 1) % self.capacity
        self._count[0] -= 1
        return preg

    def free(self, preg: int) -> None:
        self.slots[self._tail[0]] = preg
        self._tail[0] = (self._tail[0] + 1) % self.capacity
        self._count[0] = min(self.capacity, self._count[0] + 1)

    def rebuild(self, in_use: set[int]) -> None:
        """Reconstruct from scratch: everything not in ``in_use`` is free."""
        free_regs = [preg for preg in range(self.capacity) if preg not in in_use]
        for index, preg in enumerate(free_regs):
            self.slots[index] = preg
        self._head[0] = 0
        self._tail[0] = len(free_regs) % self.capacity
        self._count[0] = len(free_regs)


class Scheduler:
    """32-entry issue window.

    Wakeup is hardware CAM behaviour: broadcast a physical register number,
    set the ready bit of every matching source in a valid slot. The fast
    path keeps a preg -> {slots} *waiter index* so a broadcast only visits
    slots that were ever dispatched waiting on that preg, validating each
    hit against the live ``valid``/``src?_preg`` fields (so a stale index
    entry can never set a wrong bit). The index is rebuilt from a full scan
    whenever injection or snapshot-restore writes a scheduler field through
    the registry (see ``on_set`` in :mod:`repro.uarch.latches`), which keeps
    the indexed broadcast bit-identical to the full scan even with flipped
    ``valid`` or source-tag bits. Set ``use_wakeup_index = False`` to force
    the reference full scan.
    """

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        size = config.scheduler_entries
        self.size = size
        rob_bits = _bits_for(config.rob_entries)
        preg_bits = _bits_for(config.physical_registers)
        self.valid = [0] * size
        self.issued = [0] * size
        self.rob_idx = [0] * size
        self.word = [0] * size
        self.pc = [0] * size
        self.src1_preg = [0] * size
        self.src1_ready = [0] * size
        self.src2_preg = [0] * size
        self.src2_ready = [0] * size
        self.src3_preg = [0] * size
        self.src3_ready = [0] * size
        # Unregistered bookkeeping: sequence tag guarding slot reuse against
        # events that belong to a squashed previous occupant.
        self.seq = [0] * size
        self.use_wakeup_index = True
        self._waiters: dict[int, set[int]] | None = None
        invalidate = self._invalidate_waiters
        registry.register_list("sched", "ctrl", "sched.valid", self.valid, 1,
                               on_set=invalidate)
        registry.register_list("sched", "ctrl", "sched.issued", self.issued, 1)
        registry.register_list("sched", "ctrl", "sched.rob_idx", self.rob_idx, rob_bits)
        registry.register_list("sched", "data", "sched.word", self.word, 32)
        registry.register_list("sched", "data", "sched.pc", self.pc, 64)
        registry.register_list("sched", "ctrl", "sched.src1_preg", self.src1_preg,
                               preg_bits, on_set=invalidate)
        registry.register_list("sched", "ctrl", "sched.src1_ready", self.src1_ready, 1)
        registry.register_list("sched", "ctrl", "sched.src2_preg", self.src2_preg,
                               preg_bits, on_set=invalidate)
        registry.register_list("sched", "ctrl", "sched.src2_ready", self.src2_ready, 1)
        registry.register_list("sched", "ctrl", "sched.src3_preg", self.src3_preg,
                               preg_bits, on_set=invalidate)
        registry.register_list("sched", "ctrl", "sched.src3_ready", self.src3_ready, 1)

    def find_free(self) -> int | None:
        for index in range(self.size):
            if not self.valid[index]:
                return index
        return None

    def _invalidate_waiters(self) -> None:
        self._waiters = None

    def _rebuild_waiters(self) -> dict[int, set[int]]:
        waiters: dict[int, set[int]] = {}
        for index in range(self.size):
            if not self.valid[index]:
                continue
            for preg in (
                self.src1_preg[index],
                self.src2_preg[index],
                self.src3_preg[index],
            ):
                waiters.setdefault(preg, set()).add(index)
        self._waiters = waiters
        return waiters

    def note_dispatch(self, slot: int) -> None:
        """Index a freshly dispatched slot's source tags (fast path)."""
        waiters = self._waiters
        if waiters is None:
            return  # next wakeup rebuilds from a full scan anyway
        for preg in (
            self.src1_preg[slot],
            self.src2_preg[slot],
            self.src3_preg[slot],
        ):
            bucket = waiters.get(preg)
            if bucket is None:
                waiters[preg] = {slot}
            else:
                bucket.add(slot)

    def wakeup(self, preg: int) -> None:
        """Broadcast a completed physical register to waiting sources."""
        if self.use_wakeup_index:
            waiters = self._waiters
            if waiters is None:
                waiters = self._rebuild_waiters()
            slots = waiters.get(preg)
            if not slots:
                return
            valid = self.valid
            src1_preg = self.src1_preg
            src2_preg = self.src2_preg
            src3_preg = self.src3_preg
            stale = None
            for index in slots:
                if valid[index]:
                    hit = False
                    if src1_preg[index] == preg:
                        self.src1_ready[index] = 1
                        hit = True
                    if src2_preg[index] == preg:
                        self.src2_ready[index] = 1
                        hit = True
                    if src3_preg[index] == preg:
                        self.src3_ready[index] = 1
                        hit = True
                    if hit:
                        continue
                # The slot no longer waits on this preg: either it was freed
                # or it was re-dispatched with different sources. Freed slots
                # re-enter the index through note_dispatch and source tags
                # only change behind our back via the registry (which drops
                # the whole index), so pruning here can never lose a waiter.
                if stale is None:
                    stale = [index]
                else:
                    stale.append(index)
            if stale is not None:
                for index in stale:
                    slots.discard(index)
            return
        for index in range(self.size):
            if not self.valid[index]:
                continue
            if self.src1_preg[index] == preg:
                self.src1_ready[index] = 1
            if self.src2_preg[index] == preg:
                self.src2_ready[index] = 1
            if self.src3_preg[index] == preg:
                self.src3_ready[index] = 1


class ReorderBuffer:
    """64-entry circular reorder buffer."""

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        size = config.rob_entries
        self.size = size
        preg_bits = _bits_for(config.physical_registers)
        lsq_bits = _bits_for(max(config.ldq_entries, config.stq_entries))
        self.valid = [0] * size
        self.done = [0] * size
        self.pc = [0] * size
        self.dest_areg = [31] * size  # 31 = no destination
        self.new_preg = [0] * size
        self.old_preg = [0] * size
        self.exc = [0] * size
        self.is_store = [0] * size
        self.is_load = [0] * size
        self.is_branch = [0] * size
        self.is_cond = [0] * size
        self.is_halt = [0] * size
        self.has_dest = [0] * size
        self.lsq_idx = [0] * size
        self.pred_taken = [0] * size
        self.pred_target = [0] * size
        self.actual_taken = [0] * size
        self.actual_target = [0] * size
        self.mispredicted = [0] * size
        self.conf = [0] * size
        self.hist = [0] * size
        self._head = [0]
        self._tail = [0]
        self._count = [0]
        # Unregistered bookkeeping: a monotonically increasing sequence
        # number guarding in-flight events against squashed entries.
        self.seq = [0] * size
        registry.register_list("rob", "ctrl", "rob.valid", self.valid, 1)
        registry.register_list("rob", "ctrl", "rob.done", self.done, 1)
        registry.register_list("rob", "data", "rob.pc", self.pc, 64)
        registry.register_list("rob", "ctrl", "rob.dest_areg", self.dest_areg, 5)
        registry.register_list("rob", "ctrl", "rob.new_preg", self.new_preg, preg_bits)
        registry.register_list("rob", "ctrl", "rob.old_preg", self.old_preg, preg_bits)
        registry.register_list("rob", "ctrl", "rob.exc", self.exc, 3)
        registry.register_list("rob", "ctrl", "rob.is_store", self.is_store, 1)
        registry.register_list("rob", "ctrl", "rob.is_load", self.is_load, 1)
        registry.register_list("rob", "ctrl", "rob.is_branch", self.is_branch, 1)
        registry.register_list("rob", "ctrl", "rob.is_cond", self.is_cond, 1)
        registry.register_list("rob", "ctrl", "rob.is_halt", self.is_halt, 1)
        registry.register_list("rob", "ctrl", "rob.has_dest", self.has_dest, 1)
        registry.register_list("rob", "ctrl", "rob.lsq_idx", self.lsq_idx, lsq_bits)
        registry.register_list("rob", "ctrl", "rob.pred_taken", self.pred_taken, 1)
        registry.register_list("rob", "data", "rob.pred_target", self.pred_target, 64)
        registry.register_list("rob", "ctrl", "rob.actual_taken", self.actual_taken, 1)
        registry.register_list("rob", "data", "rob.actual_target", self.actual_target, 64)
        registry.register_list("rob", "ctrl", "rob.mispredicted", self.mispredicted, 1)
        registry.register_list("rob", "ctrl", "rob.conf", self.conf, 1)
        registry.register_list("rob", "data", "rob.hist", self.hist, config.history_bits)
        index_bits = _bits_for(size)
        registry.register_list("rob", "data", "rob.head", self._head, index_bits)
        registry.register_list("rob", "data", "rob.tail", self._tail, index_bits)
        registry.register_list("rob", "data", "rob.count", self._count, index_bits + 1)

    @property
    def head(self) -> int:
        return self._head[0]

    @head.setter
    def head(self, value: int) -> None:
        self._head[0] = value % self.size

    @property
    def tail(self) -> int:
        return self._tail[0]

    @tail.setter
    def tail(self, value: int) -> None:
        self._tail[0] = value % self.size

    @property
    def count(self) -> int:
        return self._count[0]

    @count.setter
    def count(self, value: int) -> None:
        self._count[0] = max(0, min(self.size, value))

    def is_full(self) -> bool:
        return self.count >= self.size

    def allocate(self, next_seq: int) -> int | None:
        if self._count[0] >= self.size:
            return None
        index = self._tail[0]
        self.valid[index] = 1
        self.done[index] = 0
        self.exc[index] = EXC_NONE
        self.dest_areg[index] = 31
        self.is_store[index] = 0
        self.is_load[index] = 0
        self.is_branch[index] = 0
        self.is_cond[index] = 0
        self.is_halt[index] = 0
        self.has_dest[index] = 0
        self.mispredicted[index] = 0
        self.actual_taken[index] = 0
        self.seq[index] = next_seq
        # Direct ring-pointer updates; the allocate guard above keeps the
        # count within [0, size] exactly as the clamping property would.
        self._tail[0] = (index + 1) % self.size
        self._count[0] += 1
        return index

    def age_of(self, index: int) -> int:
        """Distance from head (0 = oldest in flight)."""
        return (index - self.head) % self.size

    def youngest_first(self) -> list[int]:
        """Valid entry indices from tail-1 back to head."""
        result = []
        for offset in range(self.count):
            index = (self.tail - 1 - offset) % self.size
            result.append(index)
        return result


class LoadQueue:
    """In-flight load addresses and values."""

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        size = config.ldq_entries
        self.size = size
        rob_bits = _bits_for(config.rob_entries)
        self.valid = [0] * size
        self.rob_idx = [0] * size
        self.addr = [0] * size
        self.addr_valid = [0] * size
        self.value = [0] * size
        self.done = [0] * size
        self.speculative = [0] * size  # issued past an unresolved store
        registry.register_list("ldq", "ctrl", "ldq.valid", self.valid, 1)
        registry.register_list("ldq", "ctrl", "ldq.rob_idx", self.rob_idx, rob_bits)
        registry.register_list("ldq", "data", "ldq.addr", self.addr, 64)
        registry.register_list("ldq", "ctrl", "ldq.addr_valid", self.addr_valid, 1)
        registry.register_list("ldq", "data", "ldq.value", self.value, 64)
        registry.register_list("ldq", "ctrl", "ldq.done", self.done, 1)
        registry.register_list("ldq", "ctrl", "ldq.spec", self.speculative, 1)

    def find_free(self) -> int | None:
        for index in range(self.size):
            if not self.valid[index]:
                return index
        return None


class StoreQueue:
    """In-flight store addresses and data."""

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        size = config.stq_entries
        self.size = size
        rob_bits = _bits_for(config.rob_entries)
        self.valid = [0] * size
        self.rob_idx = [0] * size
        self.addr = [0] * size
        self.addr_valid = [0] * size
        self.data = [0] * size
        self.data_valid = [0] * size
        self.size_log2 = [0] * size
        registry.register_list("stq", "ctrl", "stq.valid", self.valid, 1)
        registry.register_list("stq", "ctrl", "stq.rob_idx", self.rob_idx, rob_bits)
        registry.register_list("stq", "data", "stq.addr", self.addr, 64)
        registry.register_list("stq", "ctrl", "stq.addr_valid", self.addr_valid, 1)
        registry.register_list("stq", "data", "stq.data", self.data, 64)
        registry.register_list("stq", "ctrl", "stq.data_valid", self.data_valid, 1)
        registry.register_list("stq", "ctrl", "stq.size", self.size_log2, 2)

    def find_free(self) -> int | None:
        for index in range(self.size):
            if not self.valid[index]:
                return index
        return None


class StoreBuffer:
    """Committed stores awaiting release to memory.

    In the baseline pipeline this drains immediately; in the ReStore
    configuration it is the gated store buffer of Section 2.1 — stores
    between the live checkpoints stay here so a rollback can discard them.
    An SRAM structure (ECC target).
    """

    def __init__(self, config: PipelineConfig, registry: StateRegistry):
        size = config.store_buffer_entries
        self.size = size
        self.valid = [0] * size
        self.addr = [0] * size
        self.data = [0] * size
        self.size_log2 = [0] * size
        self._head = [0]
        self._tail = [0]
        # Monotonic push/pop sequence numbers (bookkeeping, not latched
        # state): checkpoint marks use these, so they stay unambiguous even
        # when the ring wraps completely between checkpoints.
        self.total_pushed = 0
        self.total_popped = 0
        registry.register_list("storebuf", "ram", "storebuf.valid", self.valid, 1)
        registry.register_list("storebuf", "ram", "storebuf.addr", self.addr, 64)
        registry.register_list("storebuf", "ram", "storebuf.data", self.data, 64)
        registry.register_list("storebuf", "ram", "storebuf.size", self.size_log2, 2)
        index_bits = _bits_for(size)
        registry.register_list("storebuf", "data", "storebuf.head", self._head, index_bits)
        registry.register_list("storebuf", "data", "storebuf.tail", self._tail, index_bits)

    @property
    def head(self) -> int:
        return self._head[0]

    @head.setter
    def head(self, value: int) -> None:
        self._head[0] = value % self.size

    @property
    def tail(self) -> int:
        return self._tail[0]

    @tail.setter
    def tail(self, value: int) -> None:
        self._tail[0] = value % self.size

    def is_full(self) -> bool:
        return self.valid[self.tail] == 1

    def is_empty(self) -> bool:
        # The youngest slot (tail - 1) is valid iff anything is buffered;
        # see entries_youngest_first, which walks backwards from there.
        return self.valid[(self._tail[0] - 1) % self.size] == 0

    def live_count(self) -> int:
        """Valid entries right now. In an uncorrupted machine this always
        equals ``total_pushed - total_popped`` (minus rollback truncations,
        which adjust total_pushed); a divergence means a valid bit was
        conjured or destroyed behind the buffer's back — the signature the
        spurious-memory-op symptom detector watches for."""
        return sum(self.valid)

    def push(self, addr: int, data: int, size_log2: int) -> bool:
        if self.is_full():
            return False
        slot = self.tail
        self.valid[slot] = 1
        self.addr[slot] = addr
        self.data[slot] = data
        self.size_log2[slot] = size_log2
        self.tail = slot + 1
        self.total_pushed += 1
        return True

    def entries_youngest_first(self) -> list[int]:
        """Valid slots from newest to oldest (for load forwarding)."""
        result = []
        slot = (self.tail - 1) % self.size
        for _ in range(self.size):
            if not self.valid[slot]:
                break
            result.append(slot)
            slot = (slot - 1) % self.size
        return result

    def pop_oldest(self) -> tuple[int, int, int] | None:
        slot = self.head
        if not self.valid[slot]:
            return None
        self.valid[slot] = 0
        self.head = slot + 1
        self.total_popped += 1
        return self.addr[slot], self.data[slot], self.size_log2[slot]

    def truncate_to(self, push_mark: int) -> None:
        """Discard entries pushed after sequence ``push_mark`` (rollback).

        Entries already released to memory (``total_popped``) cannot be
        recalled; with deterministic re-execution they are rewritten with
        identical values, so an early forced release stays benign."""
        while self.total_pushed > push_mark and self.total_pushed > self.total_popped:
            slot = (self.tail - 1) % self.size
            self.valid[slot] = 0
            self.tail = slot
            self.total_pushed -= 1
