"""Command-line interface.

Exposes the library's main flows without writing Python::

    repro run gcc                        # run a kernel on the pipeline
    repro run gcc --restore --interval 50
    repro inject mcf --seed 7 --cycle 900
    repro campaign arch --trials 60
    repro campaign uarch --trials 48 --workloads gcc,mcf
    repro campaign uarch --trials 500 --journal run.jsonl --jobs 4 \\
        --trial-timeout 30
    repro campaign uarch --trials 500 --journal run.jsonl --resume
    repro campaign status run.jsonl
    repro campaign report run.jsonl
    repro campaign arch --trials 60 --cache-dir .repro-cache
    repro cache stats --cache-dir .repro-cache
    repro cache clear --cache-dir .repro-cache
    repro serve --port 8642 --workers 2       # the campaign service
    repro submit uarch --trials 120 --shards 2 --wait
    repro jobs                                # list service jobs
    repro jobs job-000001 --results
    repro worker --url http://host:8642       # join the worker fleet
    repro trace validate run.trace.jsonl
    repro perf --intervals 50,100,500
    repro fit --baseline 0.07 --restore 0.035 --lhf 0.03 --combined 0.01
    repro workloads

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from repro.campaign import (
    ExecutionPolicy,
    format_status,
    run_campaign,
    summarize_journal,
)
from repro.faults import ArchCampaignConfig, UarchCampaignConfig
from repro.perfmodel import measure_restore_performance
from repro.reliability import (
    ConfigFailureFractions,
    equivalent_design_factor,
    fit_scaling_table,
)
from repro.restore import ReStoreController
from repro.restore.controller import RollbackPolicy
from repro.telemetry import (
    JsonlTraceSink,
    TelemetryError,
    render_campaign_report,
    validate_trace,
)
from repro.uarch import load_pipeline
from repro.uarch.latches import LATCH_CLASSES
from repro.util.journal import JournalError
from repro.util.rng import DeterministicRng
from repro.util.tables import format_table
from repro.workloads import WORKLOAD_NAMES, build_workload


def _parse_workloads(text: str) -> tuple[str, ...]:
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    for name in names:
        if name not in WORKLOAD_NAMES:
            raise SystemExit(f"unknown workload {name!r}; know {WORKLOAD_NAMES}")
    return names


def cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name in WORKLOAD_NAMES:
        bundle = build_workload(name, scale=args.scale)
        pipeline = load_pipeline(bundle.program)
        pipeline.run(5_000_000)
        rows.append(
            [
                name,
                pipeline.retired_count,
                pipeline.cycle_count,
                f"{pipeline.retired_count / pipeline.cycle_count:.2f}",
                f"{pipeline.mispredict_count / max(1, pipeline.branch_count):.1%}",
            ]
        )
    print(format_table(
        ["workload", "instructions", "cycles", "IPC", "mispredict rate"],
        rows,
        title=f"Workload kernels (scale {args.scale})",
    ))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    bundle = build_workload(args.workload, scale=args.scale)
    pipeline = load_pipeline(bundle.program)
    trace = JsonlTraceSink(args.trace) if args.trace else None
    if trace is not None:
        pipeline.telemetry = trace
    controller = None
    if args.restore:
        controller = ReStoreController(
            pipeline,
            interval=args.interval,
            policy=RollbackPolicy(args.policy),
            telemetry=trace,
        )
    try:
        pipeline.run(args.max_cycles)
    finally:
        if trace is not None:
            trace.close()
            print(f"trace: {trace.emitted} events -> {args.trace}")
    status = "halted" if pipeline.halted else (
        f"stopped ({pipeline.exception_name() or 'deadlock'})"
        if pipeline.stopped else "cycle budget exhausted"
    )
    print(f"{args.workload}: {status} after {pipeline.cycle_count} cycles, "
          f"{pipeline.retired_count} instructions "
          f"(IPC {pipeline.retired_count / max(1, pipeline.cycle_count):.2f})")
    wrong = bundle.check(pipeline.memory) if pipeline.halted else ["n/a"]
    print(f"outputs: {'correct' if not wrong else wrong}")
    if controller is not None:
        for key, value in controller.summary().items():
            print(f"  {key}: {value}")
    return 0 if pipeline.halted and not wrong else 1


def cmd_inject(args: argparse.Namespace) -> int:
    if args.seed < 0:
        raise SystemExit(f"--seed must be non-negative, got {args.seed}")
    if args.cycle < 1:
        raise SystemExit(f"--cycle must be >= 1, got {args.cycle}")
    if args.scale < 1:
        raise SystemExit(f"--scale must be >= 1, got {args.scale}")
    if args.interval < 1:
        raise SystemExit(f"--interval must be >= 1, got {args.interval}")
    if args.max_cycles <= args.cycle:
        raise SystemExit(
            f"--max-cycles ({args.max_cycles}) must exceed "
            f"--cycle ({args.cycle})"
        )
    bundle = build_workload(args.workload, scale=args.scale)
    pipeline = load_pipeline(bundle.program)
    controller = None
    if args.restore:
        controller = ReStoreController(pipeline, interval=args.interval)
    pipeline.run(args.cycle)
    if not pipeline.running:
        raise SystemExit("the program ended before the injection cycle")
    rng = DeterministicRng(args.seed)
    classes = LATCH_CLASSES if args.latches_only else None
    field, bit = pipeline.registry.pick_bit(rng, classes=classes)
    field.flip(bit)
    print(f"flipped bit {bit} of {field.name} "
          f"({field.state_class} state) at cycle {args.cycle}")
    pipeline.run(args.max_cycles)
    if pipeline.halted:
        wrong = bundle.check(pipeline.memory)
        print("outcome: " + ("correct output (masked or recovered)"
                             if not wrong else f"silent corruption: {wrong[0]}"))
    else:
        print(f"outcome: crash "
              f"({pipeline.exception_name() or 'deadlock/livelock'})")
    if controller is not None:
        for key, value in controller.summary().items():
            print(f"  {key}: {value}")
    return 0


def _execution_policy(
    jobs: int | None,
    trial_timeout: float | None,
    cache_dir: str | None = None,
    lockstep: bool = True,
) -> ExecutionPolicy:
    """Validate execution knobs, converting field names to flag names.

    ``jobs=None`` (flag omitted) resolves to one worker per core.
    """
    try:
        return ExecutionPolicy(
            jobs=jobs, trial_timeout=trial_timeout, cache_dir=cache_dir,
            lockstep=lockstep,
        )
    except ValueError as exc:
        raise SystemExit("--" + str(exc).replace("_", "-")) from None


def _resolve_cache_dir(cache_dir: str | None, no_cache: bool) -> str | None:
    """Resolve the golden-artifact cache directory for a command.

    Precedence: ``--no-cache`` (off) > ``--cache-dir PATH`` >
    ``$REPRO_CACHE_DIR`` > off. The cache defaults to off so casual runs
    leave no stray state; fleets opt in via the env var or flag.
    """
    if no_cache:
        return None
    if cache_dir:
        return cache_dir
    return os.environ.get("REPRO_CACHE_DIR") or None


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="golden-artifact cache directory (shared across runs and "
             "workers; default: $REPRO_CACHE_DIR, else no cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the golden-artifact cache even if $REPRO_CACHE_DIR "
             "is set",
    )


def _add_memhier_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memhier-targets", action="store_true",
        help="register cache tag/valid/LRU and MSHR state as injection "
             "targets (uarch campaigns only; off by default — default "
             "journals are byte-identical to previous releases)",
    )
    parser.add_argument(
        "--detectors", default=None, metavar="NAMES",
        help="comma-separated memory-hierarchy detectors to measure: "
             "miss_spike, stall_outlier, spurious_memop (uarch only)",
    )


def _add_planner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--adaptive", action="store_true",
        help="allocate trials adaptively: round-based top-ups, per-point "
             "Wilson early stopping, masking-equivalence prescreen "
             "(arch campaigns only; off by default — uniform journals are "
             "byte-identical to previous releases)",
    )
    parser.add_argument(
        "--margin", type=float, default=0.05, metavar="M",
        help="target per-point Wilson margin; a point stops once its "
             "half-interval is at most M (default: 0.05)",
    )
    parser.add_argument(
        "--min-trials", type=int, default=20, metavar="N",
        help="round-0 trials per injection point (default: 20)",
    )
    parser.add_argument(
        "--round-trials", type=int, default=10, metavar="N",
        help="top-up trials per still-open point per round (default: 10)",
    )
    parser.add_argument(
        "--max-trials", type=int, default=None, metavar="N",
        help="per-workload trial budget cap (default: --trials)",
    )
    parser.add_argument(
        "--no-prescreen", action="store_true",
        help="disable the masking-equivalence prescreen (every point "
             "simulates its trials, even provably-dead destinations)",
    )


def _planner_from_args(args: argparse.Namespace):
    """The PlannerConfig for ``--adaptive`` runs (None when uniform)."""
    if not getattr(args, "adaptive", False):
        return None
    from repro.planner import PlannerConfig

    try:
        return PlannerConfig(
            margin=args.margin,
            min_trials=args.min_trials,
            round_trials=args.round_trials,
            max_trials=args.max_trials,
            prescreen=not args.no_prescreen,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid planner configuration: {exc}") from None


def cmd_campaign_plan(args: argparse.Namespace) -> int:
    """Preview an adaptive campaign: goldens, points, prescreen, budget.

    Runs only the golden side — no fault is injected — so the preview is
    cheap and exact (the point sample and prescreen verdicts are pure
    functions of the config and seed).
    """
    args.adaptive = True  # 'plan' implies adaptive; the flag is optional
    planner = _planner_from_args(args)
    workloads = _parse_workloads(args.workloads)
    cache_dir = _resolve_cache_dir(args.cache_dir, args.no_cache)
    try:
        config = ArchCampaignConfig(
            trials_per_workload=args.trials,
            injection_points=min(args.trials, max(4, args.trials // 3)),
            workloads=workloads,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid campaign configuration: {exc}") from None
    cache = None
    if cache_dir:
        from repro.cache import GoldenArtifactCache

        cache = GoldenArtifactCache(cache_dir)
    from repro.planner import format_plan, preview_plan

    rows = preview_plan(config, planner, cache)
    print(format_plan(rows, planner))
    live = [row for row in rows if "skip_reason" not in row]
    print(
        f"\nround 0 executes "
        f"{sum(row['round0_trials'] for row in live)} trials; "
        f"prescreen retires "
        f"{sum(row['prescreened'] for row in live)} points "
        f"({sum(row['prescreen_trials'] for row in live)} round-0 trials "
        f"recorded masked without simulation); "
        f"budget {sum(row['budget'] for row in live)} trials total"
    )
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    path = args.journal_file or args.journal
    if not path:
        raise SystemExit(
            "campaign status needs a journal path: "
            "repro campaign status <journal>"
        )
    try:
        print(format_status(summarize_journal(path)))
    except FileNotFoundError:
        raise SystemExit(f"no such journal: {path}") from None
    except JournalError as exc:
        raise SystemExit(str(exc)) from None
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    path = args.journal_file or args.journal
    if not path:
        raise SystemExit(
            "campaign report needs a journal path: "
            "repro campaign report <journal>"
        )
    try:
        print(render_campaign_report(path))
    except FileNotFoundError:
        raise SystemExit(f"no such journal: {path}") from None
    except JournalError as exc:
        raise SystemExit(str(exc)) from None
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    if args.level == "status":
        return cmd_campaign_status(args)
    if args.level == "report":
        return cmd_campaign_report(args)
    if args.level == "plan":
        return cmd_campaign_plan(args)
    if args.journal_file:
        raise SystemExit(
            "positional journal argument is only used with 'repro campaign "
            "status' and 'repro campaign report'; use --journal for "
            "arch/uarch runs"
        )
    workloads = _parse_workloads(args.workloads)
    cache_dir = _resolve_cache_dir(args.cache_dir, args.no_cache)
    policy = _execution_policy(
        args.jobs, args.trial_timeout, cache_dir, args.lockstep
    )
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal")
    planner = _planner_from_args(args)
    if planner is not None and args.level != "arch":
        raise SystemExit(
            "--adaptive is only supported for arch campaigns (the uarch "
            "prescreen equivalence does not hold at latch granularity)"
        )
    detectors = _parse_detectors(args.detectors)
    if args.level == "arch" and (args.memhier_targets or detectors):
        raise SystemExit(
            "--memhier-targets and --detectors are uarch-only (the arch "
            "study has no memory-hierarchy state to target)"
        )
    try:
        if args.level == "arch":
            config = ArchCampaignConfig(
                trials_per_workload=args.trials,
                injection_points=min(args.trials, max(4, args.trials // 3)),
                workloads=workloads,
                seed=args.seed,
            )
        else:
            config = UarchCampaignConfig(
                trials_per_workload=args.trials,
                injection_points=min(args.trials, max(4, args.trials // 3)),
                workloads=workloads,
                seed=args.seed,
                memhier_targets=args.memhier_targets,
                detectors=detectors,
            )
    except ValueError as exc:
        raise SystemExit(f"invalid campaign configuration: {exc}") from None
    trace = JsonlTraceSink(args.trace) if args.trace else None
    try:
        report = run_campaign(
            args.level,
            config,
            journal_path=args.journal,
            resume=args.resume,
            jobs=policy.jobs,
            trial_timeout=policy.trial_timeout,
            trace=trace,
            cache_dir=policy.cache_dir,
            lockstep=policy.lockstep,
            planner=planner,
        )
    except JournalError as exc:
        raise SystemExit(str(exc)) from None
    except KeyboardInterrupt:
        if args.journal:
            print(
                f"\ninterrupted; completed trials are journaled in "
                f"{args.journal} — rerun with --resume to continue",
                file=sys.stderr,
            )
        raise
    finally:
        if trace is not None:
            trace.close()
    if trace is not None:
        print(f"trace: {trace.emitted} events -> {args.trace}")
    result = report.result
    if args.level == "arch":
        print(result.table())
        print(f"\nmasked: {result.masked_estimate}")
        print(f"failure coverage @100 (exc+cfv): {result.failure_coverage(100)}")
    else:
        print(result.table(title="coverage vs checkpoint interval (all state)"))
        print(f"\nbenign (masked+other): {result.masked_estimate()}")
        print(f"baseline failures:     {result.baseline_failure_estimate()}")
        print(f"coverage @100:         {result.coverage_of_failures(100)}")
    print()
    print(report.outcome_table())
    print(f"\ntrials executed: {report.executed}  resumed from journal: "
          f"{report.resumed}  jobs: {report.jobs}")
    if report.cache_dir:
        print(f"golden cache: hits={report.cache_hits} "
              f"misses={report.cache_misses} ({report.cache_dir})")
    totals = report.planner_totals
    if totals:
        print(
            f"adaptive planner: executed {totals['executed']} of "
            f"{totals['budget']} budgeted trials "
            f"({totals['trials_saved']} saved), "
            f"{totals['converged_points']}/{totals['total_points']} points "
            f"converged at margin<={totals['margin']}, "
            f"{totals['prescreen_points']} points prescreened as masked"
        )
    for name, reason in report.skipped_workloads:
        print(f"warning: workload {name} skipped: {reason}")
    return 0


def _parse_detectors(value: str | None) -> tuple[str, ...]:
    """Parse a ``--detectors`` comma list (name validation happens in the
    campaign config, so CLI and service submissions reject identically)."""
    if not value:
        return ()
    return tuple(name.strip() for name in value.split(",") if name.strip())


def _campaign_config_options(
    level: str,
    trials: int,
    workloads: tuple[str, ...],
    seed: int,
    memhier_targets: bool = False,
    detectors: tuple[str, ...] = (),
) -> dict:
    """The JSON config options for a job, derived exactly as
    ``repro campaign`` derives its local config — so a service job's
    config digest matches a serial CLI run of the same parameters.

    The memory-hierarchy options are included only when set, mirroring
    their ``omit_default`` journaling: a default submission's config dict
    (and hence digest) is unchanged from before the options existed."""
    options = {
        "trials_per_workload": trials,
        "injection_points": min(trials, max(4, trials // 3)),
        "workloads": list(workloads),
        "seed": seed,
    }
    if memhier_targets:
        options["memhier_targets"] = True
    if detectors:
        options["detectors"] = list(detectors)
    return options


async def _serve_async(args: argparse.Namespace) -> int:
    from repro.service import (
        CampaignScheduler,
        CampaignService,
        LocalWorkerPool,
        ResultStore,
    )

    store = ResultStore(os.path.join(args.data_dir, "service.db"))
    scheduler = CampaignScheduler(
        store,
        args.data_dir,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
    )
    service = CampaignService(scheduler, host=args.host, port=args.port)
    await service.start()
    pool = None
    if args.workers > 0:
        pool = LocalWorkerPool(
            scheduler,
            workers=args.workers,
            executor_kind=args.executor,
            lease_batch=args.lease_batch,
            cache_dir=_resolve_cache_dir(args.cache_dir, args.no_cache),
        )
        pool.start()
    print(
        f"campaign service listening on {service.address} "
        f"(data: {args.data_dir}, local workers: {args.workers})",
        flush=True,
    )
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if pool is not None:
            await pool.stop()
        await service.stop()
        store.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    if args.lease_ttl <= 0:
        raise SystemExit(f"--lease-ttl must be positive, got {args.lease_ttl}")
    if args.max_attempts < 1:
        raise SystemExit(
            f"--max-attempts must be >= 1, got {args.max_attempts}"
        )
    if args.lease_batch < 1:
        raise SystemExit(
            f"--lease-batch must be >= 1, got {args.lease_batch}"
        )
    os.makedirs(args.data_dir, exist_ok=True)
    try:
        return asyncio.run(_serve_async(args))
    except KeyboardInterrupt:
        print("campaign service stopped", file=sys.stderr)
        return 0


def _job_summary_lines(view: dict) -> list[str]:
    units = view.get("units") or {}
    outcomes = view.get("outcomes") or {}
    lines = [
        f"job:     {view['job_id']}  ({view['level']}, {view['state']})",
        "units:   " + (", ".join(
            f"{state}={count}" for state, count in sorted(units.items())
        ) or "none"),
        f"trials:  {view.get('trials', 0)}"
        + ("  [" + ", ".join(
            f"{status}={count}" for status, count in sorted(outcomes.items())
        ) + "]" if outcomes else ""),
    ]
    if view.get("journal_path"):
        lines.append(f"journal: {view['journal_path']}")
    if view.get("trace_path"):
        lines.append(f"trace:   {view['trace_path']}")
    if view.get("error"):
        lines.append(f"note:    {view['error']}")
    return lines


def cmd_submit(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.service import ServiceClientError
    from repro.service.client import ServiceClient

    if args.level not in ("arch", "uarch"):
        raise SystemExit(f"level must be arch or uarch, got {args.level!r}")
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    workloads = _parse_workloads(args.workloads)
    planner = _planner_from_args(args)
    if planner is not None and args.level != "arch":
        raise SystemExit("--adaptive is only supported for arch campaigns")
    detectors = _parse_detectors(args.detectors)
    if args.level == "arch" and (args.memhier_targets or detectors):
        raise SystemExit(
            "--memhier-targets and --detectors are uarch-only (the arch "
            "study has no memory-hierarchy state to target)"
        )
    payload = {
        "level": args.level,
        "config": _campaign_config_options(
            args.level, args.trials, workloads, args.seed,
            memhier_targets=args.memhier_targets, detectors=detectors,
        ),
        "shards_per_workload": args.shards,
        "trial_timeout": args.trial_timeout,
        "trace": args.trace,
    }
    if planner is not None:
        payload["planner"] = planner.to_dict()
    client = ServiceClient(args.url)
    try:
        view = client.submit(payload)
        if args.wait:
            view = client.wait(view["job_id"], timeout=args.timeout)
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json_module.dumps(view, indent=2))
    else:
        print("\n".join(_job_summary_lines(view)))
    return 0 if view["state"] in ("queued", "running", "done") else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.service import ServiceClientError
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.requeue is not None:
            if args.job_id is None:
                raise SystemExit("--requeue requires a job id")
            view = client.requeue(args.job_id, args.requeue)
            if args.json:
                print(json_module.dumps(view, indent=2))
            else:
                print(f"{args.job_id}/{args.requeue}: requeued "
                      f"(job state: {view['state']})")
            return 0
        if args.dead_letter:
            listing = client.dead_letter(args.job_id)
            if args.json:
                print(json_module.dumps(listing, indent=2))
                return 0
            rows = [
                [u["job_id"], u["unit_id"], u["workload"],
                 str(u["attempts"]), u.get("error") or ""]
                for u in listing["units"]
            ]
            print(format_table(
                ["job", "unit", "workload", "attempts", "error"], rows,
                title=f"Dead-lettered units ({listing['total']} total)",
            ))
            return 0
        if args.job_id is None:
            listing = client.jobs(offset=args.offset, limit=args.limit)
            if args.json:
                print(json_module.dumps(listing, indent=2))
                return 0
            rows = [
                [v["job_id"], v["level"], v["state"], str(v.get("trials", 0))]
                for v in listing["jobs"]
            ]
            print(format_table(
                ["job", "level", "state", "trials"], rows,
                title=f"Campaign jobs ({listing['total']} total; "
                      f"showing {len(rows)} from offset {listing['offset']})",
            ))
            return 0
        if args.cancel:
            view = client.cancel(args.job_id)
        else:
            view = client.job(args.job_id)
        if args.results:
            page = client.results(
                args.job_id, offset=args.offset, limit=args.limit
            )
            if args.json:
                print(json_module.dumps(page, indent=2))
            else:
                for entry in page["results"]:
                    print(json_module.dumps(entry))
                print(
                    f"# {len(page['results'])} of {page['total']} trials "
                    f"(offset {page['offset']})",
                    file=sys.stderr,
                )
            return 0
        if args.json:
            print(json_module.dumps(view, indent=2))
        else:
            print("\n".join(_job_summary_lines(view)))
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.service import RemoteWorker, ServiceClientError
    from repro.service.client import DEFAULT_RETRY_POLICY, ServiceClient
    from repro.util.retry import RetryPolicy

    if args.max_units is not None and args.max_units < 1:
        raise SystemExit(f"--max-units must be >= 1, got {args.max_units}")
    if args.lease_batch < 1:
        raise SystemExit(
            f"--lease-batch must be >= 1, got {args.lease_batch}"
        )
    if args.complete_chunk < 0:
        raise SystemExit(
            f"--complete-chunk must be >= 0, got {args.complete_chunk}"
        )
    name = args.name or f"worker-{os.getpid()}"
    retry = DEFAULT_RETRY_POLICY
    if args.retry_attempts is not None:
        if args.retry_attempts < 1:
            raise SystemExit(
                f"--retry-attempts must be >= 1, got {args.retry_attempts}"
            )
        retry = RetryPolicy(
            attempts=args.retry_attempts,
            base_delay=DEFAULT_RETRY_POLICY.base_delay,
            multiplier=DEFAULT_RETRY_POLICY.multiplier,
            max_delay=DEFAULT_RETRY_POLICY.max_delay,
            jitter=DEFAULT_RETRY_POLICY.jitter,
        )
    transport = None
    if args.chaos_rate != 0.0:
        from repro.service.chaos import ChaosPlan, ChaosTransport

        try:
            plan = ChaosPlan.uniform(args.chaos_seed, args.chaos_rate,
                                     max_faults=args.chaos_max_faults)
        except ValueError as exc:
            raise SystemExit(f"--chaos-rate: {exc}") from None
        transport = ChaosTransport(plan)
    client = ServiceClient(args.url, transport=transport, retry=retry)
    try:
        client.health()
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None
    worker = RemoteWorker(
        client,
        name,
        poll_interval=args.poll,
        max_units=args.max_units,
        exit_when_idle=args.exit_when_idle,
        cache_dir=_resolve_cache_dir(args.cache_dir, args.no_cache),
        outbox_dir=args.outbox_dir,
        lease_batch=args.lease_batch,
        complete_chunk=args.complete_chunk or None,
    )
    try:
        done = worker.run()
    except KeyboardInterrupt:
        done = worker.units_done
        print(f"\n{name}: interrupted", file=sys.stderr)
    print(f"{name}: {done} unit(s) completed, "
          f"{worker.units_failed} failed")
    counters = {k: v for k, v in worker.counters().items() if v}
    counters.update(
        {k: v for k, v in client.counters.items()
         if v and k != "requests"}
    )
    if transport is not None and transport.faults_injected():
        counters["chaos_faults"] = transport.faults_injected()
    if counters:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        print(f"{name}: {detail}", file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import GoldenArtifactCache, format_cache_stats

    cache_dir = _resolve_cache_dir(args.cache_dir, False)
    if not cache_dir:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    cache = GoldenArtifactCache(cache_dir)
    if args.action == "stats":
        print(format_cache_stats(cache.stats()))
    else:
        removed = cache.clear()
        print(f"removed {removed} cache "
              f"entr{'y' if removed == 1 else 'ies'} from {cache_dir}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        count = validate_trace(args.trace_file)
    except FileNotFoundError:
        raise SystemExit(f"no such trace: {args.trace_file}") from None
    except TelemetryError as exc:
        raise SystemExit(f"invalid trace: {exc}") from None
    print(f"{args.trace_file}: {count} events, all schema-valid")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    intervals = tuple(int(piece) for piece in args.intervals.split(","))
    points = measure_restore_performance(
        intervals=intervals, workloads=_parse_workloads(args.workloads)
    )
    rows = [
        [point.interval, point.policy, f"{point.speedup:.3f}",
         point.rollbacks, point.false_positives]
        for point in points
    ]
    print(format_table(
        ["interval", "policy", "speedup", "rollbacks", "false positives"],
        rows,
        title="ReStore performance vs baseline (Figure 7)",
    ))
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    fractions = ConfigFailureFractions(
        baseline=args.baseline,
        restore=args.restore,
        lhf=args.lhf,
        lhf_restore=args.combined,
    )
    print(fit_scaling_table(fractions))
    print(f"\nequivalent-design factor (lhf+ReStore vs baseline): "
          f"{equivalent_design_factor(fractions):.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReStore (DSN 2005) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list kernels with pipeline stats")
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("run", help="run a kernel on the pipeline")
    p.add_argument("workload", choices=WORKLOAD_NAMES)
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--restore", action="store_true",
                   help="attach a ReStore controller")
    p.add_argument("--interval", type=int, default=100)
    p.add_argument("--policy", choices=["imm", "delayed"], default="imm")
    p.add_argument("--max-cycles", type=int, default=5_000_000)
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="stream telemetry events (symptoms, rollbacks, "
                        "checkpoints) to a JSONL trace file")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("inject", help="inject one bit flip into a live run")
    p.add_argument("workload", choices=WORKLOAD_NAMES)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cycle", type=int, default=500)
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--latches-only", action="store_true")
    p.add_argument("--restore", action="store_true")
    p.add_argument("--interval", type=int, default=100)
    p.add_argument("--max-cycles", type=int, default=5_000_000)
    p.set_defaults(func=cmd_inject)

    p = sub.add_parser(
        "campaign",
        help="run a fault-injection campaign (or inspect one: "
             "campaign status <journal>, campaign report <journal>, "
             "campaign plan --adaptive preview)",
    )
    p.add_argument("level", choices=["arch", "uarch", "plan", "status",
                                     "report"])
    p.add_argument("journal_file", nargs="?", default=None,
                   help="journal path (status/report subcommands only)")
    p.add_argument("--trials", type=int, default=30,
                   help="trials per workload")
    p.add_argument("--workloads", default=",".join(WORKLOAD_NAMES))
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="stream trial results to an append-only JSONL journal")
    p.add_argument("--resume", action="store_true",
                   help="skip trials already recorded in --journal")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="fan workloads out across N worker processes "
                        "(default: one per core)")
    p.add_argument("--trial-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock budget per trial; overruns are recorded "
                        "as harness-timeout outcomes")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="stream per-trial telemetry events to a JSONL trace")
    p.add_argument("--lockstep", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="run arch trials through the lockstep batch "
                        "scheduler (default; --no-lockstep forces the "
                        "serial per-trial path — journals are byte-"
                        "identical either way)")
    _add_memhier_flags(p)
    _add_planner_flags(p)
    _add_cache_flags(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the campaign service (scheduler + HTTP API + local "
             "worker pool)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 picks a free port)")
    p.add_argument("--data-dir", default="service-data", metavar="DIR",
                   help="where the SQLite store and job journals live")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="in-process worker loops (0 = rely on external "
                        "'repro worker' processes)")
    p.add_argument("--executor", choices=("process", "thread"),
                   default="process",
                   help="how local workers execute units (default: process "
                        "— one OS process per worker, so trials scale "
                        "across cores)")
    p.add_argument("--lease-batch", type=int, default=1, metavar="N",
                   help="units each local worker leases per scheduler call "
                        "(one lease clock per batch; pipelined through the "
                        "executor)")
    p.add_argument("--lease-ttl", type=float, default=60.0, metavar="SECONDS",
                   help="work-unit lease duration; an un-heartbeated unit "
                        "is requeued after this long")
    p.add_argument("--max-attempts", type=int, default=2, metavar="N",
                   help="attempts before a unit is retired as failed")
    _add_cache_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a campaign job to a service")
    p.add_argument("level", choices=["arch", "uarch"])
    p.add_argument("--url", default="http://127.0.0.1:8642",
                   help="campaign service base URL")
    p.add_argument("--trials", type=int, default=30,
                   help="trials per workload")
    p.add_argument("--workloads", default=",".join(WORKLOAD_NAMES))
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="work units per workload (stride slices of the "
                        "trial index space)")
    p.add_argument("--trial-timeout", type=float, default=None,
                   metavar="SECONDS")
    p.add_argument("--trace", action="store_true",
                   help="have the job produce a merged telemetry trace")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes")
    p.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                   help="how long --wait polls before giving up")
    p.add_argument("--json", action="store_true",
                   help="print the raw job view as JSON")
    _add_memhier_flags(p)
    _add_planner_flags(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs",
                       help="list, inspect, or cancel campaign-service jobs")
    p.add_argument("job_id", nargs="?", default=None)
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.add_argument("--cancel", action="store_true")
    p.add_argument("--results", action="store_true",
                   help="page through a job's trial entries (serial order)")
    p.add_argument("--dead-letter", action="store_true",
                   help="list attempt-exhausted units (for one job, or all "
                        "jobs when no job id is given)")
    p.add_argument("--requeue", default=None, metavar="UNIT_ID",
                   help="return a dead-lettered unit of the given job to "
                        "the queue with a fresh attempt budget")
    p.add_argument("--offset", type=int, default=0)
    p.add_argument("--limit", type=int, default=50)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser(
        "worker",
        help="lease and run work units from a campaign service",
    )
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.add_argument("--name", default=None,
                   help="worker identity (default: worker-<pid>)")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="idle polling interval")
    p.add_argument("--max-units", type=int, default=None, metavar="N",
                   help="exit after completing N units")
    p.add_argument("--lease-batch", type=int, default=1, metavar="N",
                   help="units to lease per service round trip (the batch "
                        "shares one lease clock and is heartbeated as a "
                        "whole while draining)")
    p.add_argument("--complete-chunk", type=int, default=200, metavar="N",
                   help="stream unit results back in chunks of N trial "
                        "outcomes per POST (0 = deliver each unit's "
                        "results in one request)")
    p.add_argument("--exit-when-idle", action="store_true",
                   help="exit when the queue has no leasable unit")
    p.add_argument("--outbox-dir", default=None, metavar="DIR",
                   help="directory for the durable result outbox "
                        "(default: a per-run temp directory)")
    p.add_argument("--retry-attempts", type=int, default=None, metavar="N",
                   help="HTTP attempts per request before giving up "
                        "(default: 3)")
    p.add_argument("--chaos-seed", type=int, default=2005,
                   help="seed for the chaos transport schedule")
    p.add_argument("--chaos-rate", type=float, default=0.0, metavar="P",
                   help="inject seeded transport faults (drop/reset/"
                        "duplicate/truncate/delay each at rate P; testing "
                        "only)")
    p.add_argument("--chaos-max-faults", type=int, default=None, metavar="N",
                   help="total chaos fault budget (default: unbounded)")
    _add_cache_flags(p)
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "cache",
        help="inspect or clear the golden-artifact cache "
             "(cache stats, cache clear)",
    )
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache directory (default: $REPRO_CACHE_DIR)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("trace",
                       help="telemetry trace utilities (trace validate)")
    p.add_argument("action", choices=["validate"])
    p.add_argument("trace_file", help="JSONL trace path")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("perf", help="measure Figure 7 performance points")
    p.add_argument("--intervals", default="50,100,500")
    p.add_argument("--workloads", default="gcc,gzip,mcf")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("fit", help="print the Figure 8 FIT scaling table")
    p.add_argument("--baseline", type=float, default=0.07)
    p.add_argument("--restore", type=float, default=0.035)
    p.add_argument("--lhf", type=float, default=0.03)
    p.add_argument("--combined", type=float, default=0.01)
    p.set_defaults(func=cmd_fit)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
