"""Trial containment: exception and wall-clock guards around one trial.

The guard is the boundary between the campaign harness and the system
under test. Everything a trial can do wrong — raise an arbitrary
exception, or spin forever — is converted into a classified
:class:`~repro.campaign.outcomes.TrialOutcome` so the campaign survives.

Wall-clock enforcement uses ``signal.setitimer(ITIMER_REAL)``, which can
interrupt a pure-Python busy loop. It is only armed when running on the
main thread of a process with ``SIGALRM`` support (true for the serial
runner and for ``concurrent.futures`` worker processes on POSIX); where
unavailable — a worker *thread*, Windows, an embedded interpreter — the
guard degrades to exception containment only and emits one
``RuntimeWarning`` so the degradation is visible instead of an uncaught
``ValueError`` from ``signal.signal``.
"""

from __future__ import annotations

import signal
import threading
import traceback
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.campaign.outcomes import (
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    TrialOutcome,
)


class TrialTimeout(Exception):
    """Raised inside a trial when its wall-clock budget expires."""


def timeout_supported() -> bool:
    """Can this thread arm a wall-clock interrupt for trial containment?"""
    return (
        hasattr(signal, "setitimer")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


_warned_no_timeout = False


def _warn_no_timeout(reason: str) -> None:
    """Warn once per process that timeouts degraded to containment-only."""
    global _warned_no_timeout
    if _warned_no_timeout:
        return
    _warned_no_timeout = True
    warnings.warn(
        f"trial wall-clock timeout disabled ({reason}); trials remain "
        "exception-contained but a spinning trial can hang this runner",
        RuntimeWarning,
        stacklevel=4,
    )


@contextmanager
def _wall_clock_limit(seconds: float | None):
    if not seconds:
        yield
        return
    if not timeout_supported():
        _warn_no_timeout(
            "SIGALRM timers require POSIX signal support and the main thread"
        )
        yield
        return

    def on_alarm(signum, frame):
        raise TrialTimeout(f"trial exceeded {seconds:g}s wall-clock budget")

    try:
        previous = signal.signal(signal.SIGALRM, on_alarm)
    except ValueError as exc:
        # Belt and braces: signal.signal itself refuses outside the main
        # thread (and the support probe can race a thread handoff), so
        # degrade exactly as if the probe had failed.
        _warn_no_timeout(str(exc))
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class TrialGuard:
    """Runs trial thunks, converting failures into outcome records.

    ``timeout`` is the per-trial wall-clock budget in seconds (``None``
    disables it). ``descriptor`` fields passed to :meth:`run` are copied
    into the error payload so a failed trial can be replayed exactly.
    """

    timeout: float | None = None

    def run(
        self,
        key: str,
        workload: str,
        point: int,
        index: int,
        thunk: Callable[[], object],
        descriptor: dict | None = None,
    ) -> TrialOutcome:
        try:
            with _wall_clock_limit(self.timeout):
                record = thunk()
        except TrialTimeout as exc:
            return TrialOutcome(
                key=key, workload=workload, point=point, index=index,
                status=OUTCOME_TIMEOUT,
                error=self._error_payload(exc, descriptor, with_traceback=False),
            )
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            return TrialOutcome(
                key=key, workload=workload, point=point, index=index,
                status=OUTCOME_CRASH,
                error=self._error_payload(exc, descriptor, with_traceback=True),
            )
        return TrialOutcome(
            key=key, workload=workload, point=point, index=index,
            status=OUTCOME_OK, record=record,
        )

    def _error_payload(
        self, exc: BaseException, descriptor: dict | None, with_traceback: bool
    ) -> dict:
        payload = {
            "type": type(exc).__name__,
            "message": str(exc),
        }
        if self.timeout is not None:
            payload["timeout_seconds"] = self.timeout
        if with_traceback:
            payload["traceback"] = traceback.format_exc()
        if descriptor:
            payload["descriptor"] = dict(descriptor)
        return payload
