"""FIT/MTBF scaling model (Figure 8)."""

import math

import pytest

from repro.reliability import (
    FIGURE8_DESIGN_SIZES,
    MTBF_GOAL_FIT,
    PAPER_FAILURE_FRACTIONS,
    ConfigFailureFractions,
    equivalent_design_factor,
    fit_rate,
    fit_scaling_table,
    max_bits_within_goal,
    mtbf_years,
)


class TestFitRate:
    def test_linear_in_bits(self):
        assert fit_rate(200_000, 0.07) == pytest.approx(2 * fit_rate(100_000, 0.07))

    def test_paper_anchor_point(self):
        # 46,000 bits of interesting state, 7% failure fraction:
        # 46e3 * 0.001 * 0.07 = 3.22 FIT.
        assert fit_rate(46_000, 0.07) == pytest.approx(3.22)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_rate(-1, 0.5)
        with pytest.raises(ValueError):
            fit_rate(100, 1.5)


class TestMtbf:
    def test_115_fit_is_about_1000_years(self):
        """The paper's goal line: 1000-year MTBF at 115 FIT."""
        years = mtbf_years(MTBF_GOAL_FIT)
        assert 950 < years < 1050

    def test_zero_fit_is_infinite(self):
        assert math.isinf(mtbf_years(0))


class TestGoal:
    def test_max_bits_within_goal(self):
        bits = max_bits_within_goal(0.07)
        assert fit_rate(bits, 0.07) == pytest.approx(MTBF_GOAL_FIT)

    def test_protection_extends_the_budget(self):
        fractions = PAPER_FAILURE_FRACTIONS
        assert max_bits_within_goal(fractions.lhf_restore) > max_bits_within_goal(
            fractions.baseline
        )


class TestEquivalence:
    def test_paper_7x(self):
        """lhf+ReStore ~ a design 1/7th the size (Section 5.3)."""
        factor = equivalent_design_factor(PAPER_FAILURE_FRACTIONS)
        assert factor == pytest.approx(7.0, rel=0.01)

    def test_restore_alone_2x(self):
        factor = equivalent_design_factor(PAPER_FAILURE_FRACTIONS, "ReStore")
        assert factor == pytest.approx(2.0, rel=0.01)

    def test_unknown_config(self):
        with pytest.raises(KeyError):
            PAPER_FAILURE_FRACTIONS.of("tmr")


class TestTable:
    def test_renders_all_sizes_and_configs(self):
        text = fit_scaling_table(PAPER_FAILURE_FRACTIONS)
        for bits in FIGURE8_DESIGN_SIZES:
            assert f"{bits:,}" in text
        for config in ("baseline", "ReStore", "lhf", "lhf+ReStore"):
            assert config in text

    def test_goal_markers(self):
        text = fit_scaling_table(PAPER_FAILURE_FRACTIONS)
        # The largest baseline point is far over the goal; the smallest is
        # far under it.
        lines = text.splitlines()
        assert "*" in lines[-1]
        assert "*" not in lines[3]

    def test_custom_fractions(self):
        fractions = ConfigFailureFractions(0.10, 0.05, 0.04, 0.015)
        text = fit_scaling_table(fractions, design_sizes=(100_000,))
        assert "10.00" in text
