"""Performance microbenchmark suite for the simulation hot paths.

Run ``python benchmarks/perf/perfbench.py --scale smoke`` to measure
throughput, and ``python benchmarks/perf/compare.py`` to gate against the
committed baseline. See README.md ("Performance") for the workflow.
"""
