"""Symptom detectors (Section 3).

A symptom detector watches pipeline events and decides whether an event
"hints at the presence of a soft error" strongly enough to trigger a
checkpoint rollback. Section 3.3 gives the evaluation metrics for a
candidate symptom: (1) how often failure-causing errors generate it,
(2) its error-to-symptom propagation latency, and (3) its frequency in
error-free execution (the false-positive cost).

The paper's chosen detectors are exceptions and JRS-gated high-confidence
branch mispredictions, plus the watchdog for deadlocks; cache/TLB misses
are candidate symptoms it argues against (too frequent when error-free) —
we implement them for the ablation study.
"""

from __future__ import annotations


class SymptomDetector:
    """Base detector: decides whether a pipeline event triggers rollback."""

    #: Event kinds (Pipeline symptom_handler kinds) this detector watches.
    kinds: tuple[str, ...] = ()
    name = "base"

    def __init__(self):
        self.observed = 0
        self.triggered = 0

    def wants(self, kind: str) -> bool:
        return kind in self.kinds

    def should_rollback(self, kind: str, payload) -> bool:
        """Default: every watched event triggers rollback."""
        return True

    def observe(self, kind: str, payload) -> bool:
        """Main entry: returns True when a rollback should be triggered."""
        if not self.wants(kind):
            return False
        self.observed += 1
        fire = self.should_rollback(kind, payload)
        if fire:
            self.triggered += 1
        return fire

    def on_rollback(self, position: int) -> None:
        """A rollback rewound the architectural position to ``position``.

        Detectors keyed by retired-instruction position must drop state
        recorded at now-unreachable (higher) positions, or it leaks into
        the re-execution and distorts windowed decisions.
        """


class ExceptionSymptomDetector(SymptomDetector):
    """Any ISA-defined exception triggers rollback (Section 3.2.1).

    "Because exceptions are fairly rare during error-free operation, and
    program execution cannot continue without first handling any exceptions
    that arise, there is little reason to not initiate a checkpoint
    recovery on memory access, alignment or any other exceptions."
    """

    kinds = ("exception",)
    name = "exception"


class HighConfidenceMispredictDetector(SymptomDetector):
    """JRS-gated control-flow symptom (Section 3.2.2).

    The pipeline emits ``hc_mispredict`` only for mispredicted conditional
    branches whose prediction the JRS estimator had marked high-confidence,
    so this detector fires on every such event. The coverage/performance
    trade-off lives in the confidence estimator choice (JRS vs perfect vs
    none), not here.
    """

    kinds = ("hc_mispredict",)
    name = "hc_mispredict"


class WatchdogSymptomDetector(SymptomDetector):
    """Watchdog saturation (deadlock/livelock; Section 3.1 outcome 2).

    "These conditions are often easily detected by watchdog timers ... and
    can often be recovered by flushing the pipeline."
    """

    kinds = ("deadlock",)
    name = "watchdog"


class CacheMissSymptomDetector(SymptomDetector):
    """Cache/TLB-miss symptom candidate (Section 3.3 ablation).

    The paper argues data-cache misses "may not be sufficiently rare enough
    in the absence of transient faults and may cause undue false positives".
    A burst threshold limits the damage: only ``threshold`` misses within
    ``window`` retired instructions trigger a rollback.
    """

    name = "cache_miss"

    def __init__(
        self,
        kinds: tuple[str, ...] = ("dcache_miss", "dtlb_miss"),
        threshold: int = 1,
        window: int = 100,
    ):
        super().__init__()
        self.kinds = kinds
        self.threshold = threshold
        self.window = window
        self._recent: list[int] = []  # retired positions of recent misses

    def should_rollback(self, kind: str, payload) -> bool:
        position = payload if isinstance(payload, int) else 0
        self._recent.append(position)
        cutoff = position - self.window
        self._recent = [p for p in self._recent if p >= cutoff]
        return len(self._recent) >= self.threshold

    def on_rollback(self, position: int) -> None:
        # The window is keyed by retired position, which just rewound:
        # pre-rollback entries sit at *higher* positions than anything the
        # re-execution will produce, so the >= cutoff prune would keep them
        # forever and every burst count would be inflated.
        self._recent = [p for p in self._recent if p <= position]


def default_detectors() -> list[SymptomDetector]:
    """The paper's ReStore configuration: exceptions + HC mispredicts +
    watchdog."""
    return [
        ExceptionSymptomDetector(),
        HighConfidenceMispredictDetector(),
        WatchdogSymptomDetector(),
    ]
