"""Symptom detectors (Section 3).

A symptom detector watches pipeline events and decides whether an event
"hints at the presence of a soft error" strongly enough to trigger a
checkpoint rollback. Section 3.3 gives the evaluation metrics for a
candidate symptom: (1) how often failure-causing errors generate it,
(2) its error-to-symptom propagation latency, and (3) its frequency in
error-free execution (the false-positive cost).

The paper's chosen detectors are exceptions and JRS-gated high-confidence
branch mispredictions, plus the watchdog for deadlocks; cache/TLB misses
are candidate symptoms it argues against (too frequent when error-free) —
we implement them for the ablation study.
"""

from __future__ import annotations

#: Opt-in memory-hierarchy detector names accepted by
#: ``UarchCampaignConfig.detectors`` (and ``build_memhier_detectors``).
MEMHIER_DETECTOR_NAMES = ("miss_spike", "stall_outlier", "spurious_memop")


def _position_of(kind: str, payload) -> int:
    """The retired-instruction position of a cache/TLB symptom payload.

    Accepts a bare position (legacy form) or a ``(position, pc)`` tuple —
    the shape the pipeline emits for every cache/TLB symptom kind. Anything
    else is a contract violation and raises instead of being silently
    coerced (coercing to position 0 defeats window pruning entirely).
    """
    if isinstance(payload, bool):
        raise TypeError(
            f"malformed {kind} payload {payload!r}: expected a retired "
            f"position or a (position, pc) tuple"
        )
    if isinstance(payload, int):
        return payload
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and all(isinstance(part, int) and not isinstance(part, bool)
                for part in payload)
    ):
        return payload[0]
    raise TypeError(
        f"malformed {kind} payload {payload!r}: expected a retired "
        f"position or a (position, pc) tuple"
    )


class SymptomDetector:
    """Base detector: decides whether a pipeline event triggers rollback."""

    #: Event kinds (Pipeline symptom_handler kinds) this detector watches.
    kinds: tuple[str, ...] = ()
    name = "base"

    def __init__(self):
        self.observed = 0
        self.triggered = 0

    def wants(self, kind: str) -> bool:
        return kind in self.kinds

    def should_rollback(self, kind: str, payload) -> bool:
        """Default: every watched event triggers rollback."""
        return True

    def observe(self, kind: str, payload) -> bool:
        """Main entry: returns True when a rollback should be triggered."""
        if not self.wants(kind):
            return False
        self.observed += 1
        fire = self.should_rollback(kind, payload)
        if fire:
            self.triggered += 1
        return fire

    def on_rollback(self, position: int) -> None:
        """A rollback rewound the architectural position to ``position``.

        Detectors keyed by retired-instruction position must drop state
        recorded at now-unreachable (higher) positions, or it leaks into
        the re-execution and distorts windowed decisions.
        """


class ExceptionSymptomDetector(SymptomDetector):
    """Any ISA-defined exception triggers rollback (Section 3.2.1).

    "Because exceptions are fairly rare during error-free operation, and
    program execution cannot continue without first handling any exceptions
    that arise, there is little reason to not initiate a checkpoint
    recovery on memory access, alignment or any other exceptions."
    """

    kinds = ("exception",)
    name = "exception"


class HighConfidenceMispredictDetector(SymptomDetector):
    """JRS-gated control-flow symptom (Section 3.2.2).

    The pipeline emits ``hc_mispredict`` only for mispredicted conditional
    branches whose prediction the JRS estimator had marked high-confidence,
    so this detector fires on every such event. The coverage/performance
    trade-off lives in the confidence estimator choice (JRS vs perfect vs
    none), not here.
    """

    kinds = ("hc_mispredict",)
    name = "hc_mispredict"


class WatchdogSymptomDetector(SymptomDetector):
    """Watchdog saturation (deadlock/livelock; Section 3.1 outcome 2).

    "These conditions are often easily detected by watchdog timers ... and
    can often be recovered by flushing the pipeline."
    """

    kinds = ("deadlock",)
    name = "watchdog"


class CacheMissSymptomDetector(SymptomDetector):
    """Cache/TLB-miss symptom candidate (Section 3.3 ablation).

    The paper argues data-cache misses "may not be sufficiently rare enough
    in the absence of transient faults and may cause undue false positives".
    A burst threshold limits the damage: only ``threshold`` misses within
    ``window`` retired instructions trigger a rollback.

    :class:`MissRateSpikeDetector` supersedes this naive burst counter for
    the memory-hierarchy ablation — it compares the windowed miss rate to a
    learned error-free baseline instead of a fixed count — but this class
    stays as the paper's literal Section 3.3 candidate.
    """

    name = "cache_miss"

    def __init__(
        self,
        kinds: tuple[str, ...] = ("dcache_miss", "dtlb_miss"),
        threshold: int = 1,
        window: int = 100,
    ):
        super().__init__()
        self.kinds = kinds
        self.threshold = threshold
        self.window = window
        self._recent: list[int] = []  # retired positions of recent misses

    def should_rollback(self, kind: str, payload) -> bool:
        position = _position_of(kind, payload)
        self._recent.append(position)
        cutoff = position - self.window
        self._recent = [p for p in self._recent if p >= cutoff]
        return len(self._recent) >= self.threshold

    def on_rollback(self, position: int) -> None:
        # The window is keyed by retired position, which just rewound:
        # pre-rollback entries sit at *higher* positions than anything the
        # re-execution will produce, so the >= cutoff prune would keep them
        # forever and every burst count would be inflated.
        self._recent = [p for p in self._recent if p <= position]


class MissRateSpikeDetector(SymptomDetector):
    """Miss-rate spike vs a learned error-free baseline (EWMA).

    The naive burst counter fires on any ``threshold`` misses in a window —
    which in miss-heavy phases is constantly. This detector instead learns
    the workload's own steady-state miss rate as an exponentially-weighted
    moving average of per-miss instantaneous rates (1 / gap between
    consecutive misses, in retired instructions) and fires only when the
    windowed rate exceeds ``multiple`` times that baseline. A corrupted
    cache tag/valid/LRU array produces exactly this signature: a burst of
    conflict misses far above the program's own norm.
    """

    name = "miss_spike"

    def __init__(
        self,
        kinds: tuple[str, ...] = (
            "dcache_miss", "dtlb_miss", "icache_miss", "itlb_miss"
        ),
        window: int = 200,
        multiple: float = 4.0,
        alpha: float = 0.1,
        warmup: int = 8,
        floor_rate: float = 0.01,
    ):
        super().__init__()
        self.kinds = kinds
        self.window = window
        self.multiple = multiple
        self.alpha = alpha
        self.warmup = warmup
        self.floor_rate = floor_rate
        self.baseline: float | None = None  # EWMA misses per retired inst
        self._recent: list[int] = []  # retired positions of recent misses
        self._last_position: int | None = None
        self._seen = 0

    def should_rollback(self, kind: str, payload) -> bool:
        position = _position_of(kind, payload)
        self._seen += 1
        self._recent.append(position)
        cutoff = position - self.window
        self._recent = [p for p in self._recent if p >= cutoff]
        windowed_rate = len(self._recent) / self.window
        fire = False
        if self._seen > self.warmup and self.baseline is not None:
            reference = max(self.baseline, self.floor_rate)
            fire = windowed_rate > self.multiple * reference
        # Gated EWMA: anomalous samples (an instantaneous rate already past
        # the spike threshold) are excluded from the baseline update, so a
        # burst is judged against the pre-burst norm instead of absorbing
        # itself into it within a few alpha steps.
        if self._last_position is not None:
            gap = max(1, position - self._last_position)
            instant = 1.0 / gap
            if self.baseline is None:
                self.baseline = instant
            elif instant <= self.multiple * max(self.baseline, self.floor_rate):
                self.baseline += self.alpha * (instant - self.baseline)
        self._last_position = position
        return fire

    def on_rollback(self, position: int) -> None:
        # Prune window entries from the abandoned future; the learned
        # baseline survives — it describes the workload, not the window.
        self._recent = [p for p in self._recent if p <= position]
        if self._last_position is not None:
            self._last_position = min(self._last_position, position)


class StallOutlierDetector(SymptomDetector):
    """Fetch/issue stall streaks far beyond the error-free baseline.

    The pipeline reports every ended no-retirement streak of at least
    ``stall_streak_floor`` cycles as a ``stall_streak`` symptom whose
    payload carries the streak length. Ordinary streaks (cache misses,
    dependence chains) sit near the configured ``baseline_cycles``; a
    corrupted MSHR occupancy, poisoned LRU state, or wedged store buffer
    shows up as a streak ``multiple`` times longer — caught here well
    before the watchdog's deadlock threshold.
    """

    kinds = ("stall_streak",)
    name = "stall_outlier"

    def __init__(self, baseline_cycles: int = 32, multiple: float = 4.0):
        super().__init__()
        self.baseline_cycles = baseline_cycles
        self.multiple = multiple

    def should_rollback(self, kind: str, payload) -> bool:
        if not (
            isinstance(payload, tuple)
            and len(payload) == 3
            and all(isinstance(part, int) and not isinstance(part, bool)
                    for part in payload)
        ):
            raise TypeError(
                f"malformed {kind} payload {payload!r}: expected "
                f"(position, streak_cycles, pc)"
            )
        _, streak, _ = payload
        return streak > self.multiple * self.baseline_cycles


class SpuriousMemopDetector(SymptomDetector):
    """Memory operations with no matching retired memop.

    The pipeline emits ``spurious_memop`` when its own accounting breaks:
    a store-buffer drain whose live entries no longer reconcile with the
    push/pop sequence (a phantom committed store, or one silently
    destroyed), or a cache fill completing with no matching outstanding
    miss in the MSHR file. Both are impossible in an error-free machine,
    so every event fires — the paper's ideal symptom shape: zero benign
    rate, unambiguous corruption.
    """

    kinds = ("spurious_memop",)
    name = "spurious_memop"

    def should_rollback(self, kind: str, payload) -> bool:
        if not (
            isinstance(payload, tuple)
            and len(payload) == 2
            and all(isinstance(part, int) and not isinstance(part, bool)
                    for part in payload)
        ):
            raise TypeError(
                f"malformed {kind} payload {payload!r}: expected "
                f"(position, address)"
            )
        return True


def build_memhier_detectors(names) -> list[SymptomDetector]:
    """Detector instances for the memory-hierarchy campaign, by name."""
    factories = {
        "miss_spike": MissRateSpikeDetector,
        "stall_outlier": StallOutlierDetector,
        "spurious_memop": SpuriousMemopDetector,
    }
    unknown = [name for name in names if name not in factories]
    if unknown:
        raise ValueError(
            f"unknown detectors {unknown}; know {MEMHIER_DETECTOR_NAMES}"
        )
    return [factories[name]() for name in names]


def default_detectors() -> list[SymptomDetector]:
    """The paper's ReStore configuration: exceptions + HC mispredicts +
    watchdog."""
    return [
        ExceptionSymptomDetector(),
        HighConfidenceMispredictDetector(),
        WatchdogSymptomDetector(),
    ]
