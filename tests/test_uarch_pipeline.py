"""The out-of-order pipeline: architectural equivalence and mechanisms."""

import pytest

from repro.isa import assemble
from repro.uarch import PipelineConfig, load_pipeline
from repro.uarch.structures import EXC_ACCESS, EXC_ALIGN, EXC_ARITH, EXC_ILLEGAL
from repro.workloads import WORKLOAD_NAMES


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestArchitecturalEquivalence:
    """The pipeline must retire exactly the architectural execution."""

    def test_retired_pc_stream_matches(self, name, arch_traces, pipeline_runs):
        pipeline = pipeline_runs[name]
        assert pipeline.halted
        assert [r.pc for r in pipeline.retired_log] == arch_traces[name].pcs

    def test_store_stream_matches(self, name, arch_traces, pipeline_runs):
        pipeline = pipeline_runs[name]
        pipeline_stores = [
            (r.store_addr, r.store_data)
            for r in pipeline.retired_log
            if r.store_addr >= 0
        ]
        golden_stores = [
            (addr, data) for kind, addr, data in arch_traces[name].memops
            if kind == "S"
        ]
        assert pipeline_stores == golden_stores

    def test_final_registers_match(self, name, arch_traces, pipeline_runs):
        assert (
            pipeline_runs[name].arch_reg_values()
            == list(arch_traces[name].final_regs)
        )

    def test_final_memory_matches(self, name, arch_traces, pipeline_runs):
        assert pipeline_runs[name].memory.equals(arch_traces[name].final_memory)

    def test_workload_outputs(self, name, bundles, pipeline_runs):
        assert bundles[name].check(pipeline_runs[name].memory) == []


class TestTimingSanity:
    def test_superscalar_ipc(self, pipeline_runs):
        """A 6-issue machine should sustain IPC near 1 on these kernels."""
        for name, pipeline in pipeline_runs.items():
            ipc = pipeline.retired_count / pipeline.cycle_count
            assert 0.3 < ipc < 4.0, f"{name}: implausible IPC {ipc:.2f}"

    def test_branch_prediction_quality(self, pipeline_runs):
        """Paper: predictors are 'typically correct for well over 95% of
        branch instances'; ours won't match exactly on short runs but must
        be clearly better than chance."""
        total_branches = sum(p.branch_count for p in pipeline_runs.values())
        total_mispredicts = sum(p.mispredict_count for p in pipeline_runs.values())
        assert total_mispredicts / total_branches < 0.15

    def test_hc_mispredicts_are_rare(self, pipeline_runs):
        """The JRS gate keeps false-positive symptoms rare (Section 3.2.2)."""
        total_retired = sum(p.retired_count for p in pipeline_runs.values())
        total_hc = sum(p.hc_mispredict_count for p in pipeline_runs.values())
        assert total_hc / total_retired < 0.01

    def test_registered_state_scale(self, pipeline_runs):
        """The paper's model has ~46,000 bits of 'interesting' state."""
        bits = next(iter(pipeline_runs.values())).registry.total_bits()
        assert 30_000 < bits < 70_000


class TestExceptionsAtRetire:
    def run_pipeline(self, source):
        program = assemble(source, "t")
        pipeline = load_pipeline(program, collect_retired=True)
        pipeline.run(50_000)
        return pipeline

    def test_wild_load_raises_access(self):
        pipeline = self.run_pipeline(
            ".text\nstart: li r1, 0x7000000\n ldq r2, 0(r1)\n halt\n"
        )
        assert pipeline.stopped
        assert pipeline.exception[0] == EXC_ACCESS

    def test_misaligned_load(self):
        pipeline = self.run_pipeline(
            ".text\nstart: la r1, v\n ldq r2, 1(r1)\n halt\n.data\nv: .quad 0\n"
        )
        assert pipeline.exception[0] == EXC_ALIGN

    def test_store_to_text(self):
        pipeline = self.run_pipeline(
            ".text\nstart: la r1, start\n stq r1, 0(r1)\n halt\n"
        )
        assert pipeline.exception[0] == EXC_ACCESS

    def test_arithmetic_trap(self):
        pipeline = self.run_pipeline(
            ".text\nstart: li r1, 1\n sll r1, 62, r1\n addqv r1, r1, r2\n halt\n"
        )
        assert pipeline.exception[0] == EXC_ARITH

    def test_illegal_from_data_jump(self):
        pipeline = self.run_pipeline(
            ".text\nstart: la r1, v\n jmp (r1)\n halt\n.data\nv: .quad 0x04\n"
        )
        assert pipeline.exception[0] == EXC_ILLEGAL

    def test_wrong_path_faults_are_squashed(self):
        """A load on a mispredicted path must never raise at retirement."""
        # The branch below is always taken at runtime; the fall-through path
        # dereferences a wild pointer. With any predictor state the machine
        # may fetch and even execute the wild load speculatively.
        pipeline = self.run_pipeline(
            ".text\n"
            "start: li r5, 64\n"
            "       li r9, 0x7000000\n"
            "loop:  subq r5, 1, r5\n"
            "       beq r5, done\n"
            "       br loop\n"
            "       ldq r2, 0(r9)\n"   # never architecturally reached
            "done:  halt\n"
        )
        assert pipeline.halted
        assert pipeline.exception is None

    def test_exception_symptom_emitted(self):
        pipeline = self.run_pipeline(
            ".text\nstart: li r1, 0x7000000\n ldq r2, 0(r1)\n halt\n"
        )
        kinds = [s.kind for s in pipeline.symptoms]
        assert "exception" in kinds


class TestWatchdog:
    def test_deadlock_detection_on_artificial_stall(self):
        program = assemble(".text\nstart: br start\n", "spin")
        config = PipelineConfig(watchdog_cycles=100)
        pipeline = load_pipeline(program, config=config)
        # Starve retirement artificially (as a stuck ROB head would).
        pipeline.run(20)
        pipeline.retire_stall = True
        pipeline.run(5_000)
        assert pipeline.deadlock
        assert pipeline.stopped
        assert any(s.kind == "deadlock" for s in pipeline.symptoms)

    def test_healthy_run_never_fires_watchdog(self, pipeline_runs):
        for pipeline in pipeline_runs.values():
            assert not pipeline.deadlock


class TestForkDeterminism:
    def test_fork_continues_identically(self, bundles):
        bundle = bundles["parser"]
        pipeline = load_pipeline(bundle.program, collect_retired=True)
        pipeline.run(1_000)
        fork = pipeline.fork()
        fork.retired_log = []
        pipeline.run(2_000)
        fork.run(2_000)
        tail = pipeline.retired_log[-len(fork.retired_log):]
        assert [(r.pc, r.dest, r.value) for r in tail] == [
            (r.pc, r.dest, r.value) for r in fork.retired_log
        ]

    def test_fork_isolated_from_parent(self, bundles):
        bundle = bundles["gcc"]
        pipeline = load_pipeline(bundle.program)
        pipeline.run(500)
        fork = pipeline.fork()
        fork.registry.fields[0].flip(0)
        fork.run(100)
        # Parent state must be unaffected by the fork's flip and progress.
        parent_snapshot = pipeline.registry.snapshot()
        pipeline.run(0)
        assert pipeline.registry.snapshot() == parent_snapshot

    def test_fork_memory_isolated(self, bundles):
        bundle = bundles["gcc"]
        pipeline = load_pipeline(bundle.program)
        pipeline.run(500)
        fork = pipeline.fork()
        fork.run(5_000)
        assert not pipeline.halted or fork.halted


class TestCacheSymptoms:
    def test_miss_symptoms_recorded_when_enabled(self, bundles):
        pipeline = load_pipeline(bundles["mcf"].program, record_cache_symptoms=True)
        pipeline.run(50_000)
        kinds = {s.kind for s in pipeline.symptoms}
        assert "dcache_miss" in kinds or "dtlb_miss" in kinds

    def test_miss_symptoms_suppressed_by_default(self, pipeline_runs):
        for pipeline in pipeline_runs.values():
            kinds = {s.kind for s in pipeline.symptoms}
            assert "dcache_miss" not in kinds
