"""The trace-event schema and its validator.

Every event is a flat JSON object with three universal fields —

- ``kind``      one of :data:`EVENT_KINDS`
- ``cycle``     the pipeline cycle at which the event fired
- ``position``  the architectural position (retired-instruction count,
  which *rewinds* on rollback — two events at the same position on either
  side of a ``rollback_end`` are the original and redundant executions of
  the same instruction)

— plus the kind-specific required fields listed in :data:`EVENT_KINDS`.
Extra fields are allowed (sinks may annotate), missing required fields or
unknown kinds are schema violations. The flat shape is deliberate: a
JSONL trace stays greppable and diffable, and the validator doubles as
the CI check for traces emitted by the smoke campaign.
"""

from __future__ import annotations

import json
from typing import Any

SCHEMA_VERSION = 1

#: kind -> required kind-specific fields (beyond kind/cycle/position).
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    # Campaign-level trial bracketing.
    "trial_begin": ("workload", "point", "index"),
    "injection": ("target", "bit"),
    "trial_end": ("status",),
    # Adaptive-planner convergence: one per stopped injection point.
    # ``margin`` is a float (the point's Wilson half-width at stop time),
    # deliberately absent from the integer-field list.
    "point_converged": ("workload", "point", "trials", "margin"),
    # Pipeline-visible symptom candidates (raw, pre-detector).
    "symptom": ("symptom", "pc"),
    # Controller decisions.
    "symptom_fired": ("symptom", "pc", "detector"),
    "symptom_suppressed": ("symptom", "pc", "reason"),
    "rollback_begin": ("symptom", "from_position", "to_position", "distance"),
    "rollback_end": ("verdict",),
    "replay_divergence": ("pc",),
    "breaker_trip": ("disabled_until",),
    # Checkpoint lifecycle.
    "checkpoint_create": ("checkpoint_position",),
    "checkpoint_release": ("checkpoint_position",),
}

_COMMON_FIELDS = ("kind", "cycle", "position")

#: Fields whose values must be integers when present.
_INT_FIELDS = frozenset(
    {
        "cycle",
        "position",
        "point",
        "index",
        "trials",
        "bit",
        "pc",
        "from_position",
        "to_position",
        "distance",
        "disabled_until",
        "checkpoint_position",
    }
)


class TelemetryError(Exception):
    """An event or trace violates the telemetry schema."""


def make_event(kind: str, cycle: int, position: int, **fields: Any) -> dict:
    """Build a schema'd event dict (assumed valid; emitters are trusted —
    the validator exists for the serialized boundary, not the hot path)."""
    event = {"kind": kind, "cycle": cycle, "position": position}
    event.update(fields)
    return event


def validate_event(event: Any, where: str = "event") -> None:
    """Raise :class:`TelemetryError` unless ``event`` matches the schema."""
    if not isinstance(event, dict):
        raise TelemetryError(f"{where}: not a JSON object")
    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        raise TelemetryError(f"{where}: unknown event kind {kind!r}")
    required = _COMMON_FIELDS + EVENT_KINDS[kind]
    for name in required:
        if name not in event:
            raise TelemetryError(f"{where}: {kind} event missing field {name!r}")
    for name, value in event.items():
        if name in _INT_FIELDS and not isinstance(value, int):
            raise TelemetryError(
                f"{where}: field {name!r} must be an integer, got {value!r}"
            )


def validate_trace(path: str) -> int:
    """Validate every line of a JSONL trace; returns the event count."""
    count = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(f"{where}: not valid JSON ({exc})") from None
            validate_event(event, where=where)
            count += 1
    return count
