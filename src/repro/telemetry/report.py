"""Render the Section 3.3 metric table and breakdowns from a journal.

``repro campaign report <journal>`` reads the trial lines of a campaign
journal (the same ones ``--resume`` replays), aggregates them with
:func:`repro.telemetry.metrics.aggregate_campaign`, and renders:

1. the symptom-evaluation table — coverage of failing trials (with the
   Wald margin the paper quotes for its proportions), mean/median
   error-to-symptom latency, and the error-free firing rate;
2. a latency histogram per detector (Figure 2/5-style breakdown);
3. the rollback-distance distribution per checkpoint interval implied by
   the two-live-checkpoints scheme (mean ~1.5 intervals, Section 5.2.3).

Aggregation always recomputes from the trial lines — the journaled
``telemetry`` aggregate written by the runner is a convenience for
external consumers, not the source of truth (a resumed run appends a
fresh aggregate, and the trial lines are what both must agree with).
"""

from __future__ import annotations

from repro.campaign.outcomes import OUTCOME_OK, TrialOutcome
from repro.telemetry.metrics import (
    CampaignMetrics,
    DEFAULT_INTERVALS,
    aggregate_campaign,
)
from repro.util.journal import JournalError, read_journal
from repro.util.stats import wald_interval
from repro.util.tables import format_table

_BAR_WIDTH = 40


def metrics_from_journal(
    path: str, intervals: tuple[int, ...] = DEFAULT_INTERVALS
) -> CampaignMetrics:
    """Aggregate a journal's ``ok`` trial records into campaign metrics."""
    entries = read_journal(path)
    if not entries or entries[0].get("kind") != "manifest":
        raise JournalError(f"{path}: missing manifest line; not a campaign journal")
    level = entries[0].get("level")
    records = []
    seen: set[str] = set()
    for entry in entries[1:]:
        if entry.get("kind") != "trial" or entry.get("status") != OUTCOME_OK:
            continue
        if entry["key"] in seen:  # a retried workload may re-journal a key
            continue
        seen.add(entry["key"])
        records.append(TrialOutcome.from_entry(entry, level).record)
    # Campaigns configured with memory-hierarchy detectors record them in
    # the manifest config; their columns join the report. Older journals
    # (and default configs) have no such key and render unchanged.
    extra = tuple(entries[0].get("config", {}).get("detectors") or ())
    return aggregate_campaign(
        level, records, intervals=intervals, extra_symptoms=extra
    )


def _wald_margin_text(successes: int, trials: int) -> str:
    if not trials:
        return "n/a"
    low, high = wald_interval(successes, trials)
    return f"±{(high - low) / 2:.1%}"


def _symptom_table(metrics: CampaignMetrics) -> str:
    rows = []
    for name, detector in metrics.detectors.items():
        histogram = detector.latency
        rows.append(
            [
                name,
                f"{detector.coverage:.1%}",
                _wald_margin_text(detector.fired_on_failing,
                                  detector.failing_trials),
                f"{histogram.mean:.1f}" if histogram.total else "n/a",
                str(histogram.quantile(0.5)) if histogram.total else "n/a",
                f"{detector.benign_rate:.1%}",
            ]
        )
    return format_table(
        ["detector", "coverage", "95% margin", "mean latency",
         "median latency", "error-free rate"],
        rows,
        title=(
            f"Section 3.3 symptom metrics ({metrics.level} campaign, "
            f"{metrics.failing}/{metrics.trials} trials failing)"
        ),
    )


def _histogram_block(title: str, histogram) -> str:
    lines = [title]
    total = histogram.total
    if not total:
        return title + "\n  (no events)"
    peak = max(histogram.counts)
    for label, count in zip(histogram.bucket_labels(), histogram.counts):
        bar = "#" * round(count / peak * _BAR_WIDTH) if peak else ""
        lines.append(f"  {label:>12} | {count:>6} | {bar}")
    lines.append(f"  total {total}, mean {histogram.mean:.1f}")
    return "\n".join(lines)


def render_campaign_report(
    path: str, intervals: tuple[int, ...] = DEFAULT_INTERVALS
) -> str:
    """The full ``repro campaign report`` text for one journal."""
    metrics = metrics_from_journal(path, intervals=intervals)
    blocks = [_symptom_table(metrics)]
    entries = read_journal(path)
    planner = entries[0].get("planner") if entries else None
    from repro.planner.margins import format_point_margins, journal_point_tallies

    tallies = journal_point_tallies(entries)
    if tallies:
        target = (planner or {}).get("margin", 0.05)
        blocks.append(format_point_margins(tallies, target))
    telemetry = None
    for entry in entries[1:]:
        if entry.get("kind") == "telemetry":
            telemetry = entry  # keep the newest (a resumed run re-appends)
    totals = (telemetry or {}).get("planner")
    if planner is not None and totals:
        blocks.append(
            f"adaptive planner: executed {totals.get('executed')} of "
            f"{totals.get('budget')} budgeted trials "
            f"({totals.get('trials_saved')} saved), "
            f"{totals.get('converged_points')}/{totals.get('total_points')} "
            f"points converged at margin<={totals.get('margin')}, "
            f"{totals.get('prescreen_points')} points prescreened as masked "
            f"({totals.get('prescreen_trials')} trials avoided)"
        )
    for name, detector in metrics.detectors.items():
        if detector.latency.total:
            blocks.append(
                _histogram_block(
                    f"error-to-symptom latency: {name} (retired instructions)",
                    detector.latency,
                )
            )
    for interval, histogram in metrics.rollback_distance.items():
        blocks.append(
            _histogram_block(
                f"rollback distance @ interval {interval} "
                f"(older-checkpoint restore)",
                histogram,
            )
        )
    if metrics.trials == 0:
        blocks.append("no completed trials journaled yet")
    return "\n\n".join(blocks)
