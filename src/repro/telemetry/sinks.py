"""Trace sinks: where emitted events go.

A sink is anything with ``emit(event: dict)`` and ``close()``. Emitters
hold a sink-or-``None`` and guard every emission with an ``is None``
check, so the disabled configuration costs a single attribute test on
paths that fire at most once per symptom/rollback/checkpoint — never per
cycle.

Two backends cover the two usage modes:

- :class:`JsonlTraceSink` streams one flushed JSON line per event to a
  file, the same crash-durable shape as the campaign journal; a trace
  survives a killed run up to its last complete line.
- :class:`RingBufferTraceSink` keeps the most recent ``capacity`` events
  in memory — the "flight recorder" mode for tests and for long runs
  where only the window leading up to an incident matters.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Protocol, runtime_checkable


@runtime_checkable
class TraceSink(Protocol):
    """The sink protocol: accept events, release resources on close."""

    def emit(self, event: dict) -> None: ...

    def close(self) -> None: ...


class JsonlTraceSink:
    """Append events to a JSONL file, one flushed line per event."""

    def __init__(self, path: str):
        self.path = path
        self.emitted = 0
        self._handle: IO[str] | None = open(path, "w")

    def emit(self, event: dict) -> None:
        if self._handle is None:
            raise ValueError(f"trace sink {self.path} is closed")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RingBufferTraceSink:
    """Keep the newest ``capacity`` events in memory.

    ``emitted`` counts every event ever seen, so a reader can tell that
    the buffer wrapped (``emitted > len(events())``) — a silent-truncation
    guard for incident analysis.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.emitted = 0
        self._buffer: deque[dict] = deque(maxlen=capacity)

    def emit(self, event: dict) -> None:
        self._buffer.append(event)
        self.emitted += 1

    def events(self, kind: str | None = None) -> list[dict]:
        """Buffered events, oldest first; optionally filtered by kind."""
        if kind is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.get("kind") == kind]

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._buffer)

    def close(self) -> None:
        """Nothing to release; kept for sink-protocol symmetry."""
