"""Command-line interface."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_plain(self, capsys):
        assert main(["run", "gap"]) == 0
        out = capsys.readouterr().out
        assert "halted" in out and "correct" in out

    def test_run_with_restore(self, capsys):
        assert main(["run", "gap", "--restore", "--interval", "50"]) == 0
        out = capsys.readouterr().out
        assert "rollbacks" in out and "checkpoints_created" in out

    def test_run_delayed_policy(self, capsys):
        assert main(["run", "vortex", "--restore", "--policy", "delayed"]) == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "spice"])


class TestInject:
    def test_inject_reports_outcome(self, capsys):
        assert main(["inject", "gcc", "--seed", "3", "--cycle", "600"]) == 0
        out = capsys.readouterr().out
        assert "flipped bit" in out and "outcome:" in out

    def test_inject_with_restore(self, capsys):
        assert main(
            ["inject", "gcc", "--seed", "3", "--cycle", "600", "--restore"]
        ) == 0
        assert "rollbacks" in capsys.readouterr().out

    def test_inject_latches_only(self, capsys):
        assert main(
            ["inject", "mcf", "--seed", "1", "--latches-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "ram state" not in out


class TestCampaign:
    def test_arch_campaign(self, capsys):
        assert main(
            ["campaign", "arch", "--trials", "6", "--workloads", "gcc"]
        ) == 0
        out = capsys.readouterr().out
        assert "masked" in out and "coverage" in out

    def test_uarch_campaign(self, capsys):
        assert main(
            ["campaign", "uarch", "--trials", "6", "--workloads", "gcc"]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoint interval" in out

    def test_bad_workload_list(self):
        with pytest.raises(SystemExit):
            main(["campaign", "arch", "--workloads", "gcc,bogus"])


class TestFitAndPerf:
    def test_fit_table(self, capsys):
        assert main(["fit", "--baseline", "0.08", "--combined", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "8.0x" in out

    def test_perf_points(self, capsys):
        assert main(["perf", "--intervals", "100", "--workloads", "gap"]) == 0
        out = capsys.readouterr().out
        assert "imm" in out and "delayed" in out


class TestWorkloadsListing:
    def test_lists_all_seven(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("bzip2", "gap", "gcc", "gzip", "mcf", "parser", "vortex"):
            assert name in out
