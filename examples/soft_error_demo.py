#!/usr/bin/env python
"""Soft-error demo: the same bit flip, with and without ReStore.

Injects a single-bit fault into a live pipeline latch while the gcc-like
workload runs, twice:

- on a **baseline** pipeline, where the fault either corrupts the output
  silently or crashes the program;
- on a **ReStore** pipeline, where a symptom (exception / high-confidence
  misprediction / watchdog) triggers rollback to a checkpoint and the
  re-execution produces the correct result.

The script scans seeds until it finds a fault that actually fails on the
baseline (most flips are masked — that is the paper's Figure 4), then
replays exactly that fault under ReStore.

Run: ``python examples/soft_error_demo.py``
"""

from repro.restore import ReStoreController
from repro.uarch import load_pipeline
from repro.uarch.latches import LATCH_CLASSES
from repro.util.rng import DeterministicRng
from repro.workloads import build_workload

WORKLOAD = "gcc"
INJECT_CYCLE = 900


def run_once(seed: int, with_restore: bool):
    bundle = build_workload(WORKLOAD)
    pipeline = load_pipeline(bundle.program)
    controller = (
        ReStoreController(pipeline, interval=100) if with_restore else None
    )
    pipeline.run(INJECT_CYCLE)
    rng = DeterministicRng(seed)
    field, bit = pipeline.registry.pick_bit(rng, classes=LATCH_CLASSES)
    field.flip(bit)
    pipeline.run(3_000_000)
    wrong = bundle.check(pipeline.memory) if pipeline.halted else None
    return pipeline, controller, field, bit, wrong


def describe(pipeline, wrong) -> str:
    if not pipeline.halted:
        return (f"CRASHED ({pipeline.exception_name() or 'deadlock'})"
                if pipeline.stopped else "HUNG")
    if wrong:
        return f"SILENT DATA CORRUPTION ({wrong[0]})"
    return "correct output"


def main() -> None:
    print(f"hunting for a failure-inducing latch fault in '{WORKLOAD}'...")
    for seed in range(500):
        pipeline, _, field, bit, wrong = run_once(seed, with_restore=False)
        baseline_failed = (not pipeline.halted) or bool(wrong)
        if baseline_failed:
            print(f"\nseed {seed}: flipped bit {bit} of {field.name} "
                  f"({field.state_class} state) at cycle {INJECT_CYCLE}")
            print(f"  baseline pipeline : {describe(pipeline, wrong)}")
            restored, controller, _, _, wrong2 = run_once(seed, with_restore=True)
            print(f"  ReStore pipeline  : {describe(restored, wrong2)}")
            stats = controller.stats
            print(f"    rollbacks={stats.rollbacks} "
                  f"detected_errors={stats.detected_errors} "
                  f"false_positives={stats.false_positives} "
                  f"genuine_exceptions={stats.genuine_exceptions}")
            if restored.halted and not wrong2:
                print("\nReStore detected the symptom, rolled back to a "
                      "checkpoint, and re-executed cleanly. OK")
                return
            print("    (this fault escaped ReStore's symptom coverage — "
                  "that is the sdc/latent residue of Figure 5; trying on...)")
    raise SystemExit("no demonstrable fault found — increase the seed range")


if __name__ == "__main__":
    main()
