"""Microbenchmarks for the simulation hot paths.

Measures three throughput metrics that bound every experiment in this
reproduction:

- ``arch_steps_per_sec``     — architectural simulator, instructions/second
- ``uarch_cycles_per_sec``   — cycle-level pipeline, cycles/second
- ``campaign_trials_per_sec``— end-to-end fault-injection trials/second

plus, when the simulators expose their unoptimised reference paths, the
machine-independent ratios

- ``arch_speedup``  — fast path vs. per-step decode reference path
- ``uarch_speedup`` — fast path vs. allocation-heavy reference path
- ``arch_lockstep_speedup`` — lockstep batch-trial scheduler vs. the
  serial per-trial path, golden-run time excluded via a shared
  golden-artifact cache (both legs run warm)

Results are written as schema'd JSON (see ``SCHEMA``). Usage::

    PYTHONPATH=src python benchmarks/perf/perfbench.py --scale smoke \
        --out benchmarks/out/perf_current.json

Refresh the committed baseline after an intentional perf change::

    PYTHONPATH=src python benchmarks/perf/perfbench.py --scale smoke \
        --out benchmarks/out/perf_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import __version__  # noqa: E402
from repro.arch.simulator import ArchSimulator, load_program  # noqa: E402
from repro.campaign import run_campaign  # noqa: E402
from repro.faults import ArchCampaignConfig  # noqa: E402
from repro.uarch.pipeline import Pipeline, load_pipeline  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

SCHEMA = "repro-perf/1"

# Per-scale knobs: minimum wall-clock seconds per metric, workload subsets,
# and campaign sizing. "smoke" is the CI gate; "full" is for DESIGN.md tables.
SCALES = {
    "smoke": {
        "min_seconds": 0.6,
        "arch_workloads": ("gzip", "mcf", "parser"),
        "uarch_workloads": ("gzip", "mcf"),
        "uarch_max_cycles": 4_000,
        "campaign": {"trials_per_workload": 12, "injection_points": 6,
                     "workloads": ("gzip", "mcf")},
        "lockstep_campaign": {"trials_per_workload": 60,
                              "injection_points": 10,
                              "workloads": ("gzip", "mcf", "parser")},
    },
    "full": {
        "min_seconds": 2.0,
        "arch_workloads": ("bzip2", "gap", "gcc", "gzip", "mcf", "parser", "vortex"),
        "uarch_workloads": ("bzip2", "gap", "gcc", "gzip", "mcf", "parser", "vortex"),
        "uarch_max_cycles": 8_000,
        "campaign": {"trials_per_workload": 40, "injection_points": 10,
                     "workloads": ("gzip", "mcf", "parser")},
        "lockstep_campaign": {"trials_per_workload": 120,
                              "injection_points": 20,
                              "workloads": ("gzip", "mcf", "parser")},
    },
}

SEED = 2005
ARCH_MAX_INSTRUCTIONS = 400_000


def _bench_arch(workloads, min_seconds: float, reference: bool = False):
    """Total retired instructions per second across repeated full runs."""
    bundles = [build_workload(name, 1, SEED) for name in workloads]
    # Warm the decode caches once so steady-state throughput is measured.
    for bundle in bundles:
        _arch_sim(bundle, reference).run(ARCH_MAX_INSTRUCTIONS)
    retired = 0
    start = time.perf_counter()
    while True:
        for bundle in bundles:
            sim = _arch_sim(bundle, reference)
            sim.run(ARCH_MAX_INSTRUCTIONS)
            retired += sim.retired
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return retired / elapsed, retired


def _arch_sim(bundle, reference: bool) -> ArchSimulator:
    sim = load_program(bundle.program)
    if reference:
        sim = ArchSimulator(sim.state, predecode=False)
    return sim


def _bench_uarch(workloads, max_cycles: int, min_seconds: float,
                 reference: bool = False):
    """Total pipeline cycles per second across repeated bounded runs."""
    bundles = [build_workload(name, 1, SEED) for name in workloads]
    cycles = 0
    start = time.perf_counter()
    while True:
        for bundle in bundles:
            pipeline = _uarch_pipeline(bundle, reference)
            pipeline.run(max_cycles)
            cycles += pipeline.cycle_count
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return cycles / elapsed, cycles


def _uarch_pipeline(bundle, reference: bool) -> Pipeline:
    if reference:
        return load_pipeline(bundle.program, fast=False)
    return load_pipeline(bundle.program)


def _bench_campaign(campaign_cfg: dict, lockstep: bool = True,
                    cache_dir: str | None = None):
    """End-to-end arch fault-injection campaign trials per second."""
    config = ArchCampaignConfig(seed=SEED, **campaign_cfg)
    start = time.perf_counter()
    report = run_campaign(
        "arch", config, cache_dir=cache_dir, lockstep=lockstep
    )
    elapsed = time.perf_counter() - start
    trials = len(report.result.trials)
    return trials / elapsed, trials


def _bench_lockstep_speedup(campaign_cfg: dict):
    """Lockstep vs. serial trial throughput, golden-run time excluded.

    Both legs run against a pre-warmed golden-artifact cache, so the
    ratio measures trial execution alone — the quantity the scheduler
    actually changes — and stays machine-independent enough to gate.
    """
    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as cache_dir:
        config = ArchCampaignConfig(seed=SEED, **campaign_cfg)
        run_campaign("arch", config, cache_dir=cache_dir)  # warm the cache
        lock_rate, trials = _bench_campaign(
            campaign_cfg, lockstep=True, cache_dir=cache_dir
        )
        serial_rate, _ = _bench_campaign(
            campaign_cfg, lockstep=False, cache_dir=cache_dir
        )
    return lock_rate, serial_rate, trials


def _supports_reference_paths() -> bool:
    """Do the simulators expose their unoptimised reference paths?"""
    try:
        import inspect

        return (
            "predecode" in inspect.signature(ArchSimulator.__init__).parameters
            and "fast" in inspect.signature(Pipeline.__init__).parameters
        )
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return False


def run_benchmarks(scale: str, with_reference: bool = True) -> dict:
    knobs = SCALES[scale]
    min_seconds = knobs["min_seconds"]
    metrics: dict[str, dict] = {}

    arch_rate, arch_n = _bench_arch(knobs["arch_workloads"], min_seconds)
    metrics["arch_steps_per_sec"] = {
        "value": round(arch_rate, 1), "unit": "instructions/s",
        "details": {"workloads": list(knobs["arch_workloads"]),
                    "instructions": arch_n},
    }

    uarch_rate, uarch_n = _bench_uarch(
        knobs["uarch_workloads"], knobs["uarch_max_cycles"], min_seconds
    )
    metrics["uarch_cycles_per_sec"] = {
        "value": round(uarch_rate, 1), "unit": "cycles/s",
        "details": {"workloads": list(knobs["uarch_workloads"]),
                    "cycles": uarch_n},
    }

    trial_rate, trials = _bench_campaign(knobs["campaign"])
    metrics["campaign_trials_per_sec"] = {
        "value": round(trial_rate, 2), "unit": "trials/s",
        "details": {"trials": trials, **knobs["campaign"]},
    }

    lock_rate, serial_rate, lock_trials = _bench_lockstep_speedup(
        knobs["lockstep_campaign"]
    )
    metrics["arch_lockstep_speedup"] = {
        "value": round(lock_rate / serial_rate, 2), "unit": "x",
        "details": {
            "lockstep_trials_per_sec": round(lock_rate, 2),
            "serial_trials_per_sec": round(serial_rate, 2),
            "trials": lock_trials,
            **knobs["lockstep_campaign"],
        },
    }

    if with_reference and _supports_reference_paths():
        ref_arch, _ = _bench_arch(
            knobs["arch_workloads"], min_seconds, reference=True
        )
        ref_uarch, _ = _bench_uarch(
            knobs["uarch_workloads"], knobs["uarch_max_cycles"], min_seconds,
            reference=True,
        )
        metrics["arch_speedup"] = {
            "value": round(arch_rate / ref_arch, 2), "unit": "x",
            "details": {"reference_steps_per_sec": round(ref_arch, 1)},
        }
        metrics["uarch_speedup"] = {
            "value": round(uarch_rate / ref_uarch, 2), "unit": "x",
            "details": {"reference_cycles_per_sec": round(ref_uarch, 1)},
        }

    return {
        "schema": SCHEMA,
        "version": __version__,
        "scale": scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--out", default=None,
                        help="write JSON here (default: stdout)")
    parser.add_argument("--no-reference", action="store_true",
                        help="skip the slow reference-path ratio metrics")
    args = parser.parse_args(argv)

    report = run_benchmarks(args.scale, with_reference=not args.no_reference)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(payload)
        print(f"wrote {args.out}")
    sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
