"""Inspect a campaign journal: ``repro campaign status <journal>``.

Reads the append-only JSONL journal a (possibly still-running, possibly
interrupted) campaign is streaming to and summarizes how far it got:
per-workload trial counts by outcome, which workloads finished or were
skipped, and the manifest identity (level, seed, config digest) needed
to decide whether ``--resume`` will accept it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.outcomes import OUTCOME_CRASH, OUTCOME_OK, OUTCOME_TIMEOUT
from repro.util.journal import JournalError, read_journal
from repro.util.tables import format_table

_STATUSES = (OUTCOME_OK, OUTCOME_CRASH, OUTCOME_TIMEOUT)


@dataclass
class WorkloadStatus:
    """Journal progress for one workload."""

    workload: str
    counts: dict[str, int] = field(default_factory=dict)
    state: str = "in-progress"  # in-progress | done | skipped
    skip_reason: str | None = None

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class CampaignStatus:
    """Everything a journal says about a campaign run so far."""

    path: str
    manifest: dict
    workloads: dict[str, WorkloadStatus]
    # The newest journaled telemetry aggregate entry, if the run wrote one.
    telemetry: dict | None = None
    # ``workload -> point -> [completed, failing]`` from the trial lines;
    # feeds the per-point Wilson-margin table (adaptive or not).
    point_tallies: dict = field(default_factory=dict)

    @property
    def total_trials(self) -> int:
        return sum(status.total for status in self.workloads.values())

    def counts(self) -> dict[str, int]:
        totals = {status: 0 for status in _STATUSES}
        for workload in self.workloads.values():
            for status, count in workload.counts.items():
                totals[status] = totals.get(status, 0) + count
        return totals

    @property
    def complete(self) -> bool:
        return bool(self.workloads) and all(
            status.state != "in-progress" for status in self.workloads.values()
        )


def summarize_journal(path: str) -> CampaignStatus:
    """Parse a journal into a :class:`CampaignStatus`."""
    entries = read_journal(path)
    if not entries or entries[0].get("kind") != "manifest":
        raise JournalError(f"{path}: missing manifest line; not a campaign journal")
    manifest = entries[0]
    workloads: dict[str, WorkloadStatus] = {}
    for name in manifest.get("config", {}).get("workloads", ()):  # planned order
        workloads[name] = WorkloadStatus(name)
    seen_keys: set[str] = set()
    telemetry: dict | None = None
    for entry in entries[1:]:
        kind = entry.get("kind")
        if kind == "trial":
            if entry["key"] in seen_keys:
                continue
            seen_keys.add(entry["key"])
            status = workloads.setdefault(
                entry["workload"], WorkloadStatus(entry["workload"])
            )
            outcome = entry["status"]
            status.counts[outcome] = status.counts.get(outcome, 0) + 1
        elif kind == "workload":
            status = workloads.setdefault(
                entry["workload"], WorkloadStatus(entry["workload"])
            )
            status.state = entry.get("status", "done")
            status.skip_reason = entry.get("reason")
        elif kind == "telemetry":
            telemetry = entry  # keep the newest (a resumed run re-appends)
    from repro.planner.margins import journal_point_tallies

    return CampaignStatus(
        path=path, manifest=manifest, workloads=workloads, telemetry=telemetry,
        point_tallies=journal_point_tallies(entries),
    )


def format_status(status: CampaignStatus) -> str:
    """Render a status summary for the CLI."""
    manifest = status.manifest
    rows = []
    for workload in status.workloads.values():
        rows.append(
            [
                workload.workload,
                str(workload.counts.get(OUTCOME_OK, 0)),
                str(workload.counts.get(OUTCOME_CRASH, 0)),
                str(workload.counts.get(OUTCOME_TIMEOUT, 0)),
                workload.state
                + (f" ({workload.skip_reason})" if workload.skip_reason else ""),
            ]
        )
    table = format_table(
        ["workload", "ok", "harness-crash", "harness-timeout", "state"],
        rows,
        title=f"Campaign journal: {status.path}",
    )
    totals = status.counts()
    lines = [
        table,
        "",
        f"level: {manifest.get('level')}  seed: {manifest.get('seed')}  "
        f"config: {manifest.get('config_digest')}  "
        f"version: {manifest.get('version')}",
        f"trials journaled: {status.total_trials} "
        f"(ok {totals[OUTCOME_OK]}, crash {totals[OUTCOME_CRASH]}, "
        f"timeout {totals[OUTCOME_TIMEOUT]})",
        "run state: " + ("complete" if status.complete
                         else "incomplete (resumable with --resume)"),
    ]
    if status.telemetry is not None:
        lines.append(
            f"telemetry: aggregate over {status.telemetry.get('trials', 0)} "
            f"trials ({status.telemetry.get('failing', 0)} failing) — render "
            f"with 'repro campaign report'"
        )
    planner = manifest.get("planner")
    if planner is not None:
        lines.append(
            f"planner: adaptive (margin<={planner.get('margin')}, "
            f"min={planner.get('min_trials')}, "
            f"round={planner.get('round_trials')}, "
            f"prescreen={'on' if planner.get('prescreen', True) else 'off'})"
        )
    if status.point_tallies:
        from repro.planner.margins import format_point_margins

        target = (planner or {}).get("margin", 0.05)
        lines.extend(["", format_point_margins(status.point_tallies, target)])
    return "\n".join(lines)
