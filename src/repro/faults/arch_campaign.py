"""The virtual-machine fault-injection campaign (Figure 2).

Methodology, following Section 3.1 and Section 4.4 of the paper:

1. Run each workload once fault-free, recording the golden trace.
2. Pre-select a set of injection points — dynamic instructions that write a
   register (the paper injected "on a set of about 250-300 points for each
   experiment", with many bits per point making up 12-13k trials).
3. For each trial, fork the machine at the injection point, execute the
   chosen instruction, flip one bit of its result, and monitor propagation:
   the first ISA exception, retired-PC divergence, memory-operation address
   divergence, or store-data divergence, each with its latency in retired
   instructions.
4. A trial fails if it raised an exception, diverged in control flow, ran
   away past the golden run's length, or ended with architectural state
   (registers or memory) different from golden; otherwise the fault was
   masked.

Two execution strategies produce byte-identical journals: the serial path
(one full fork per trial, :func:`_run_trial`) and the lockstep scheduler
(:mod:`repro.faults.lockstep`), which runs every trial of a workload as a
dirty-state overlay against one golden walk. Lockstep is the default; the
serial path remains both the fallback when the scheduler fails and the
differential twin the test suite compares against.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Collection
from dataclasses import dataclass, field

from repro.arch.simulator import ArchSimulator, StopReason, load_program
from repro.arch.state import ArchState
from repro.cache import ArchGoldenArtifact, GoldenArtifactCache
from repro.campaign.guard import TrialGuard
from repro.campaign.outcomes import (
    OUTCOME_OK,
    CampaignWorkloadWarning,
    GoldenRunError,
    TrialOutcome,
    WorkloadRunOutcome,
    trial_key,
    validate_shard,
)
from repro.faults.classify import (
    ARCH_CATEGORIES,
    ArchTrialResult,
    classify_arch_trial,
)
from repro.faults.lockstep import run_lockstep_trials
from repro.faults.models import ArchResultBitFlip
from repro.util.bitops import flip_bit
from repro.util.rng import DeterministicRng
from repro.util.stats import BinomialEstimate, CategoryCounter
from repro.util.tables import format_table
from repro.workloads import WORKLOAD_NAMES, build_workload

# Figure 2's x-axis: symptom-detection latency windows, in instructions.
FIGURE2_WINDOWS: tuple[int | None, ...] = (
    25, 50, 100, 200, 500, 1000, 10_000, 100_000, None,
)

# Architectural checkpoint cadence for cached golden runs, in retired
# instructions — the paper's periodic-checkpoint idea applied to campaign
# startup. Smaller means finer fast-forward granularity but bigger cache
# entries (each snapshot clones the memory image).
ARCH_SNAPSHOT_INTERVAL = 20_000


@dataclass(frozen=True)
class ArchCampaignConfig:
    """Knobs for one campaign run. Defaults scale to a laptop; raise
    ``trials_per_workload`` toward the paper's ~1000 for tighter intervals."""

    trials_per_workload: int = 210
    injection_points: int = 70
    fault_model: ArchResultBitFlip = field(default_factory=ArchResultBitFlip)
    seed: int = 2005
    workload_scale: int = 1
    max_instructions: int = 400_000
    post_injection_slack: int = 2_000
    workloads: tuple[str, ...] = WORKLOAD_NAMES

    def __post_init__(self) -> None:
        if self.trials_per_workload < 1:
            raise ValueError(
                f"trials_per_workload must be >= 1, got {self.trials_per_workload}"
            )
        if self.injection_points < 1:
            raise ValueError(
                f"injection_points must be >= 1, got {self.injection_points}"
            )
        if self.injection_points > self.trials_per_workload:
            raise ValueError(
                f"injection_points ({self.injection_points}) cannot exceed "
                f"trials_per_workload ({self.trials_per_workload}): every "
                f"injection point needs at least one trial"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        if self.workload_scale < 1:
            raise ValueError(
                f"workload_scale must be >= 1, got {self.workload_scale}"
            )
        if self.max_instructions < 1:
            raise ValueError(
                f"max_instructions must be >= 1, got {self.max_instructions}"
            )
        if self.post_injection_slack < 0:
            raise ValueError(
                f"post_injection_slack must be >= 0, got {self.post_injection_slack}"
            )
        if not self.workloads:
            raise ValueError("workloads must not be empty")
        unknown = [name for name in self.workloads if name not in WORKLOAD_NAMES]
        if unknown:
            raise ValueError(f"unknown workloads {unknown}; know {WORKLOAD_NAMES}")


@dataclass
class ArchCampaignResult:
    """All trials of a campaign plus reporting helpers."""

    config: ArchCampaignConfig
    trials: list[ArchTrialResult]
    skipped_workloads: tuple[tuple[str, str], ...] = ()

    def counter(
        self, window: int | None, workload: str | None = None
    ) -> CategoryCounter:
        """Category tallies at one detection-latency window."""
        counter = CategoryCounter(ARCH_CATEGORIES)
        for trial in self.trials:
            if workload is not None and trial.workload != workload:
                continue
            counter.add(classify_arch_trial(trial, window))
        return counter

    @property
    def masked_estimate(self) -> BinomialEstimate:
        masked = sum(1 for trial in self.trials if trial.masked)
        return BinomialEstimate(masked, len(self.trials))

    def failure_coverage(
        self, window: int | None, categories: tuple[str, ...] = ("exception", "cfv")
    ) -> BinomialEstimate:
        """Fraction of *failing* trials whose symptom falls in ``categories``
        within ``window`` — the paper's "nearly 80% of the failure inducing
        faults ... within 100 instructions" number."""
        failing = [trial for trial in self.trials if trial.failing]
        covered = sum(
            1
            for trial in failing
            if classify_arch_trial(trial, window) in categories
        )
        return BinomialEstimate(covered, max(len(failing), 1))

    def fractions(self, window: int | None) -> dict[str, float]:
        counter = self.counter(window)
        return {name: counter.proportion(name) for name in ARCH_CATEGORIES}

    def table(self, windows: tuple[int | None, ...] = FIGURE2_WINDOWS) -> str:
        """The Figure 2 data as an ASCII table (rows = windows)."""
        rows = []
        for window in windows:
            counter = self.counter(window)
            label = "inf" if window is None else str(window)
            rows.append(
                [label]
                + [f"{counter.proportion(name):.1%}" for name in ARCH_CATEGORIES]
            )
        text = format_table(
            ["latency"] + list(ARCH_CATEGORIES),
            rows,
            title="Figure 2: outcome shares vs symptom-detection latency",
        )
        for name, reason in self.skipped_workloads:
            text += f"\nnote: workload {name} skipped ({reason})"
        return text


def run_arch_campaign(config: ArchCampaignConfig) -> ArchCampaignResult:
    """Run the full campaign over every configured workload.

    A thin serial wrapper over :func:`repro.campaign.runner.run_campaign`;
    use that entry point directly for journaling, resume, containment
    budgets, and parallel execution.
    """
    from repro.campaign.runner import run_campaign

    return run_campaign("arch", config).result


def _load_golden(
    config: ArchCampaignConfig,
    workload: str,
    cache: GoldenArtifactCache | None,
):
    """Build the workload and obtain its validated golden trace.

    Returns ``(bundle, trace, golden_cache)``; raises (``GoldenRunError``
    for pathological workloads) when the workload must be skipped.
    """
    golden_cache: str | None = None
    bundle = build_workload(workload, config.workload_scale, config.seed)
    artifact = (
        cache.load("arch", bundle.program, config)
        if cache is not None
        else None
    )
    if artifact is not None:
        trace = artifact.trace
        golden_cache = "hit"
    else:
        golden_sim = load_program(bundle.program)
        trace = golden_sim.run_with_trace(
            config.max_instructions,
            snapshot_every=ARCH_SNAPSHOT_INTERVAL if cache is not None else 0,
        )
    # Validate on *both* paths: a cached golden artifact of a
    # pathological workload (failing golden run, no register writers)
    # must skip exactly like a fresh run would, not crash downstream
    # where the code divides by the injection-point count.
    if trace.exception is not None:
        raise GoldenRunError(
            f"golden run of {workload} raised {trace.exception}"
        )
    if not trace.writer_steps:
        raise GoldenRunError(f"workload {workload} wrote no registers")
    if golden_cache is None and cache is not None:
        cache.store(
            "arch", bundle.program, config, ArchGoldenArtifact(trace=trace)
        )
        golden_cache = "miss"
    return bundle, trace, golden_cache


def run_workload_trials(
    config: ArchCampaignConfig,
    workload: str,
    completed: Collection[str] = frozenset(),
    guard: TrialGuard | None = None,
    on_outcome: Callable[[TrialOutcome], None] | None = None,
    shard: tuple[int, int] | None = None,
    cache: GoldenArtifactCache | None = None,
    lockstep: bool = True,
    planner=None,
    prior: Collection[TrialOutcome] = (),
    planner_round: int | None = None,
    allocation: tuple[tuple[int, int, int], ...] | None = None,
) -> WorkloadRunOutcome:
    """Execute one workload's trials under containment.

    Each trial draws its randomness from an independent stream derived
    from ``(seed, workload, point, index)``, so any subset of trials —
    a resumed run, a parallel shard — reproduces exactly the records the
    uninterrupted serial campaign would have produced. Trials whose key
    is in ``completed`` (already journaled) are skipped; ``on_outcome``
    observes each fresh outcome as soon as it exists, which is how the
    runner streams results to the journal.

    ``shard=(shard_index, shard_count)`` restricts execution to the
    stride slice of the per-point trial index space with
    ``index % shard_count == shard_index``. A stride (rather than a
    contiguous range) is used because the per-point trial count is only
    known once the golden run has been walked; the stride slices cover
    the index space for any per-point count, so the union of all shards
    is exactly the serial campaign, trial for trial.

    With a :class:`~repro.cache.GoldenArtifactCache`, the golden run,
    comparator indices, and periodic architectural snapshots are loaded
    from (or stored into) the content-addressed store, and the prefix
    simulator fast-forwards from the nearest snapshot at or before the
    first pending injection point instead of stepping from reset. Cached
    and uncached executions are bit-identical.

    With ``lockstep=True`` (the default) all pending trials run through
    the :mod:`repro.faults.lockstep` scheduler against a single golden
    walk and the recorded results are emitted in serial journal order; a
    scheduler failure falls back to the serial per-trial path with a
    warning. Note that per-trial timeout containment is coarser under
    lockstep: the guard wraps only the result emission, so a wedged
    trial surfaces as a scheduler-level failure rather than one
    contained trial record.

    A failing golden run skips the workload with a structured warning
    instead of aborting the campaign.

    Adaptive mode (``planner`` set to a
    :class:`~repro.planner.PlannerConfig`) replaces the uniform split
    with the round-based planner: round 0 gives every point
    ``min_trials``, later rounds top up points whose Wilson margin is
    still wider than the target, and provably-dead points (see
    :mod:`repro.planner.prescreen`) emit their masked records without
    simulation. ``prior`` supplies journaled outcomes so a resumed run
    replays the planner's rounds instead of re-executing them;
    ``planner_round``/``allocation`` let the campaign service execute
    one round at a time (round 0 derives its own allocation and reports
    the point/prescreen metadata; later rounds execute the explicit
    allocation the scheduler computed).
    """
    guard = guard or TrialGuard()
    validate_shard(shard)
    wrng = DeterministicRng(config.seed).child("arch-campaign").child(workload)
    try:
        bundle, trace, golden_cache = _load_golden(config, workload, cache)
        # Number of memory operations retired up to and including each
        # step, recorded while the golden run executed.
        memop_counts = trace.memop_counts
    except Exception as exc:
        reason = f"{type(exc).__name__}: {exc}"
        warnings.warn(
            f"skipping workload {workload}: {reason}",
            CampaignWorkloadWarning,
            stacklevel=2,
        )
        return WorkloadRunOutcome(workload, skip_reason=reason)

    point_count = min(config.injection_points, len(trace.writer_steps))
    points = sorted(wrng.child("points").sample(trace.writer_steps, point_count))
    if planner is not None:
        return _run_adaptive(
            config, workload, planner, points, bundle, trace, memop_counts,
            wrng, completed, guard, on_outcome, shard, lockstep, prior,
            planner_round, allocation, golden_cache,
        )
    # Distribute trials so exactly trials_per_workload run: the first
    # ``extra`` points (in sorted order) take one more than the rest.
    base_trials, extra = divmod(config.trials_per_workload, point_count)

    # One prefix simulator walks forward through all injection points,
    # starting from the nearest cached snapshot when one is available.
    prefix = _prefix_simulator(
        bundle, trace,
        _first_pending_uniform(workload, points, base_trials, extra,
                               completed, shard),
    )
    # The full pending-trial schedule in serial journal order. Rng children
    # are pure (seed, label) derivations, so drawing every trial's bit up
    # front is byte-identical to drawing it just before the trial runs.
    plan: list[tuple[int, list[tuple[int, int, DeterministicRng]]]] = []
    for position, point in enumerate(points):
        per_point = base_trials + (1 if position < extra else 0)
        pending: list[tuple[int, int, DeterministicRng]] = []
        for index in range(per_point):
            if shard is not None and index % shard[1] != shard[0]:
                continue
            if trial_key(workload, point, index) in completed:
                continue
            trial_rng = wrng.child(f"trial:{point}:{index}")
            pending.append((index, config.fault_model.choose_bit(trial_rng),
                            trial_rng))
        if pending:
            plan.append((point, pending))

    results: dict[tuple[int, int], ArchTrialResult] | None = None
    if lockstep and plan:
        try:
            results = run_lockstep_trials(
                config, workload, trace, memop_counts, prefix,
                [(point, [(index, bit) for index, bit, _ in pending])
                 for point, pending in plan],
            )
            missing = [
                (point, index)
                for point, pending in plan
                for index, _, _ in pending
                if (point, index) not in results
            ]
            if missing:
                raise AssertionError(
                    f"lockstep scheduler dropped {len(missing)} trials "
                    f"(first: {missing[0]})"
                )
        except Exception as exc:
            warnings.warn(
                f"lockstep scheduler failed for {workload} "
                f"({type(exc).__name__}: {exc}); falling back to serial "
                f"trials",
                CampaignWorkloadWarning,
                stacklevel=2,
            )
            results = None
            # The scheduler consumed the prefix walker; rebuild it.
            prefix = _prefix_simulator(
                bundle, trace,
                _first_pending_uniform(workload, points, base_trials, extra,
                                       completed, shard),
            )

    outcomes: list[TrialOutcome] = []
    for point, pending in plan:
        if results is None:
            if prefix.retired < point and prefix.running:
                prefix.run(point - prefix.retired)
                prefix.resume()
            if not prefix.running:  # pragma: no cover - golden ran fine
                break
        for index, bit, trial_rng in pending:
            key = trial_key(workload, point, index)
            if results is None:
                runner = (
                    lambda point=point, bit=bit: _run_trial(
                        workload, prefix, trace, memop_counts, point, bit,
                        config,
                    )
                )
            else:
                runner = (
                    lambda point=point, index=index: results[(point, index)]
                )
            outcome = guard.run(
                key, workload, point, index, runner,
                descriptor={
                    "level": "arch",
                    "seed": config.seed,
                    "trial_seed": trial_rng.seed,
                    "bit": bit,
                },
            )
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
    return WorkloadRunOutcome(workload, outcomes, golden_cache=golden_cache)


def _run_adaptive(
    config: ArchCampaignConfig,
    workload: str,
    planner_config,
    points: list[int],
    bundle,
    trace,
    memop_counts,
    wrng: DeterministicRng,
    completed: Collection[str],
    guard: TrialGuard,
    on_outcome: Callable[[TrialOutcome], None] | None,
    shard: tuple[int, int] | None,
    lockstep: bool,
    prior: Collection[TrialOutcome],
    planner_round: int | None,
    allocation: tuple[tuple[int, int, int], ...] | None,
    golden_cache,
) -> WorkloadRunOutcome:
    """Adaptive (planner-driven) execution of one workload.

    Three entry modes share one round executor:

    - ``planner_round is None``: the full local loop — plan a round,
      execute it, feed every outcome back, repeat until the planner
      stops. Journaled ``prior`` outcomes are replayed into the planner
      instead of re-executed, which is how a resumed run reconstructs
      the identical round structure (planner decisions are pure
      functions of the cumulative tallies at round boundaries).
    - ``planner_round == 0``: the service's round-0 unit — derive the
      prescreen set, plan and execute round 0 only, and report the
      point/prescreen metadata so the scheduler can replay the planner
      from stored trial rows.
    - ``planner_round > 0``: execute the explicit ``allocation`` the
      scheduler computed (later rounds never touch prescreened points,
      so no planner state is needed here).

    Prescreened points emit fabricated masked records (bit drawn from
    the same per-trial stream, so a differential full-simulation run is
    byte-identical) through the same guard; they cost no simulation and
    no budget.
    """
    from repro.planner import (
        CampaignPlanner,
        prescreen_dead_points,
        resolve_budget,
    )

    if planner_round is None and shard is not None:
        raise ValueError(
            "sharded adaptive execution requires per-round scheduling "
            "(pass planner_round/allocation)"
        )
    prior_by_key = {(o.point, o.index): o for o in prior}
    budget = resolve_budget(planner_config, config)
    fresh: list[TrialOutcome] = []

    def run_round(
        alloc: list[tuple[int, int, int]],
        prescreened: set[int],
    ) -> list[tuple[int, bool, bool]]:
        # Expand the allocation into concrete (index, bit, rng) trials,
        # respecting the shard stride; replayed prior trials stay in the
        # emission walk (they feed the planner) but are not re-executed.
        entries: list[tuple[int, list[tuple[int, int, DeterministicRng]]]] = []
        for point, start, count in alloc:
            pend: list[tuple[int, int, DeterministicRng]] = []
            for index in range(start, start + count):
                if shard is not None and index % shard[1] != shard[0]:
                    continue
                trial_rng = wrng.child(f"trial:{point}:{index}")
                pend.append(
                    (index, config.fault_model.choose_bit(trial_rng),
                     trial_rng)
                )
            entries.append((point, pend))
        live_plan: list[tuple[int, list[tuple[int, int]]]] = []
        for point, pend in entries:
            if point in prescreened:
                continue
            todo = [(index, bit) for index, bit, _ in pend
                    if (point, index) not in prior_by_key]
            if todo:
                live_plan.append((point, todo))

        results: dict[tuple[int, int], ArchTrialResult] | None = None
        prefix: ArchSimulator | None = None
        if live_plan:
            prefix = _prefix_simulator(bundle, trace, live_plan[0][0])
            if lockstep:
                try:
                    results = run_lockstep_trials(
                        config, workload, trace, memop_counts, prefix,
                        live_plan,
                    )
                    missing = [
                        (point, index)
                        for point, todo in live_plan
                        for index, _ in todo
                        if (point, index) not in results
                    ]
                    if missing:
                        raise AssertionError(
                            f"lockstep scheduler dropped {len(missing)} "
                            f"trials (first: {missing[0]})"
                        )
                except Exception as exc:
                    warnings.warn(
                        f"lockstep scheduler failed for {workload} "
                        f"({type(exc).__name__}: {exc}); falling back to "
                        f"serial trials",
                        CampaignWorkloadWarning,
                        stacklevel=3,
                    )
                    results = None
                    prefix = _prefix_simulator(bundle, trace,
                                               live_plan[0][0])

        observations: list[tuple[int, bool, bool]] = []
        for point, pend in entries:
            needs_serial = (
                results is None
                and prefix is not None
                and point not in prescreened
                and any((point, index) not in prior_by_key
                        for index, _, _ in pend)
            )
            if needs_serial:
                if prefix.retired < point and prefix.running:
                    prefix.run(point - prefix.retired)
                    prefix.resume()
                if not prefix.running:  # pragma: no cover - golden ran fine
                    break
            for index, bit, trial_rng in pend:
                outcome = prior_by_key.get((point, index))
                if outcome is None:
                    key = trial_key(workload, point, index)
                    if point in prescreened:
                        record = ArchTrialResult(
                            workload=workload, inject_step=point, bit=bit
                        )
                        runner = lambda record=record: record
                    elif results is not None:
                        runner = (
                            lambda point=point, index=index:
                            results[(point, index)]
                        )
                    else:
                        runner = (
                            lambda point=point, bit=bit: _run_trial(
                                workload, prefix, trace, memop_counts,
                                point, bit, config,
                            )
                        )
                    outcome = guard.run(
                        key, workload, point, index, runner,
                        descriptor={
                            "level": "arch",
                            "seed": config.seed,
                            "trial_seed": trial_rng.seed,
                            "bit": bit,
                        },
                    )
                    fresh.append(outcome)
                    if on_outcome is not None:
                        on_outcome(outcome)
                record_failing = (
                    bool(outcome.record.failing)
                    if outcome.record is not None else False
                )
                observations.append(
                    (point, outcome.status == OUTCOME_OK, record_failing)
                )
        return observations

    if planner_round is not None and planner_round > 0:
        if allocation is None:
            raise ValueError(
                f"round {planner_round} execution needs an explicit "
                f"allocation"
            )
        run_round(sorted(allocation), set())
        return WorkloadRunOutcome(
            workload, fresh, golden_cache=golden_cache,
            planner_points=tuple(points),
        )

    prescreened = (
        prescreen_dead_points(trace, points)
        if planner_config.prescreen else set()
    )
    planner = CampaignPlanner(
        planner_config, points, prescreened, budget=budget
    )
    if planner_round == 0:
        run_round(planner.plan_round(), prescreened)
        return WorkloadRunOutcome(
            workload, fresh, golden_cache=golden_cache,
            planner_points=tuple(points),
            prescreened_points=tuple(sorted(prescreened)),
        )

    while True:
        alloc = planner.plan_round()
        if not alloc:
            break
        for point, ok, failing in run_round(alloc, prescreened):
            planner.observe(point, ok=ok, failing=failing)
    return WorkloadRunOutcome(
        workload, fresh, golden_cache=golden_cache,
        planner_points=tuple(points),
        prescreened_points=tuple(sorted(prescreened)),
        planner_summary=planner.summary(),
    )


def _first_pending_uniform(
    workload: str,
    points: list[int],
    base_trials: int,
    extra: int,
    completed: Collection[str],
    shard: tuple[int, int] | None,
) -> int | None:
    """The earliest uniform-split injection point with a pending trial."""
    for position, point in enumerate(points):
        per_point = base_trials + (1 if position < extra else 0)
        for index in range(per_point):
            if shard is not None and index % shard[1] != shard[0]:
                continue
            if trial_key(workload, point, index) in completed:
                continue
            return point
    return None


def _prefix_simulator(
    bundle,
    trace,
    first_pending: int | None,
) -> ArchSimulator:
    """A prefix simulator positioned as far forward as snapshots allow.

    The earliest injection point with any pending trial (respecting the
    shard stride and already-journaled keys) bounds how far we may fast-
    forward; the nearest snapshot at or before it is restored. With no
    snapshots (uncached runs) or none early enough, the walk starts from
    reset — exactly the pre-cache behaviour.
    """
    best = None
    if first_pending is not None:
        for snap in trace.snapshots:
            if snap.retired <= first_pending and (
                best is None or snap.retired > best.retired
            ):
                best = snap
    if best is None:
        return load_program(bundle.program)
    sim = ArchSimulator(
        ArchState(regs=list(best.regs), pc=best.pc, memory=best.memory.clone())
    )
    sim.retired = best.retired
    return sim


def _run_trial(
    workload: str,
    prefix: ArchSimulator,
    trace,
    memop_counts: list[int],
    point: int,
    bit: int,
    config: ArchCampaignConfig,
) -> ArchTrialResult:
    faulty = prefix.fork()
    faulty.step()  # execute the chosen instruction
    dest = faulty.last_dest
    if dest < 0:  # pragma: no cover - writer_steps guarantees a destination
        raise AssertionError("injection point wrote no register")
    regs = faulty.state.regs
    regs[dest] = flip_bit(regs[dest], bit)

    golden_pcs = trace.pcs
    golden_memops = trace.memops
    golden_length = len(golden_pcs)

    retired_index = point + 1  # next instruction's index in the golden trace
    memop_index = memop_counts[point]
    exception_latency: int | None = None
    cfv_latency: int | None = None
    memaddr_latency: int | None = None
    memdata_latency: int | None = None

    budget = (golden_length - point) + config.post_injection_slack
    while budget > 0 and faulty.running:
        budget -= 1
        pc = faulty.state.pc
        if cfv_latency is None:
            if retired_index >= golden_length or golden_pcs[retired_index] != pc:
                cfv_latency = retired_index - point
        faulty.step()
        if faulty.stop_reason is StopReason.EXCEPTION:
            exception_latency = retired_index - point
            break
        if not faulty.running:
            break
        memop = faulty.last_memop
        if memop is not None:
            if memop_index < len(golden_memops):
                golden_op = golden_memops[memop_index]
                if memaddr_latency is None and (
                    memop[0] != golden_op[0] or memop[1] != golden_op[1]
                ):
                    memaddr_latency = retired_index - point
                elif (
                    memdata_latency is None
                    and memop[0] == "S"
                    and memop[1] == golden_op[1]
                    and memop[2] != golden_op[2]
                ):
                    memdata_latency = retired_index - point
            memop_index += 1
        retired_index += 1

    failing = _trial_failed(
        faulty, trace, exception_latency, cfv_latency
    )
    return ArchTrialResult(
        workload=workload,
        inject_step=point,
        bit=bit,
        exception_latency=exception_latency,
        cfv_latency=cfv_latency,
        memaddr_latency=memaddr_latency,
        memdata_latency=memdata_latency,
        failing=failing,
    )


def _trial_failed(
    faulty: ArchSimulator,
    trace,
    exception_latency: int | None,
    cfv_latency: int | None,
) -> bool:
    if exception_latency is not None:
        return True
    if faulty.running or faulty.stop_reason is StopReason.LIMIT:
        # Ran past the golden run without halting: runaway execution.
        return True
    if cfv_latency is not None:
        return True
    if tuple(faulty.state.regs) != trace.final_regs:
        return True
    return not faulty.state.memory.equals(trace.final_memory)
