"""Pure execution semantics of the ISA.

Both the architectural simulator and the pipeline model's functional units
call into this module, so the two can never disagree about what an
instruction computes — which is what lets the fault-injection framework use
the architectural simulator as a golden reference for the pipeline.

Everything here is a pure function of the decoded instruction and its
operand values. Memory access and exceptions are the caller's business.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import opcodes as op
from repro.isa.instructions import DecodedInst
from repro.util.bitops import (
    MASK32,
    MASK64,
    sign_extend,
    to_signed64,
    to_unsigned64,
)

SIGNED_MIN = -(1 << 63)
SIGNED_MAX = (1 << 63) - 1


@dataclass(frozen=True)
class OperateResult:
    """Result of an operate-format instruction."""

    value: int
    overflow: bool = False  # signals an arithmetic trap for *V opcodes


def operand_b(inst: DecodedInst, rb_value: int) -> int:
    """The second operand: the literal when present, else the RB value."""
    if inst.is_literal:
        return inst.literal
    return rb_value


def _signed_overflows(value: int) -> bool:
    return not SIGNED_MIN <= value <= SIGNED_MAX


def execute_operate(inst: DecodedInst, a: int, b: int) -> OperateResult:
    """Compute an operate-format instruction on unsigned-64 operands."""
    opcode = inst.opcode
    func = inst.spec.func
    if opcode == op.OP_INTA:
        return _execute_arith(func, a, b)
    if opcode == op.OP_INTL:
        return _execute_logic(func, a, b)
    if opcode == op.OP_INTS:
        return _execute_shift(func, a, b)
    if opcode == op.OP_INTM:
        return _execute_multiply(func, a, b)
    raise ValueError(f"{inst.mnemonic} is not an operate instruction")


def _execute_arith(func: int, a: int, b: int) -> OperateResult:
    signed_a = to_signed64(a)
    signed_b = to_signed64(b)
    if func == op.FUNC_ADDL:
        return OperateResult(sign_extend((a + b) & MASK32, 32))
    if func == op.FUNC_SUBL:
        return OperateResult(sign_extend((a - b) & MASK32, 32))
    if func == op.FUNC_ADDQ:
        return OperateResult(to_unsigned64(a + b))
    if func == op.FUNC_SUBQ:
        return OperateResult(to_unsigned64(a - b))
    if func == op.FUNC_ADDQV:
        total = signed_a + signed_b
        return OperateResult(to_unsigned64(total), overflow=_signed_overflows(total))
    if func == op.FUNC_SUBQV:
        total = signed_a - signed_b
        return OperateResult(to_unsigned64(total), overflow=_signed_overflows(total))
    if func == op.FUNC_CMPEQ:
        return OperateResult(1 if a == b else 0)
    if func == op.FUNC_CMPLT:
        return OperateResult(1 if signed_a < signed_b else 0)
    if func == op.FUNC_CMPLE:
        return OperateResult(1 if signed_a <= signed_b else 0)
    if func == op.FUNC_CMPULT:
        return OperateResult(1 if a < b else 0)
    if func == op.FUNC_CMPULE:
        return OperateResult(1 if a <= b else 0)
    raise ValueError(f"unknown INTA function 0x{func:02x}")


def _execute_logic(func: int, a: int, b: int) -> OperateResult:
    if func == op.FUNC_AND:
        return OperateResult(a & b)
    if func == op.FUNC_BIC:
        return OperateResult(a & ~b & MASK64)
    if func == op.FUNC_BIS:
        return OperateResult(a | b)
    if func == op.FUNC_ORNOT:
        return OperateResult((a | (~b & MASK64)) & MASK64)
    if func == op.FUNC_XOR:
        return OperateResult(a ^ b)
    if func == op.FUNC_EQV:
        return OperateResult((a ^ b) ^ MASK64)
    if func == op.FUNC_CMOVEQ:
        # CMOV semantics: result is B when the condition on A holds, else the
        # old RC value. The caller merges; we report the condition via value.
        raise ValueError("CMOV must be executed with execute_cmov")
    if func in (op.FUNC_CMOVNE, op.FUNC_CMOVLT, op.FUNC_CMOVGE):
        raise ValueError("CMOV must be executed with execute_cmov")
    raise ValueError(f"unknown INTL function 0x{func:02x}")


def is_cmov(inst: DecodedInst) -> bool:
    """True for conditional-move instructions, which also read RC."""
    return inst.is_cmov


def execute_cmov(inst: DecodedInst, a: int, b: int, old_rc: int) -> OperateResult:
    """Conditional move: RC = B if cond(A) else old RC."""
    func = inst.spec.func
    signed_a = to_signed64(a)
    if func == op.FUNC_CMOVEQ:
        take = a == 0
    elif func == op.FUNC_CMOVNE:
        take = a != 0
    elif func == op.FUNC_CMOVLT:
        take = signed_a < 0
    elif func == op.FUNC_CMOVGE:
        take = signed_a >= 0
    else:
        raise ValueError(f"{inst.mnemonic} is not a conditional move")
    return OperateResult(b if take else old_rc)


def _execute_shift(func: int, a: int, b: int) -> OperateResult:
    amount = b & 0x3F
    if func == op.FUNC_SLL:
        return OperateResult((a << amount) & MASK64)
    if func == op.FUNC_SRL:
        return OperateResult(a >> amount)
    if func == op.FUNC_SRA:
        return OperateResult(to_unsigned64(to_signed64(a) >> amount))
    raise ValueError(f"unknown INTS function 0x{func:02x}")


def _execute_multiply(func: int, a: int, b: int) -> OperateResult:
    if func == op.FUNC_MULL:
        return OperateResult(sign_extend((a * b) & MASK32, 32))
    if func == op.FUNC_MULQ:
        return OperateResult((a * b) & MASK64)
    if func == op.FUNC_UMULH:
        return OperateResult(((a * b) >> 64) & MASK64)
    if func == op.FUNC_MULQV:
        product = to_signed64(a) * to_signed64(b)
        return OperateResult(
            to_unsigned64(product), overflow=_signed_overflows(product)
        )
    raise ValueError(f"unknown INTM function 0x{func:02x}")


def branch_taken(inst: DecodedInst, a: int) -> bool:
    """Evaluate a conditional branch's condition on the RA operand."""
    opcode = inst.opcode
    signed_a = to_signed64(a)
    if opcode == op.OP_BEQ:
        return a == 0
    if opcode == op.OP_BNE:
        return a != 0
    if opcode == op.OP_BLT:
        return signed_a < 0
    if opcode == op.OP_BGE:
        return signed_a >= 0
    if opcode == op.OP_BLE:
        return signed_a <= 0
    if opcode == op.OP_BGT:
        return signed_a > 0
    if opcode == op.OP_BLBC:
        return (a & 1) == 0
    if opcode == op.OP_BLBS:
        return (a & 1) == 1
    raise ValueError(f"{inst.mnemonic} is not a conditional branch")


def effective_address(inst: DecodedInst, base: int) -> int:
    """Base-plus-displacement address of a memory operation."""
    offset = inst.disp
    if offset >= 1 << 63:
        offset -= 1 << 64
    return to_unsigned64(base + offset)


def lda_value(inst: DecodedInst, base: int) -> int:
    """Result of LDA / LDAH (address arithmetic, no memory access)."""
    offset = inst.disp
    if offset >= 1 << 63:
        offset -= 1 << 64
    if inst.opcode == op.OP_LDAH:
        offset *= 65536
    return to_unsigned64(base + offset)


def jump_target(rb_value: int) -> int:
    """Target of a jump-format instruction: RB with the low bits cleared."""
    return rb_value & ~0x3 & MASK64


def extend_loaded(inst: DecodedInst, raw: int) -> int:
    """Extend raw loaded bytes per the load flavour."""
    opcode = inst.opcode
    if opcode == op.OP_LDBU:
        return raw & 0xFF
    if opcode == op.OP_LDL:
        return sign_extend(raw & MASK32, 32)
    if opcode == op.OP_LDQ:
        return raw & MASK64
    raise ValueError(f"{inst.mnemonic} is not a load")


def store_value(inst: DecodedInst, value: int) -> int:
    """Truncate the store data to the access width."""
    opcode = inst.opcode
    if opcode == op.OP_STB:
        return value & 0xFF
    if opcode == op.OP_STL:
        return value & MASK32
    if opcode == op.OP_STQ:
        return value & MASK64
    raise ValueError(f"{inst.mnemonic} is not a store")
