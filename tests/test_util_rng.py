"""Deterministic RNG streams."""

from repro.util.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_63_bit_range(self):
        for label in ("x", "y", "z"):
            seed = derive_seed(123, label)
            assert 0 <= seed < (1 << 63)


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_children_are_independent_of_sibling_draws(self):
        parent_a = DeterministicRng(7)
        parent_b = DeterministicRng(7)
        # Consuming draws from one child must not affect another.
        child_a1 = parent_a.child("one")
        child_a1.bits(64)
        child_a2 = parent_a.child("two")
        child_b2 = parent_b.child("two")
        assert child_a2.randint(0, 10**9) == child_b2.randint(0, 10**9)

    def test_randrange_bounds(self):
        rng = DeterministicRng(1)
        values = [rng.randrange(10) for _ in range(200)]
        assert min(values) >= 0 and max(values) <= 9
        assert len(set(values)) > 5

    def test_choice_and_sample(self):
        rng = DeterministicRng(2)
        items = list(range(50))
        assert rng.choice(items) in items
        sample = rng.sample(items, 10)
        assert len(set(sample)) == 10
        assert all(value in items for value in sample)

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_bits_width(self):
        rng = DeterministicRng(4)
        for _ in range(50):
            assert 0 <= rng.bits(12) < (1 << 12)
