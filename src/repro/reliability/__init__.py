"""FIT/MTBF reliability modelling and design-size scaling (Figure 8)."""

from repro.reliability.fit import (
    FIGURE8_DESIGN_SIZES,
    MTBF_GOAL_FIT,
    PAPER_FAILURE_FRACTIONS,
    RAW_FIT_PER_BIT,
    ConfigFailureFractions,
    equivalent_design_factor,
    fit_rate,
    fit_scaling_table,
    max_bits_within_goal,
    mtbf_years,
)

__all__ = [
    "ConfigFailureFractions",
    "FIGURE8_DESIGN_SIZES",
    "MTBF_GOAL_FIT",
    "PAPER_FAILURE_FRACTIONS",
    "RAW_FIT_PER_BIT",
    "equivalent_design_factor",
    "fit_rate",
    "fit_scaling_table",
    "max_bits_within_goal",
    "mtbf_years",
]
