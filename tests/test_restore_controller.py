"""The ReStore controller: recovery, false positives, tuning, policies."""

import pytest

from repro.restore import ReStoreController
from repro.restore.controller import RollbackPolicy, TuningConfig
from repro.restore.symptoms import (
    ExceptionSymptomDetector,
    HighConfidenceMispredictDetector,
    WatchdogSymptomDetector,
)
from repro.uarch import load_pipeline
from repro.uarch.latches import LATCH_CLASSES
from repro.util.rng import DeterministicRng
from repro.workloads import WORKLOAD_NAMES, build_workload


def run_with_controller(workload="gcc", interval=100, **kwargs):
    bundle = build_workload(workload)
    pipeline = load_pipeline(bundle.program)
    controller = ReStoreController(pipeline, interval=interval, **kwargs)
    pipeline.run(2_000_000)
    return bundle, pipeline, controller


class TestFaultFreeOperation:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_output_correct_under_restore(self, name):
        bundle, pipeline, _ = run_with_controller(name)
        assert pipeline.halted
        assert bundle.check(pipeline.memory) == []

    def test_rollbacks_are_false_positives_when_fault_free(self):
        _, _, controller = run_with_controller("bzip2", interval=50)
        stats = controller.stats
        assert stats.rollbacks > 0, "bzip2 should produce HC mispredicts"
        assert stats.false_positives == stats.rollbacks
        assert stats.divergences == 0

    def test_average_rollback_distance_near_1_5_intervals(self):
        _, _, controller = run_with_controller("bzip2", interval=100)
        if controller.stats.rollbacks >= 3:
            distance = controller.average_rollback_distance
            assert 80 <= distance <= 260  # ~1.5x interval, forced-chk noise

    def test_delayed_policy_also_correct(self):
        bundle, pipeline, controller = run_with_controller(
            "mcf", policy=RollbackPolicy.DELAYED
        )
        assert pipeline.halted and bundle.check(pipeline.memory) == []

    def test_event_log_disabled_still_correct(self):
        bundle, pipeline, _ = run_with_controller("gzip", use_event_log=False)
        assert pipeline.halted and bundle.check(pipeline.memory) == []

    def test_summary_keys(self):
        _, _, controller = run_with_controller("gcc")
        summary = controller.summary()
        for key in ("rollbacks", "false_positives", "detected_errors",
                    "average_rollback_distance", "checkpoints_created"):
            assert key in summary


class TestFaultRecovery:
    def _inject_and_run(self, workload, seed, interval=100, classes=LATCH_CLASSES,
                        warmup=400, **kwargs):
        """Inject one latch flip under a live controller."""
        bundle = build_workload(workload)
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(pipeline, interval=interval, **kwargs)
        pipeline.run(warmup)
        rng = DeterministicRng(seed)
        field, bit = pipeline.registry.pick_bit(rng, classes=classes)
        field.flip(bit)
        pipeline.run(2_000_000)
        return bundle, pipeline, controller

    def test_recovery_statistics_over_many_faults(self):
        """With ReStore active, most latch faults must end in a correct
        program outcome (recovered, masked, or surfaced as an exception
        only when rollback confirmed it was pre-checkpoint)."""
        outcomes = {"correct": 0, "wrong": 0, "stopped": 0}
        for seed in range(24):
            bundle, pipeline, controller = self._inject_and_run("gcc", seed)
            if pipeline.halted and bundle.check(pipeline.memory) == []:
                outcomes["correct"] += 1
            elif pipeline.halted:
                outcomes["wrong"] += 1
            else:
                outcomes["stopped"] += 1
        assert outcomes["correct"] >= 18, outcomes

    def test_exception_symptom_triggers_rollback_and_recovers(self):
        """Find a fault that produces an exception symptom and verify the
        rollback recovered it (the exception did not reappear)."""
        found = False
        for seed in range(80):
            # Vary both the target bit and the injection cycle.
            bundle, pipeline, controller = self._inject_and_run(
                "mcf", seed, classes=None, warmup=300 + 53 * seed
            )
            triggered = any(
                isinstance(d, ExceptionSymptomDetector) and d.triggered
                for d in controller.detectors
            )
            if triggered and pipeline.halted and bundle.check(pipeline.memory) == []:
                found = True
                break
        assert found, "no recovered exception-symptom fault found"

    def test_deadlock_recovery_by_rollback(self):
        """Scheduler-state faults can wedge the machine; the watchdog
        symptom plus rollback must recover at least some of them."""
        recovered = 0
        for seed in range(40):
            bundle, pipeline, controller = self._inject_and_run(
                "vortex", seed, classes=("ctrl",)
            )
            watchdog_fired = any(
                isinstance(d, WatchdogSymptomDetector) and d.triggered
                for d in controller.detectors
            )
            if watchdog_fired and pipeline.halted and not bundle.check(pipeline.memory):
                recovered += 1
        assert recovered >= 1, "watchdog rollback never recovered a wedge"


class TestGenuineExceptions:
    def test_genuine_exception_is_delivered_after_one_rollback(self):
        from repro.isa import assemble

        program = assemble(
            ".text\nstart: li r1, 200\nloop: subq r1, 1, r1\n bne r1, loop\n"
            " li r2, 0x7000000\n ldq r3, 0(r2)\n halt\n",
            "segv",
        )
        pipeline = load_pipeline(program)
        controller = ReStoreController(pipeline, interval=50)
        pipeline.run(100_000)
        assert pipeline.stopped
        assert pipeline.exception_name() == "access_violation"
        assert controller.stats.genuine_exceptions == 1
        assert controller.stats.rollbacks >= 1


class TestDynamicTuning:
    def test_breaker_trips_on_fp_bursts(self):
        tuning = TuningConfig(enabled=True, window=10_000, threshold=2,
                              cooldown=4_000)
        _, _, controller = run_with_controller(
            "bzip2", interval=50, tuning=tuning
        )
        # bzip2 generates many HC-mispredict FPs; the breaker must trip and
        # suppress at least one later symptom.
        assert controller.stats.tuning_activations >= 1
        assert controller.stats.suppressed_symptoms >= 1

    def test_breaker_off_by_default(self):
        _, _, controller = run_with_controller("bzip2", interval=50)
        assert controller.stats.tuning_activations == 0


class TestDivergenceHandling:
    """Divergence accounting and the arbitration third execution."""

    def _run_with_tampered_log(self, arbitration, workload="bzip2",
                               interval=50):
        """Corrupt one recorded branch outcome during the first
        re-execution so the redundant run provably diverges from the log
        (machine state itself stays healthy)."""
        bundle = build_workload(workload)
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(
            pipeline, interval=interval, arbitration=arbitration
        )
        tampered = {"done": False}

        def tamper(record):
            if controller.mode != "reexec" or tampered["done"]:
                return
            position = pipeline.retired_count
            for logged in sorted(controller.branch_log._entries):
                if position < logged <= controller._reexec_until:
                    pc, taken = controller.branch_log._entries[logged]
                    controller.branch_log._entries[logged] = (pc, not taken)
                    tampered["done"] = True
                    return

        controller.user_retire_hook = tamper
        pipeline.run(2_000_000)
        assert tampered["done"], "no re-execution window with logged branches"
        return bundle, pipeline, controller

    def test_divergence_is_not_double_counted_as_false_positive(self):
        _, pipeline, controller = self._run_with_tampered_log(arbitration=False)
        stats = controller.stats
        assert stats.divergences == 1
        # Every other rollback is a genuine fault-free false positive; the
        # divergent one must be excluded from the FP count.
        assert stats.false_positives == stats.rollbacks - 1
        assert pipeline.halted

    def test_arbitration_performs_third_execution_rollback(self):
        bundle, pipeline, controller = self._run_with_tampered_log(
            arbitration=True
        )
        stats = controller.stats
        assert stats.divergences >= 1
        assert stats.arbitrations >= 1
        arbitration_rollbacks = [
            key for key in controller._rollback_history
            if key[0] == "arbitration"
        ]
        assert arbitration_rollbacks, (
            "a divergence under arbitration must roll back a third time"
        )
        # The third execution replays the diverging branch from the older
        # checkpoint and the run still completes correctly.
        assert stats.rollbacks >= 2
        assert pipeline.halted and bundle.check(pipeline.memory) == []

    def test_arbitration_off_trusts_redundant_execution(self):
        bundle, pipeline, controller = self._run_with_tampered_log(
            arbitration=False
        )
        assert controller.stats.arbitrations == 0
        assert not any(
            key[0] == "arbitration"
            for key in controller._rollback_history
        )
        assert pipeline.halted and bundle.check(pipeline.memory) == []


class TestStateCarryover:
    """Rollback must reset position-keyed state (detectors, FP window)."""

    def test_detectors_are_notified_of_rollback_position(self):
        calls = []

        class Spy(HighConfidenceMispredictDetector):
            def on_rollback(self, position):
                calls.append(position)

        bundle = build_workload("bzip2")
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(
            pipeline, interval=50, detectors=[Spy()]
        )
        pipeline.run(2_000_000)
        assert controller.stats.rollbacks > 0
        assert len(calls) == controller.stats.rollbacks
        # Each notification carries the restored (rewound) position.
        for position in calls:
            assert position >= 0

    def test_fp_positions_memory_stays_bounded(self):
        """The FP window must not grow with campaign length (it used to
        accumulate every false positive ever seen)."""
        bundle = build_workload("gcc")
        pipeline = load_pipeline(bundle.program)
        tuning = TuningConfig(enabled=False, window=2_000)
        controller = ReStoreController(pipeline, interval=100, tuning=tuning)
        # Synthesize a long campaign's worth of false positives through the
        # real bookkeeping path.
        for index in range(5_000):
            pipeline.retired_count = index * 150
            controller._trigger = ("hc_mispredict", pipeline.retired_count, 0)
            controller.mode = "reexec"
            controller._finish_reexecution()
        assert controller.stats.false_positives == 5_000
        # Only positions inside the tuning window may be retained.
        assert len(controller.stats.fp_positions) <= tuning.window // 150 + 2

    def test_breaker_decision_unchanged_by_pruning(self):
        tuning = TuningConfig(enabled=True, window=10_000, threshold=2,
                              cooldown=4_000)
        _, _, controller = run_with_controller(
            "bzip2", interval=50, tuning=tuning
        )
        assert controller.stats.tuning_activations >= 1
        assert len(controller.stats.fp_positions) <= controller.stats.false_positives

    def test_controller_uses_public_checkpoint_property(self):
        bundle = build_workload("gcc")
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(pipeline, interval=100)
        pipeline.run(5_000)
        manager = controller.checkpoints
        assert manager.since_last_checkpoint == manager._since_last
        assert 0 <= manager.since_last_checkpoint < manager.interval


class TestDetectorConfigurations:
    def test_exceptions_only_configuration(self):
        bundle, pipeline, controller = run_with_controller(
            "bzip2",
            detectors=[ExceptionSymptomDetector(), WatchdogSymptomDetector()],
        )
        assert pipeline.halted and bundle.check(pipeline.memory) == []
        assert controller.stats.false_positives == 0

    def test_hc_only_configuration(self):
        bundle, pipeline, controller = run_with_controller(
            "bzip2", detectors=[HighConfidenceMispredictDetector()]
        )
        assert pipeline.halted and bundle.check(pipeline.memory) == []
