"""The microarchitectural fault-injection campaign (Figures 4-6, §5.1.2).

Methodology, following Section 4:

1. Run each workload's pipeline once fault-free, collecting the golden
   retired stream, full-state snapshots at the pre-selected trial-end
   cycles, and the final architectural state.
2. Pre-select injection cycles ("the fault injections were performed on a
   set of about 250-300 points for each experiment"), walking one prefix
   pipeline forward and forking it at each point.
3. Each trial flips one uniformly-chosen state bit in the fork (caches and
   predictor tables excluded, as in the paper) and monitors the machine for
   a window of cycles (the paper used 10,000; default scaled down), with
   the retired stream compared against golden on the fly.
4. Outcomes (Table 2): watchdog saturation -> deadlock; a retired ISA
   exception absent from golden -> exception; retired-PC divergence -> cfv
   (with the JRS-gated detection latency recorded separately for Figure 5);
   retired value/store divergence or corrupt final state -> sdc; a flip
   still sitting in architecturally-relevant storage -> latent; residual
   differences in failure-unlikely state -> other; full convergence ->
   masked.

One campaign serves all three figures: Figure 4 classifies with perfect
control-flow-violation identification, Figure 5 requires JRS-flagged
detection, and Figure 6 reinterprets flips that landed on parity/ECC
protected state classes via a :class:`~repro.restore.hardened.ProtectionMap`
(ECC-corrected flips become harmless latents — the paper's bigger *other*
category — and parity-recovered flips are masked). The §5.1.2 latch-only
study filters the same trials by state class.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Collection
from dataclasses import dataclass, field

from repro.arch.memory import SparseMemory
from repro.cache import GoldenArtifactCache, UarchGoldenArtifact
from repro.campaign.guard import TrialGuard
from repro.campaign.outcomes import (
    CampaignWorkloadWarning,
    TrialOutcome,
    WorkloadRunOutcome,
    trial_key,
    validate_shard,
)
from repro.faults.classify import (
    UARCH_CATEGORIES,
    UarchTrialResult,
    classify_uarch_trial,
)
from repro.faults.models import StateBitFlip
from repro.restore.hardened import ProtectionMap
from repro.restore.symptoms import MEMHIER_DETECTOR_NAMES, build_memhier_detectors
from repro.uarch.latches import LATCH_CLASSES
from repro.uarch.pipeline import Pipeline, load_pipeline
from repro.util.rng import DeterministicRng
from repro.util.stats import BinomialEstimate, CategoryCounter
from repro.util.tables import format_table
from repro.workloads import WORKLOAD_NAMES, build_workload

# Figures 4-6 x-axis: checkpoint intervals in instructions.
FIGURE46_INTERVALS: tuple[int, ...] = (25, 50, 100, 200, 500, 1000, 2000)


@dataclass(frozen=True)
class UarchCampaignConfig:
    """Campaign knobs; scale trial counts up toward the paper's 12-13k."""

    trials_per_workload: int = 84
    injection_points: int = 28
    window_cycles: int = 2500  # paper: 10,000
    warmup_cycles: int = 250
    seed: int = 2005
    workload_scale: int = 1
    fault_model: StateBitFlip = field(default_factory=StateBitFlip)
    workloads: tuple[str, ...] = WORKLOAD_NAMES
    max_golden_cycles: int = 200_000
    record_cache_symptoms: bool = False
    # Memory-hierarchy ablation knobs. Both are journal-omitted at their
    # defaults (``omit_default``) so campaigns that never enable them keep
    # manifests, digests, and golden-cache keys byte-identical to journals
    # written before the fields existed.
    memhier_targets: bool = field(default=False, metadata={"omit_default": True})
    detectors: tuple[str, ...] = field(default=(), metadata={"omit_default": True})

    def __post_init__(self) -> None:
        if not isinstance(self.detectors, tuple):
            # Service specs arrive as JSON lists; normalise before the
            # config is hashed so serial and service digests agree.
            object.__setattr__(self, "detectors", tuple(self.detectors))
        if self.trials_per_workload < 1:
            raise ValueError(
                f"trials_per_workload must be >= 1, got {self.trials_per_workload}"
            )
        if self.injection_points < 1:
            raise ValueError(
                f"injection_points must be >= 1, got {self.injection_points}"
            )
        if self.injection_points > self.trials_per_workload:
            raise ValueError(
                f"injection_points ({self.injection_points}) cannot exceed "
                f"trials_per_workload ({self.trials_per_workload}): every "
                f"injection point needs at least one trial"
            )
        if self.window_cycles < 1:
            raise ValueError(
                f"window_cycles must be >= 1, got {self.window_cycles}"
            )
        if self.warmup_cycles < 0:
            raise ValueError(
                f"warmup_cycles must be >= 0, got {self.warmup_cycles}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        if self.workload_scale < 1:
            raise ValueError(
                f"workload_scale must be >= 1, got {self.workload_scale}"
            )
        if self.max_golden_cycles < 1:
            raise ValueError(
                f"max_golden_cycles must be >= 1, got {self.max_golden_cycles}"
            )
        if not self.workloads:
            raise ValueError("workloads must not be empty")
        unknown = [name for name in self.workloads if name not in WORKLOAD_NAMES]
        if unknown:
            raise ValueError(f"unknown workloads {unknown}; know {WORKLOAD_NAMES}")
        unknown_detectors = [
            name for name in self.detectors if name not in MEMHIER_DETECTOR_NAMES
        ]
        if unknown_detectors:
            raise ValueError(
                f"unknown detectors {unknown_detectors}; "
                f"know {MEMHIER_DETECTOR_NAMES}"
            )

    @property
    def record_memhier_symptoms(self) -> bool:
        """Whether pipelines must emit stall-streak/spurious-memop events.

        Miss-rate spikes ride on the ordinary cache/TLB-miss handler calls;
        the other two detectors need the opt-in event streams.
        """
        return bool({"stall_outlier", "spurious_memop"} & set(self.detectors))


@dataclass
class _GoldenRun:
    """Golden-run artifacts the trial comparators need.

    Carries only final state and logs (not the pipeline object itself), so
    the whole bundle round-trips through the golden-artifact cache.
    """

    retired: list
    end_cycle: int
    snapshots: dict[int, list[int]]
    retired_at: dict[int, int]
    final_arch_regs: list[int]
    final_memory: "SparseMemory"


@dataclass
class UarchCampaignResult:
    """All trials plus the classification views used by Figures 4-6."""

    config: UarchCampaignConfig
    trials: list[UarchTrialResult]
    total_bits: int = 0
    skipped_workloads: tuple[tuple[str, str], ...] = ()

    def counter(
        self,
        interval: int | None,
        workload: str | None = None,
        require_confident_cfv: bool = False,
        protection: ProtectionMap | None = None,
        classes: tuple[str, ...] | None = None,
    ) -> CategoryCounter:
        counter = CategoryCounter(UARCH_CATEGORIES)
        for trial in self._select(workload, classes):
            counter.add(
                self._classify(trial, interval, require_confident_cfv, protection)
            )
        return counter

    def _select(
        self, workload: str | None, classes: tuple[str, ...] | None
    ) -> list[UarchTrialResult]:
        selected = self.trials
        if workload is not None:
            selected = [t for t in selected if t.workload == workload]
        if classes is not None:
            allowed = set(classes)
            selected = [t for t in selected if t.state_class in allowed]
        return selected

    @staticmethod
    def _classify(
        trial: UarchTrialResult,
        interval: int | None,
        require_confident_cfv: bool,
        protection: ProtectionMap | None,
    ) -> str:
        if protection is not None:
            kind = protection.protection_of_parts(trial.target, trial.state_class)
            if kind == "ecc":
                # Corrected in place; the flip is a harmless latent
                # ("covered by ECC and will not cause data corruption").
                return "other" if trial.failing or trial.uarch_latent else "masked"
            if kind == "parity":
                # Detected on read and recovered by flush/refetch.
                return "masked"
        return classify_uarch_trial(trial, interval, require_confident_cfv)

    # ------------------------------------------------------------- headline

    def masked_estimate(
        self, protection: ProtectionMap | None = None
    ) -> BinomialEstimate:
        good = sum(
            1
            for trial in self.trials
            if self._classify(trial, None, False, protection) in ("masked", "other")
        )
        return BinomialEstimate(good, len(self.trials))

    def baseline_failure_estimate(self) -> BinomialEstimate:
        """Failures with no detection at all (the paper's ~7%)."""
        failing = sum(1 for trial in self.trials if trial.failing)
        return BinomialEstimate(failing, len(self.trials))

    def failure_estimate(
        self,
        interval: int | None,
        require_confident_cfv: bool = True,
        protection: ProtectionMap | None = None,
    ) -> BinomialEstimate:
        """Residual failures when covered symptoms are recovered: the
        trials classified sdc or latent at this interval."""
        residual = 0
        for trial in self.trials:
            category = self._classify(
                trial, interval, require_confident_cfv, protection
            )
            if category in ("sdc", "latent"):
                residual += 1
        return BinomialEstimate(residual, len(self.trials))

    def coverage_of_failures(
        self,
        interval: int | None,
        require_confident_cfv: bool = False,
        classes: tuple[str, ...] | None = None,
    ) -> BinomialEstimate:
        """Fraction of failing trials covered by deadlock/exception/cfv
        within the interval (the paper's "half of all failures" at 100)."""
        failing = [t for t in self._select(None, classes) if t.failing]
        covered = sum(
            1
            for trial in failing
            if classify_uarch_trial(trial, interval, require_confident_cfv)
            in ("deadlock", "exception", "cfv")
        )
        return BinomialEstimate(covered, max(1, len(failing)))

    def latch_only_view(self) -> "UarchCampaignResult":
        """The Section 5.1.2 study: trials whose flip hit pipeline latches."""
        trials = [t for t in self.trials if t.state_class in LATCH_CLASSES]
        return UarchCampaignResult(
            self.config, trials, self.total_bits, self.skipped_workloads
        )

    # --------------------------------------------------------------- tables

    def table(
        self,
        intervals: tuple[int, ...] = FIGURE46_INTERVALS,
        require_confident_cfv: bool = False,
        protection: ProtectionMap | None = None,
        title: str = "outcome shares vs checkpoint interval",
    ) -> str:
        rows = []
        for interval in intervals:
            counter = self.counter(
                interval,
                require_confident_cfv=require_confident_cfv,
                protection=protection,
            )
            rows.append(
                [str(interval)]
                + [f"{counter.proportion(name):.1%}" for name in UARCH_CATEGORIES]
            )
        text = format_table(["interval"] + list(UARCH_CATEGORIES), rows, title=title)
        for name, reason in self.skipped_workloads:
            text += f"\nnote: workload {name} skipped ({reason})"
        return text


def run_uarch_campaign(config: UarchCampaignConfig) -> UarchCampaignResult:
    """Run the campaign over every configured workload.

    A thin serial wrapper over :func:`repro.campaign.runner.run_campaign`;
    use that entry point directly for journaling, resume, containment
    budgets, and parallel execution.
    """
    from repro.campaign.runner import run_campaign

    return run_campaign("uarch", config).result


def run_workload_trials(
    config: UarchCampaignConfig,
    workload: str,
    completed: Collection[str] = frozenset(),
    guard: TrialGuard | None = None,
    on_outcome: Callable[[TrialOutcome], None] | None = None,
    shard: tuple[int, int] | None = None,
    cache: GoldenArtifactCache | None = None,
) -> WorkloadRunOutcome:
    """Execute one workload's trials under containment.

    Mirrors :func:`repro.faults.arch_campaign.run_workload_trials`:
    per-trial randomness is derived from ``(seed, workload, point,
    index)`` so resumed, sharded, and single-shot runs all produce the
    same records; journaled keys in ``completed`` are skipped; a failing
    golden run degrades to a skipped workload with a structured warning;
    ``shard=(shard_index, shard_count)`` restricts execution to the
    stride slice ``index % shard_count == shard_index`` of the per-point
    trial index space (the union of all shards is exactly the serial
    campaign). With a :class:`~repro.cache.GoldenArtifactCache`, both
    golden pipeline runs (length probe + snapshot capture) are replaced
    by one cache load; injection cycles are recomputed deterministically
    from the cached end cycle, so cached and uncached runs are
    bit-identical.
    """
    guard = guard or TrialGuard()
    validate_shard(shard)
    wrng = DeterministicRng(config.seed).child("uarch-campaign").child(workload)
    golden_cache: str | None = None
    try:
        bundle = build_workload(workload, config.workload_scale, config.seed)
        artifact = (
            cache.load("uarch", bundle.program, config)
            if cache is not None
            else None
        )
        if artifact is not None:
            golden = _GoldenRun(
                retired=artifact.retired,
                end_cycle=artifact.end_cycle,
                snapshots=artifact.snapshots,
                retired_at=artifact.retired_at,
                final_arch_regs=artifact.final_arch_regs,
                final_memory=artifact.final_memory,
            )
            end_cycle = golden.end_cycle
            golden_cache = "hit"
        else:
            # Choose injection cycles before running golden: spread
            # uniformly over the run. We need golden's length first, so
            # run it now.
            golden = _run_golden(bundle, config, inject_cycles=None)
            end_cycle = golden.end_cycle
        first = min(config.warmup_cycles, max(1, end_cycle // 10))
        last = max(first + 1, end_cycle - 100)
        point_count = min(config.injection_points, last - first)
        points = sorted(wrng.child("points").sample(range(first, last), point_count))
        if artifact is None:
            # Re-run golden to capture snapshots at each trial-end cycle.
            snapshot_cycles = [
                point + config.window_cycles
                for point in points
                if point + config.window_cycles < end_cycle
            ]
            golden = _run_golden(bundle, config, inject_cycles=snapshot_cycles)
            if cache is not None:
                cache.store(
                    "uarch",
                    bundle.program,
                    config,
                    UarchGoldenArtifact(
                        end_cycle=golden.end_cycle,
                        retired=golden.retired,
                        snapshots=golden.snapshots,
                        retired_at=golden.retired_at,
                        final_arch_regs=golden.final_arch_regs,
                        final_memory=golden.final_memory,
                    ),
                )
                golden_cache = "miss"
    except Exception as exc:
        reason = f"{type(exc).__name__}: {exc}"
        warnings.warn(
            f"skipping workload {workload}: {reason}",
            CampaignWorkloadWarning,
            stacklevel=2,
        )
        return WorkloadRunOutcome(workload, skip_reason=reason)

    # Distribute trials so exactly trials_per_workload run: the first
    # ``extra`` points (in sorted order) take one more than the rest.
    base_trials, extra = divmod(config.trials_per_workload, point_count)
    prefix = load_pipeline(
        bundle.program,
        record_cache_symptoms=config.record_cache_symptoms,
        memhier_targets=config.memhier_targets,
        record_memhier_symptoms=config.record_memhier_symptoms,
    )
    outcomes: list[TrialOutcome] = []
    for position, point in enumerate(points):
        per_point = base_trials + (1 if position < extra else 0)
        prefix.run(point - prefix.cycle_count)
        if not prefix.running:
            break
        for index in range(per_point):
            if shard is not None and index % shard[1] != shard[0]:
                continue
            key = trial_key(workload, point, index)
            if key in completed:
                continue
            trial_rng = wrng.child(f"trial:{point}:{index}")
            field_index, flip_field, bit = _pick_bit(
                prefix, config.fault_model, trial_rng
            )
            outcome = guard.run(
                key, workload, point, index,
                lambda: _run_trial(
                    workload, prefix, golden, config, point, field_index, bit
                ),
                descriptor={
                    "level": "uarch",
                    "seed": config.seed,
                    "trial_seed": trial_rng.seed,
                    "field": flip_field.name,
                    "bit": bit,
                },
            )
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
    return WorkloadRunOutcome(
        workload,
        outcomes,
        total_bits=prefix.registry.total_bits(),
        golden_cache=golden_cache,
    )


def _pick_bit(prefix: Pipeline, fault_model: StateBitFlip, rng: DeterministicRng):
    classes = fault_model.target_classes
    registry = prefix.registry
    flip_field, bit = registry.pick_bit(rng, classes=classes)
    field_index = registry.fields.index(flip_field)
    return field_index, flip_field, bit


def _run_golden(bundle, config: UarchCampaignConfig, inject_cycles) -> _GoldenRun:
    pipeline = load_pipeline(
        bundle.program,
        collect_retired=True,
        record_cache_symptoms=config.record_cache_symptoms,
        memhier_targets=config.memhier_targets,
        record_memhier_symptoms=config.record_memhier_symptoms,
    )
    snapshots: dict[int, list[int]] = {}
    retired_at: dict[int, int] = {}
    if inject_cycles:
        for target in sorted(set(inject_cycles)):
            pipeline.run(target - pipeline.cycle_count)
            if not pipeline.running:
                break
            snapshots[target] = pipeline.registry.snapshot()
            retired_at[target] = pipeline.retired_count
    pipeline.run(config.max_golden_cycles - pipeline.cycle_count)
    if not pipeline.halted:
        raise RuntimeError(
            f"golden pipeline run of {bundle.name} did not halt "
            f"(exception={pipeline.exception_name()})"
        )
    return _GoldenRun(
        retired=pipeline.retired_log,
        end_cycle=pipeline.cycle_count,
        snapshots=snapshots,
        retired_at=retired_at,
        final_arch_regs=pipeline.arch_reg_values(),
        final_memory=pipeline.memory,
    )


def _entry_index(name: str) -> int:
    """Slot number from a registered field name like ``prf.value[37]``."""
    return int(name[name.index("[") + 1:-1])


def _latent_is_arch_relevant(faulty: Pipeline, diff_indices: list[int]) -> bool:
    """Is any residual state difference architecturally relevant?

    Relevant: the retirement RAT, a physical register currently mapped by
    it, or a *live* store-buffer entry (including a flipped valid bit,
    which can conjure a phantom committed store). Residue in stale entries
    of any structure is dead state — the paper's failure-unlikely *other*.
    """
    mapped = set(faulty.arch_rat.map)
    for index in diff_indices:
        flip_field = faulty.registry.fields[index]
        if flip_field.structure == "arch_rat":
            return True
        if flip_field.structure == "storebuf":
            if flip_field.name.startswith("storebuf.valid"):
                return True
            if flip_field.name.startswith(
                ("storebuf.addr", "storebuf.data", "storebuf.size")
            ) and faulty.storebuf.valid[_entry_index(flip_field.name)]:
                return True
            continue
        if flip_field.structure == "prf" and flip_field.name.startswith("prf.value"):
            if _entry_index(flip_field.name) in mapped:
                return True
    return False


def _run_trial(
    workload: str,
    prefix: Pipeline,
    golden: _GoldenRun,
    config: UarchCampaignConfig,
    point: int,
    field_index: int,
    bit: int,
) -> UarchTrialResult:
    faulty = prefix.fork()
    faulty.retired_log = []
    flip_field = faulty.registry.fields[field_index]
    flip_field.flip(bit)

    base = faulty.retired_count
    fired: dict[str, int] = {}
    if config.detectors:
        detectors = build_memhier_detectors(config.detectors)

        def _observe(kind: str, payload) -> bool:
            # Measure first-fire positions without ever rolling back: the
            # campaign wants detection latency, not recovery, so the trial
            # keeps running and the failure comparators stay untouched.
            for det in detectors:
                if det.observe(kind, payload) and det.name not in fired:
                    fired[det.name] = faulty.retired_count
            return False

        faulty.symptom_handler = _observe
    faulty.run(config.window_cycles)

    golden_log = golden.retired
    deadlock_latency = None
    exception_latency = None
    cfv_latency = None
    arch_corrupt = False
    previous_pc_mismatch = False
    for offset, record in enumerate(faulty.retired_log):
        index = base + offset
        latency = offset + 1
        if record.exc:
            exception_latency = latency
            break
        if index >= len(golden_log):
            if cfv_latency is None:
                cfv_latency = latency
            break
        expected = golden_log[index]
        store_matches = record.store_addr == expected.store_addr and (
            record.store_addr < 0 or record.store_data == expected.store_data
        )
        value_matches = record.dest == expected.dest and (
            record.dest < 0 or record.value == expected.value
        )
        content_matches = store_matches and value_matches
        if record.pc != expected.pc:
            # A lone PC-label mismatch with identical architectural content
            # is a corrupted in-flight PC tag, not a wrong instruction; two
            # in a row (or wrong content) means execution really diverged.
            if not content_matches or previous_pc_mismatch:
                if cfv_latency is None:
                    cfv_latency = max(1, latency - 1 if previous_pc_mismatch else latency)
            previous_pc_mismatch = True
        else:
            previous_pc_mismatch = False
            # A diverging *store* is persistent memory corruption. A
            # diverging register value is not persistent by itself — if it
            # is never consumed and later overwritten the fault is masked
            # (the end-of-trial state comparison decides), exactly as the
            # paper's masked category allows corrupted-then-overwritten
            # architectural state.
            if not store_matches:
                arch_corrupt = True
    if faulty.deadlock:
        deadlock_latency = len(faulty.retired_log) + 1

    cfv_detected_latency = None
    for event in faulty.symptoms:
        if event.kind == "hc_mispredict":
            cfv_detected_latency = max(1, event.retired - base + 1)
            break

    uarch_latent = False
    latent_arch_relevant = False
    clean_stream = (
        deadlock_latency is None
        and exception_latency is None
        and cfv_latency is None
        and not arch_corrupt
    )
    if clean_stream:
        if faulty.halted:
            # The program finished: compare final architectural state.
            if len(faulty.retired_log) + base != len(golden_log):
                cfv_latency = len(faulty.retired_log) + 1
            elif not faulty.memory.equals(golden.final_memory):
                arch_corrupt = True
            elif faulty.arch_reg_values() != golden.final_arch_regs:
                arch_corrupt = True
        else:
            end_cycle = point + config.window_cycles
            snapshot = golden.snapshots.get(end_cycle)
            if (
                snapshot is not None
                and faulty.cycle_count == end_cycle
                and faulty.retired_count == golden.retired_at.get(end_cycle)
            ):
                diff = faulty.registry.diff_indices(
                    snapshot, faulty.registry.snapshot()
                )
                if diff:
                    uarch_latent = True
                    latent_arch_relevant = _latent_is_arch_relevant(faulty, diff)
            # Matching stream with timing skew only: architecturally benign.

    def _detector_latency(name: str) -> int | None:
        if name not in fired:
            return None
        return max(1, fired[name] - base + 1)

    return UarchTrialResult(
        workload=workload,
        inject_cycle=point,
        target=flip_field.structure,
        state_class=flip_field.state_class,
        bit=bit,
        inject_retired=base,
        deadlock_latency=deadlock_latency,
        exception_latency=exception_latency,
        cfv_latency=cfv_latency,
        cfv_detected_latency=cfv_detected_latency,
        arch_corrupt=arch_corrupt,
        uarch_latent=uarch_latent,
        latent_arch_relevant=latent_arch_relevant,
        miss_spike_latency=_detector_latency("miss_spike"),
        stall_outlier_latency=_detector_latency("stall_outlier"),
        spurious_memop_latency=_detector_latency("spurious_memop"),
    )
