"""Retry policies and circuit breakers for unreliable call sites.

The campaign service's whole premise (and the paper's) is that faults are
survivable if they are *anticipated*: a transient network error on a
``complete()`` report must never cost a finished trial. This module holds
the two reusable pieces of that discipline:

- :class:`RetryPolicy` — a frozen description of an exponential-backoff
  schedule with **deterministic** jitter. Jitter is derived from a
  ``(key, attempt)`` hash rather than a live RNG so a replayed chaos test
  produces the identical delay sequence — the same reproducibility rule
  every fault-injection seed in this repository follows.
- :class:`CircuitBreaker` — a consecutive-failure trip switch with a
  cooldown and half-open probe, so a worker fleet hammering a dead
  endpoint backs off to one probe per cooldown instead of a retry storm.

Both are clock/sleep-agnostic: callers inject ``time.monotonic`` and
``time.sleep`` equivalents (tests inject fakes), and neither imports
anything above :mod:`repro.util`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterator

#: Breaker states (exposed for tests and metrics, not for matching logic).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


def _jitter_fraction(key: str, attempt: int) -> float:
    """A stable uniform draw in [0, 1) from ``(key, attempt)``.

    Hash-derived (like :func:`repro.util.rng.derive_seed`) so the same
    call site retrying the same attempt always waits the same time —
    replayable backoff for deterministic chaos tests.
    """
    digest = hashlib.sha256(f"retry:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:7], "little") / float(1 << 56)


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential-backoff schedule with a hard attempt budget.

    ``attempts`` counts *total* tries including the first, so
    ``attempts=1`` means "never retry". The delay before retry ``n``
    (n = 1 for the first retry) is::

        min(max_delay, base_delay * multiplier**(n-1)) * (1 - jitter * u)

    where ``u`` is the deterministic jitter fraction for ``(key, n)`` —
    jitter only ever *shortens* a delay, so ``max_delay`` stays a true
    upper bound on any single wait.
    """

    attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be non-negative, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry: int, key: str = "") -> float:
        """The wait before retry number ``retry`` (1-based)."""
        if retry < 1:
            raise ValueError(f"retry must be >= 1, got {retry}")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry - 1)
        )
        return raw * (1.0 - self.jitter * _jitter_fraction(key, retry))

    def delays(self, key: str = "") -> Iterator[float]:
        """The full backoff schedule: one delay per allowed retry."""
        for retry in range(1, self.attempts):
            yield self.delay(retry, key)

    def total_budget(self, key: str = "") -> float:
        """Worst-case seconds spent sleeping if every attempt fails."""
        return sum(self.delays(key))


class CircuitBreaker:
    """A consecutive-failure trip switch with cooldown and half-open probe.

    Closed: calls flow, consecutive failures are counted. After
    ``failure_threshold`` consecutive failures the breaker *trips* open:
    :meth:`allow` answers False (callers fail fast) until ``cooldown``
    seconds pass, then exactly one probe call is allowed (half-open). A
    probe success closes the breaker; a probe failure re-opens it for
    another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 5.0,
        *,
        clock: Callable[[], float] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        if clock is None:
            import time

            clock = time.monotonic
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self.failures = 0
        self.trips = 0
        self.fast_failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return BREAKER_CLOSED
        if self._probing or self.clock() - self._opened_at >= self.cooldown:
            return BREAKER_HALF_OPEN
        return BREAKER_OPEN

    def allow(self) -> bool:
        """May a call proceed right now? (Counts fast-fails when not.)"""
        if self._opened_at is None:
            return True
        if self._probing:
            # One probe is already in flight; shed everything else.
            self.fast_failures += 1
            return False
        if self.clock() - self._opened_at >= self.cooldown:
            self._probing = True
            return True
        self.fast_failures += 1
        return False

    def record_success(self) -> None:
        self.failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        if self._probing or (
            self._opened_at is None and self.failures >= self.failure_threshold
        ):
            # A failed probe re-opens; a threshold crossing trips.
            self.trips += 1
            self._opened_at = self.clock()
            self._probing = False
