"""Job specifications: what a client asks the campaign service to run.

A :class:`JobSpec` is the wire-level description of one campaign job —
the campaign level, a full scientific configuration (reconstructed into
the same frozen dataclasses the serial runner uses, so the config digest
and therefore the journal manifest are identical to a local
``run_campaign`` of the same parameters), the number of shards each
workload is split into, the per-trial wall-clock budget, and whether the
job should produce a merged telemetry trace.

The service constructs configs from JSON-able keyword options only;
custom fault-model objects cannot travel over the wire, so every job
uses the level's default fault model (exactly what the CLI produces).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.campaign.runner import CAMPAIGN_LEVELS
from repro.util.journal import config_to_dict, stable_digest


class ServiceError(Exception):
    """A campaign-service request is invalid or cannot be honored."""


def _config_class(level: str):
    # Lazily imported: repro.faults pulls in the whole simulator stack.
    from repro.faults import ArchCampaignConfig, UarchCampaignConfig

    if level == "arch":
        return ArchCampaignConfig
    if level == "uarch":
        return UarchCampaignConfig
    raise ServiceError(
        f"unknown campaign level {level!r}; know {CAMPAIGN_LEVELS}"
    )


def build_config(level: str, options: dict) -> Any:
    """Construct a campaign config from JSON-able keyword options.

    ``fault_model`` is not constructible over the wire and is silently
    dropped (the config's default factory supplies the level's standard
    model); any other unknown key is an error so typos fail loudly.
    """
    cls = _config_class(level)
    allowed = {field.name for field in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in options.items():
        if key == "fault_model":
            continue
        if key not in allowed:
            raise ServiceError(
                f"unknown {level} config option {key!r}; "
                f"know {sorted(allowed - {'fault_model'})}"
            )
        if key == "workloads":
            value = tuple(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"invalid {level} campaign configuration: {exc}") from None


def _build_planner(data: dict | None):
    """Construct planner settings from JSON-able options (None passes)."""
    if data is None:
        return None
    from repro.planner import PlannerConfig

    try:
        return PlannerConfig.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"invalid planner configuration: {exc}") from None


@dataclass(frozen=True)
class JobSpec:
    """One campaign job as submitted to the service."""

    level: str
    config: Any
    shards_per_workload: int = 1
    trial_timeout: float | None = None
    trace: bool = False
    #: Adaptive planning settings (a repro.planner.PlannerConfig), or
    #: None for the uniform fixed-budget campaign. Arch level only.
    planner: Any = None

    def __post_init__(self) -> None:
        if self.level not in CAMPAIGN_LEVELS:
            raise ServiceError(
                f"unknown campaign level {self.level!r}; know {CAMPAIGN_LEVELS}"
            )
        if self.planner is not None and self.level != "arch":
            raise ServiceError(
                "adaptive planning is only supported for arch campaigns "
                f"(got level={self.level!r})"
            )
        if not isinstance(self.shards_per_workload, int) or isinstance(
            self.shards_per_workload, bool
        ) or self.shards_per_workload < 1:
            raise ServiceError(
                f"shards_per_workload must be a positive integer, "
                f"got {self.shards_per_workload!r}"
            )
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ServiceError(
                f"trial_timeout must be positive, got {self.trial_timeout}"
            )

    @property
    def config_digest(self) -> str:
        return stable_digest(config_to_dict(self.config))

    def to_dict(self) -> dict:
        data = {
            "level": self.level,
            "config": config_to_dict(self.config),
            "shards_per_workload": self.shards_per_workload,
            "trial_timeout": self.trial_timeout,
            "trace": self.trace,
        }
        # Only adaptive specs carry the key, so uniform specs (and the
        # stored rows and digests derived from them) are unchanged.
        if self.planner is not None:
            data["planner"] = self.planner.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(
            level=data["level"],
            config=build_config(data["level"], data.get("config", {})),
            shards_per_workload=int(data.get("shards_per_workload", 1)),
            trial_timeout=data.get("trial_timeout"),
            trace=bool(data.get("trace", False)),
            planner=_build_planner(data.get("planner")),
        )

    @classmethod
    def from_request(cls, payload: dict) -> "JobSpec":
        """Build a spec from a submit-request body, with friendly errors."""
        if not isinstance(payload, dict):
            raise ServiceError("job submission body must be a JSON object")
        if "level" not in payload:
            raise ServiceError("job submission needs a 'level' field")
        config = payload.get("config", {})
        if not isinstance(config, dict):
            raise ServiceError("'config' must be a JSON object of config options")
        shards = payload.get("shards_per_workload", payload.get("shards", 1))
        timeout = payload.get("trial_timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ServiceError(
                    f"trial_timeout must be a number, got {timeout!r}"
                ) from None
        if not isinstance(shards, int) or isinstance(shards, bool):
            raise ServiceError(
                f"shards_per_workload must be an integer, got {shards!r}"
            )
        planner = payload.get("planner")
        if planner is not None and not isinstance(planner, dict):
            raise ServiceError(
                "'planner' must be a JSON object of planner options"
            )
        return cls(
            level=payload["level"],
            config=build_config(payload["level"], config),
            shards_per_workload=shards,
            trial_timeout=timeout,
            trace=bool(payload.get("trace", False)),
            planner=_build_planner(planner),
        )
