"""Sparse paged memory."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.exceptions import AccessViolation
from repro.arch.memory import PAGE_SIZE, PageProtection, SparseMemory


@pytest.fixture
def memory():
    mem = SparseMemory()
    mem.map_region(0x10000, PAGE_SIZE)
    return mem


class TestMapping:
    def test_unmapped_read_raises(self, memory):
        with pytest.raises(AccessViolation):
            memory.read(0x9999_0000, 8)

    def test_unmapped_write_raises(self, memory):
        with pytest.raises(AccessViolation):
            memory.write(0x9999_0000, 8, 1)

    def test_mapped_pages_zeroed(self, memory):
        assert memory.read(0x10000, 8) == 0

    def test_is_mapped(self, memory):
        assert memory.is_mapped(0x10000)
        assert not memory.is_mapped(0x50000)

    def test_map_region_spans_pages(self):
        mem = SparseMemory()
        mem.map_region(PAGE_SIZE - 4, 8)
        assert mem.is_mapped(PAGE_SIZE - 4)
        assert mem.is_mapped(PAGE_SIZE)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SparseMemory().map_region(0, 0)


class TestProtection:
    def test_read_only_rejects_writes(self):
        mem = SparseMemory()
        mem.map_region(0, PAGE_SIZE, PageProtection.READ_ONLY)
        with pytest.raises(AccessViolation):
            mem.write(0, 4, 1)
        assert mem.read(0, 4) == 0

    def test_protection_query(self, memory):
        assert memory.protection_at(0x10000) is PageProtection.READ_WRITE
        assert memory.protection_at(0x999999) is None

    def test_loader_bypasses_protection(self):
        mem = SparseMemory()
        mem.map_region(0, PAGE_SIZE, PageProtection.READ_ONLY)
        mem.load_bytes(0, b"\x01\x02")
        assert mem.read(0, 2) == 0x0201


class TestReadWrite:
    @given(st.integers(0, PAGE_SIZE - 8), st.integers(0, (1 << 64) - 1),
           st.sampled_from([1, 2, 4, 8]))
    def test_roundtrip(self, offset, value, size):
        mem = SparseMemory()
        mem.map_region(0, PAGE_SIZE)
        mem.write(offset, size, value)
        assert mem.read(offset, size) == value & ((1 << (8 * size)) - 1)

    def test_little_endian(self, memory):
        memory.write(0x10000, 4, 0x0A0B0C0D)
        assert memory.read(0x10000, 1) == 0x0D
        assert memory.read(0x10003, 1) == 0x0A

    def test_cross_page_access(self):
        mem = SparseMemory()
        mem.map_region(0, 2 * PAGE_SIZE)
        boundary = PAGE_SIZE - 4
        mem.write(boundary, 8, 0x1122334455667788)
        assert mem.read(boundary, 8) == 0x1122334455667788

    def test_cross_page_into_unmapped_raises(self):
        mem = SparseMemory()
        mem.map_region(0, PAGE_SIZE)
        with pytest.raises(AccessViolation):
            mem.read(PAGE_SIZE - 4, 8)


class TestSnapshots:
    def test_clone_is_independent(self, memory):
        memory.write(0x10000, 8, 5)
        clone = memory.clone()
        memory.write(0x10000, 8, 9)
        assert clone.read(0x10000, 8) == 5

    def test_equals(self, memory):
        clone = memory.clone()
        assert memory.equals(clone)
        clone.write(0x10010, 1, 1)
        assert not memory.equals(clone)

    def test_equals_requires_same_mapping(self, memory):
        other = SparseMemory()
        assert not memory.equals(other)

    def test_diff_addresses(self, memory):
        clone = memory.clone()
        clone.write(0x10020, 1, 0xFF)
        clone.write(0x10040, 1, 0xFF)
        diffs = memory.diff_addresses(clone)
        assert diffs == [0x10020, 0x10040]

    def test_diff_limit(self, memory):
        clone = memory.clone()
        for index in range(40):
            clone.write(0x10000 + index, 1, 1)
        assert len(memory.diff_addresses(clone, limit=16)) == 16


class TestCowSnapshots:
    def test_cow_clone_sees_current_state(self, memory):
        memory.write(0x10000, 8, 5)
        assert memory.clone_cow().read(0x10000, 8) == 5

    def test_parent_write_does_not_leak_into_clone(self, memory):
        memory.write(0x10000, 8, 5)
        clone = memory.clone_cow()
        memory.write(0x10000, 8, 9)
        assert clone.read(0x10000, 8) == 5
        assert memory.read(0x10000, 8) == 9

    def test_clone_write_does_not_leak_into_parent(self, memory):
        memory.write(0x10000, 8, 5)
        clone = memory.clone_cow()
        clone.write(0x10000, 8, 9)
        assert memory.read(0x10000, 8) == 5
        assert clone.read(0x10000, 8) == 9

    def test_cross_page_write_copies_out(self):
        mem = SparseMemory()
        mem.map_region(0, 2 * PAGE_SIZE)
        clone = mem.clone_cow()
        clone.write(PAGE_SIZE - 4, 8, 0x1122334455667788)
        assert mem.read(PAGE_SIZE - 4, 8) == 0
        assert clone.read(PAGE_SIZE - 4, 8) == 0x1122334455667788

    def test_load_bytes_copies_out(self, memory):
        clone = memory.clone_cow()
        clone.load_bytes(0x10000, b"\xaa\xbb")
        assert memory.read(0x10000, 2) == 0
        assert clone.read(0x10000, 2) == 0xBBAA

    def test_cow_of_cow_chains(self, memory):
        memory.write(0x10000, 8, 1)
        first = memory.clone_cow()
        second = first.clone_cow()
        first.write(0x10000, 8, 2)
        assert memory.read(0x10000, 8) == 1
        assert second.read(0x10000, 8) == 1
        assert first.read(0x10000, 8) == 2

    def test_cow_equals_and_plain_clone(self, memory):
        memory.write(0x10008, 4, 7)
        clone = memory.clone_cow()
        assert memory.equals(clone)
        deep = clone.clone()
        clone.write(0x10008, 4, 8)
        assert deep.read(0x10008, 4) == 7
