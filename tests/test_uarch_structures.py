"""Pipeline storage structures."""

from repro.uarch.config import PipelineConfig
from repro.uarch.latches import StateRegistry
from repro.uarch.structures import (
    FetchQueue,
    FreeList,
    LoadQueue,
    ReorderBuffer,
    Scheduler,
    StoreBuffer,
    StoreQueue,
)

CFG = PipelineConfig()


def make(cls):
    return cls(CFG, StateRegistry())


class TestFetchQueue:
    def test_push_pop_fifo(self):
        queue = make(FetchQueue)
        assert queue.push(0x100, 1, False, 0, False, 0, ready_cycle=0)
        assert queue.push(0x104, 2, False, 0, False, 0, ready_cycle=0)
        slot = queue.front_ready(now=5)
        assert queue.pc[slot] == 0x100
        queue.pop()
        assert queue.pc[queue.front_ready(5)] == 0x104

    def test_front_respects_ready_cycle(self):
        queue = make(FetchQueue)
        queue.push(0x100, 1, False, 0, False, 0, ready_cycle=10)
        assert queue.front_ready(now=5) is None
        assert queue.front_ready(now=10) is not None

    def test_fills_to_capacity(self):
        queue = make(FetchQueue)
        for index in range(queue.size):
            assert queue.push(index, 0, False, 0, False, 0, 0)
        assert queue.is_full()
        assert not queue.push(99, 0, False, 0, False, 0, 0)

    def test_clear(self):
        queue = make(FetchQueue)
        queue.push(0x100, 1, False, 0, False, 0, 0)
        queue.clear()
        assert queue.is_empty()


class TestFreeList:
    def test_initial_population(self):
        freelist = make(FreeList)
        assert freelist.count == CFG.physical_registers - 32

    def test_allocate_free_cycle(self):
        freelist = make(FreeList)
        first = freelist.allocate()
        assert first == 32
        freelist.free(first)
        # Drain everything; the freed register comes back around.
        seen = set()
        while freelist.count:
            seen.add(freelist.allocate())
        assert first in seen

    def test_exhaustion_returns_none(self):
        freelist = make(FreeList)
        while freelist.count:
            freelist.allocate()
        assert freelist.allocate() is None

    def test_rebuild(self):
        freelist = make(FreeList)
        in_use = set(range(32))
        freelist.rebuild(in_use)
        assert freelist.count == CFG.physical_registers - 32
        allocated = {freelist.allocate() for _ in range(freelist.count)}
        assert allocated.isdisjoint(in_use)


class TestReorderBuffer:
    def test_allocate_in_order(self):
        rob = make(ReorderBuffer)
        first = rob.allocate(1)
        second = rob.allocate(2)
        assert second == (first + 1) % rob.size
        assert rob.count == 2

    def test_fills_to_capacity(self):
        rob = make(ReorderBuffer)
        for seq in range(rob.size):
            assert rob.allocate(seq) is not None
        assert rob.is_full()
        assert rob.allocate(99) is None

    def test_age_of(self):
        rob = make(ReorderBuffer)
        indices = [rob.allocate(seq) for seq in range(3)]
        assert [rob.age_of(index) for index in indices] == [0, 1, 2]

    def test_youngest_first(self):
        rob = make(ReorderBuffer)
        indices = [rob.allocate(seq) for seq in range(3)]
        assert rob.youngest_first() == list(reversed(indices))

    def test_allocate_resets_flags(self):
        rob = make(ReorderBuffer)
        index = rob.allocate(1)
        rob.done[index] = 1
        rob.exc[index] = 3
        rob.valid[index] = 0
        rob.head = index + 1
        rob.count = 0
        index2 = rob.allocate(2)
        assert rob.done[index2] == 0 and rob.exc[index2] == 0


class TestQueues:
    def test_scheduler_find_free_and_wakeup(self):
        sched = make(Scheduler)
        slot = sched.find_free()
        sched.valid[slot] = 1
        sched.src1_preg[slot] = 40
        sched.src2_preg[slot] = 41
        sched.wakeup(40)
        assert sched.src1_ready[slot] == 1
        assert sched.src2_ready[slot] == 0

    def test_ldq_stq_find_free(self):
        ldq = make(LoadQueue)
        stq = make(StoreQueue)
        slot = ldq.find_free()
        ldq.valid[slot] = 1
        assert ldq.find_free() != slot
        assert stq.find_free() is not None


class TestStoreBuffer:
    def test_fifo_order(self):
        buffer = make(StoreBuffer)
        buffer.push(0x100, 1, 3)
        buffer.push(0x108, 2, 3)
        assert buffer.pop_oldest() == (0x100, 1, 3)
        assert buffer.pop_oldest() == (0x108, 2, 3)
        assert buffer.pop_oldest() is None

    def test_sequence_counters(self):
        buffer = make(StoreBuffer)
        buffer.push(0, 0, 0)
        buffer.push(8, 0, 0)
        buffer.pop_oldest()
        assert buffer.total_pushed == 2
        assert buffer.total_popped == 1

    def test_truncate_to_mark(self):
        buffer = make(StoreBuffer)
        buffer.push(0, 1, 3)
        mark = buffer.total_pushed
        buffer.push(8, 2, 3)
        buffer.push(16, 3, 3)
        buffer.truncate_to(mark)
        assert buffer.total_pushed == mark
        assert buffer.pop_oldest() == (0, 1, 3)
        assert buffer.pop_oldest() is None

    def test_truncate_cannot_recall_released_stores(self):
        buffer = make(StoreBuffer)
        buffer.push(0, 1, 3)
        buffer.pop_oldest()  # released to memory
        buffer.truncate_to(0)
        assert buffer.total_pushed == buffer.total_popped

    def test_youngest_first(self):
        buffer = make(StoreBuffer)
        buffer.push(0, 1, 3)
        buffer.push(8, 2, 3)
        slots = buffer.entries_youngest_first()
        assert buffer.addr[slots[0]] == 8
        assert buffer.addr[slots[1]] == 0
