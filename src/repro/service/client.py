"""A resilient stdlib HTTP client for the campaign service.

Wraps :mod:`urllib.request` with JSON encoding/decoding and turns the
API's error envelopes into :class:`ServiceClientError`. Used by the
``repro submit`` / ``repro jobs`` / ``repro worker`` CLI commands and by
the end-to-end tests; anything else can speak the same trivially-curlable
protocol directly.

Three layers make the client survive a hostile network:

- **Transport abstraction** — all socket work goes through a
  ``send(method, url, data, headers, timeout) -> (status, body)`` object
  (:class:`UrllibTransport` by default). The chaos harness
  (:mod:`repro.service.chaos`) injects faults by wrapping this seam, so
  hostile-network tests exercise the *real* retry/breaker/outbox code.
- **Retry with classification** — transport failures (unreachable,
  timeout, reset), 5xx responses, and truncated/unparsable response
  bodies are *retryable* and follow the :class:`~repro.util.retry.RetryPolicy`
  backoff schedule; any 4xx is *fatal* and raises immediately (the
  request itself is wrong — retrying cannot fix it).
- **Per-endpoint circuit breakers** — after ``breaker_threshold``
  consecutive retryable failures on one endpoint the breaker trips open
  and calls fail fast (``ServiceClientError`` with ``retryable=True``)
  for a cooldown, then one probe is let through. A fleet of workers thus
  degrades to one probe per cooldown instead of a retry storm while the
  scheduler restarts.

Retries are safe because every endpoint is either naturally idempotent
(GETs, heartbeat, cancel) or made so by the scheduler: ``complete`` is
idempotent per (unit, worker), trial ingestion is keyed, and a ``lease``
retried after a lost response merely strands a lease that the TTL sweep
requeues.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable
from urllib.parse import urlencode

from repro.util.retry import CircuitBreaker, RetryPolicy

#: The default backoff schedule: 3 tries, ~50ms then ~100ms between them.
DEFAULT_RETRY_POLICY = RetryPolicy(
    attempts=3, base_delay=0.05, multiplier=2.0, max_delay=1.0, jitter=0.5
)


class ServiceClientError(Exception):
    """The service rejected a request (or could not be reached).

    ``retryable`` distinguishes "the network/service was unavailable and
    retries were exhausted (or the breaker is open)" from "the service
    answered and said no" — callers like the worker outbox spool results
    on the former and drop malformed requests on the latter.
    """

    def __init__(
        self, message: str, status: int | None = None,
        retryable: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.retryable = retryable


class TransportError(Exception):
    """The request never produced an HTTP response (network-level fault)."""


class UrllibTransport:
    """The real transport: one HTTP exchange via :mod:`urllib.request`.

    Returns ``(status, body)`` for *any* HTTP status — classification is
    the client's job — and raises :class:`TransportError` only when no
    response arrived at all.
    """

    def send(
        self, method: str, url: str, data: bytes | None,
        headers: dict, timeout: float,
    ) -> tuple[int, bytes]:
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()
        except urllib.error.URLError as exc:
            raise TransportError(str(exc.reason)) from None
        except (TimeoutError, ConnectionError, OSError) as exc:
            raise TransportError(str(exc) or type(exc).__name__) from None


class ServiceClient:
    """A resilient JSON-over-HTTP client bound to one service base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        transport=None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.transport = transport if transport is not None else UrllibTransport()
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._sleep = sleep
        self._breakers: dict[str, CircuitBreaker] = {}
        self.counters = {
            "requests": 0,
            "retries": 0,
            "transport_errors": 0,
            "server_errors": 0,
            "breaker_fast_failures": 0,
        }

    # ----------------------------------------------------- resilience

    def _breaker(self, endpoint: str) -> CircuitBreaker | None:
        if self.breaker_threshold < 1:
            return None
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown
            )
            self._breakers[endpoint] = breaker
        return breaker

    def breaker_trips(self) -> int:
        """Total circuit-breaker trips across all endpoints."""
        return sum(b.trips for b in self._breakers.values())

    def _request(
        self, method: str, path: str, payload: dict | None = None,
        query: dict | None = None, endpoint: str | None = None,
    ) -> dict:
        url = f"{self.base_url}{path}"
        if query:
            url += "?" + urlencode(
                {k: v for k, v in query.items() if v is not None}
            )
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        endpoint = endpoint or f"{method} {path}"
        breaker = self._breaker(endpoint)

        failure: ServiceClientError | None = None
        for attempt in range(1, self.retry.attempts + 1):
            if breaker is not None and not breaker.allow():
                self.counters["breaker_fast_failures"] += 1
                raise ServiceClientError(
                    f"circuit breaker open for {endpoint} "
                    f"(cooling down after repeated failures)",
                    retryable=True,
                )
            self.counters["requests"] += 1
            try:
                payload_out = self._exchange(method, url, data, headers)
            except ServiceClientError as exc:
                if not exc.retryable:
                    # The service answered and said no: the endpoint is
                    # alive (reset the breaker), the request is wrong.
                    if breaker is not None:
                        breaker.record_success()
                    raise
                failure = exc
                if breaker is not None:
                    breaker.record_failure()
                if attempt < self.retry.attempts:
                    self.counters["retries"] += 1
                    self._sleep(self.retry.delay(attempt, key=endpoint))
                continue
            if breaker is not None:
                breaker.record_success()
            return payload_out
        assert failure is not None
        raise failure

    def _exchange(
        self, method: str, url: str, data: bytes | None, headers: dict
    ) -> dict:
        """One transport round trip, classified into success / retryable
        failure / fatal failure."""
        try:
            status, body = self.transport.send(
                method, url, data, headers, self.timeout
            )
        except TransportError as exc:
            self.counters["transport_errors"] += 1
            raise ServiceClientError(
                f"cannot reach campaign service at {self.base_url}: {exc}",
                retryable=True,
            ) from None
        if status >= 500:
            self.counters["server_errors"] += 1
            raise ServiceClientError(
                f"server error {status}: {_error_message(body)}",
                status=status, retryable=True,
            )
        if status >= 400:
            raise ServiceClientError(
                _error_message(body), status=status, retryable=False
            )
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            # A mangled 2xx body is transport corruption (e.g. truncation
            # mid-flight), not a service decision: retry it.
            self.counters["transport_errors"] += 1
            raise ServiceClientError(
                f"malformed response from {self.base_url} "
                f"({len(body)} bytes, not JSON)",
                retryable=True,
            ) from None

    # ----------------------------------------------------- client side

    def health(self) -> dict:
        return self._request("GET", "/api/health", endpoint="health")

    def submit(self, payload: dict) -> dict:
        return self._request("POST", "/api/jobs", payload, endpoint="submit")

    def jobs(self, offset: int = 0, limit: int = 50) -> dict:
        return self._request(
            "GET", "/api/jobs", query={"offset": offset, "limit": limit},
            endpoint="jobs",
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}", endpoint="job")

    def cancel(self, job_id: str) -> dict:
        return self._request(
            "POST", f"/api/jobs/{job_id}/cancel", {}, endpoint="cancel"
        )

    def results(
        self, job_id: str, *, offset: int = 0, limit: int = 100,
        status: str | None = None, workload: str | None = None,
    ) -> dict:
        return self._request(
            "GET", f"/api/jobs/{job_id}/results",
            query={"offset": offset, "limit": limit, "status": status,
                   "workload": workload},
            endpoint="results",
        )

    def metrics(self, job_id: str) -> dict:
        return self._request(
            "GET", f"/api/jobs/{job_id}/metrics", endpoint="metrics"
        )

    def service_metrics(self) -> dict:
        """The service-wide resilience counters (``GET /api/metrics``)."""
        return self._request("GET", "/api/metrics", endpoint="service-metrics")

    def dead_letter(self, job_id: str | None = None) -> dict:
        """Dead-lettered (attempt-exhausted) units, optionally per job."""
        if job_id is None:
            return self._request(
                "GET", "/api/dead-letter", endpoint="dead-letter"
            )
        return self._request(
            "GET", f"/api/jobs/{job_id}/dead-letter", endpoint="dead-letter"
        )

    def requeue(self, job_id: str, unit_id: str) -> dict:
        """Return a dead-lettered unit to the queue with a fresh budget."""
        return self._request(
            "POST", f"/api/jobs/{job_id}/units/{unit_id}/requeue", {},
            endpoint="requeue",
        )

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.2
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        from repro.service.store import JOB_TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in JOB_TERMINAL_STATES:
                return view
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(state: {view['state']})"
                )
            time.sleep(poll)

    # ----------------------------------------------------- worker side

    def lease(self, worker: str) -> dict | None:
        lease = self._request(
            "POST", "/api/lease", {"worker": worker}, endpoint="lease"
        )
        return lease if lease.get("unit") else None

    def lease_batch(self, worker: str, count: int) -> list[dict]:
        """Lease up to ``count`` units in one round trip.

        Returns a (possibly empty) list of lease dicts, each shaped like
        a single :meth:`lease` response. Safe to retry: the scheduler
        re-issues the units this worker already holds before granting
        fresh ones, so a retry after a lost response gets the same batch
        back.
        """
        response = self._request(
            "POST", "/api/lease", {"worker": worker, "count": count},
            endpoint="lease",
        )
        return list(response.get("leases") or ())

    def heartbeat(self, job_id: str, unit_id: str, worker: str) -> bool:
        return bool(self._request(
            "POST", f"/api/jobs/{job_id}/units/{unit_id}/heartbeat",
            {"worker": worker}, endpoint="heartbeat",
        ).get("ok"))

    def complete(
        self, job_id: str, unit_id: str, worker: str, result: dict
    ) -> bool:
        return bool(self._request(
            "POST", f"/api/jobs/{job_id}/units/{unit_id}/complete",
            {"worker": worker, "result": result}, endpoint="complete",
        ).get("accepted"))

    def complete_chunked(
        self, job_id: str, unit_id: str, worker: str, result: dict,
        chunk_size: int | None,
    ) -> bool:
        """Deliver a unit result in bounded chunks of ``chunk_size``
        trial outcomes per POST (the final chunk carries the unit-level
        result), so a 500-trial unit never sits on one giant request.

        Falls back to a single :meth:`complete` when the result fits in
        one chunk. Every chunk retries independently under the normal
        policy; redelivered chunks are idempotent on the scheduler side
        (trial keys dedupe them), so a retry after a lost response can
        never double-count. A bounced chunk (``False``) means the lease
        is gone — the stream stops, since the retry attempt will
        regenerate identical records.
        """
        outcomes = result.get("outcomes") or []
        if chunk_size is None or chunk_size < 1 \
                or len(outcomes) <= chunk_size:
            return self.complete(job_id, unit_id, worker, result)
        slices = [
            outcomes[start:start + chunk_size]
            for start in range(0, len(outcomes), chunk_size)
        ]
        count = len(slices)
        path = f"/api/jobs/{job_id}/units/{unit_id}/complete"
        for index, part in enumerate(slices[:-1]):
            accepted = self._request(
                "POST", path,
                {
                    "worker": worker,
                    "chunk": {"index": index, "count": count},
                    "result": {"outcomes": part},
                },
                endpoint="complete",
            ).get("accepted")
            if not accepted:
                return False
        final = dict(result)
        final["outcomes"] = slices[-1]
        return bool(self._request(
            "POST", path,
            {
                "worker": worker,
                "chunk": {"index": count - 1, "count": count},
                "result": final,
            },
            endpoint="complete",
        ).get("accepted"))

    def fail(self, job_id: str, unit_id: str, worker: str, error: str) -> bool:
        return bool(self._request(
            "POST", f"/api/jobs/{job_id}/units/{unit_id}/fail",
            {"worker": worker, "error": error}, endpoint="fail",
        ).get("accepted"))


def _error_message(body: bytes) -> str:
    """Extract the API's ``{"error": ...}`` envelope, tolerating garbage."""
    text = body.decode("utf-8", "replace")
    try:
        message = json.loads(text).get("error", text)
    except (ValueError, AttributeError):
        message = text
    return str(message) or "request failed"
