"""Shared utilities: bit manipulation, RNG streams, statistics, rendering.

These helpers are deliberately dependency-light; everything in the simulator
stack (ISA, architectural simulator, pipeline model, fault injection) builds
on them.
"""

from repro.util.journal import (
    JournalError,
    JournalWriter,
    config_to_dict,
    read_journal,
    repair_tail,
    stable_digest,
)
from repro.util.bitops import (
    MASK32,
    MASK64,
    bit_is_set,
    extract_bits,
    flip_bit,
    popcount,
    set_bits,
    sign_extend,
    to_signed64,
    to_unsigned64,
)
from repro.util.retry import CircuitBreaker, RetryPolicy
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.stats import (
    BinomialEstimate,
    CategoryCounter,
    mean,
    proportion_confidence_interval,
)
from repro.util.tables import format_table, render_stacked_bars

__all__ = [
    "MASK32",
    "MASK64",
    "BinomialEstimate",
    "CategoryCounter",
    "CircuitBreaker",
    "DeterministicRng",
    "RetryPolicy",
    "JournalError",
    "JournalWriter",
    "config_to_dict",
    "read_journal",
    "repair_tail",
    "stable_digest",
    "bit_is_set",
    "derive_seed",
    "extract_bits",
    "flip_bit",
    "format_table",
    "mean",
    "popcount",
    "proportion_confidence_interval",
    "render_stacked_bars",
    "set_bits",
    "sign_extend",
    "to_signed64",
    "to_unsigned64",
]
