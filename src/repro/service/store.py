"""The SQLite result store: jobs, work units, and trial records.

Everything the service knows lives here, in one SQLite database (or in
memory for tests): submitted jobs and their specs, the work units they
shard into (with lease state for the pull-based worker protocol), and
every trial outcome a worker has reported. Trial ingestion uses
``INSERT OR IGNORE`` on the ``(job, trial key)`` primary key, so a unit
that is retried after a worker death or lease expiry can re-report its
trials without ever double-counting one — the store is idempotent under
at-least-once unit execution.

The store is deliberately synchronous and single-threaded: the scheduler
and every API handler run on one asyncio event loop, and only the trial
*execution* is farmed out to worker processes, so there is exactly one
writer and SQLite needs no cross-thread coordination.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any

from repro.service.shard import WorkUnit

# Unit lifecycle: pending -> leased -> done | failed; cancel short-circuits.
UNIT_PENDING = "pending"
UNIT_LEASED = "leased"
UNIT_DONE = "done"
UNIT_FAILED = "failed"
UNIT_CANCELLED = "cancelled"

# Job lifecycle: queued -> running -> done | failed | cancelled.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id   TEXT PRIMARY KEY,
    seq      INTEGER NOT NULL,
    created  REAL NOT NULL,
    finished REAL,
    state    TEXT NOT NULL,
    level    TEXT NOT NULL,
    spec     TEXT NOT NULL,
    error    TEXT,
    journal_path TEXT,
    trace_path   TEXT,
    metrics  TEXT
);
CREATE TABLE IF NOT EXISTS units (
    job_id      TEXT NOT NULL,
    unit_id     TEXT NOT NULL,
    workload    TEXT NOT NULL,
    shard_index INTEGER NOT NULL,
    shard_count INTEGER NOT NULL,
    state       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    worker      TEXT,
    lease_expiry REAL,
    skip_reason TEXT,
    total_bits  INTEGER NOT NULL DEFAULT 0,
    metrics     TEXT,
    error       TEXT,
    round       INTEGER NOT NULL DEFAULT 0,
    allocation  TEXT,
    planner_meta TEXT,
    PRIMARY KEY (job_id, unit_id)
);
CREATE TABLE IF NOT EXISTS trials (
    job_id   TEXT NOT NULL,
    key      TEXT NOT NULL,
    wpos     INTEGER NOT NULL,
    workload TEXT NOT NULL,
    point    INTEGER NOT NULL,
    idx      INTEGER NOT NULL,
    status   TEXT NOT NULL,
    entry    TEXT NOT NULL,
    round    INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (job_id, key)
);
CREATE TABLE IF NOT EXISTS planner_state (
    job_id   TEXT NOT NULL,
    workload TEXT NOT NULL,
    state    TEXT NOT NULL,
    PRIMARY KEY (job_id, workload)
);
CREATE INDEX IF NOT EXISTS trials_round_order
    ON trials (job_id, wpos, round, point, idx);
CREATE INDEX IF NOT EXISTS units_state ON units (state, job_id);
"""

#: Columns added after the first released schema; applied idempotently so
#: a store file written by an older service upgrades in place. Serial
#: journal order for adaptive jobs is (workload, round, point, index), so
#: the old (wpos, point, idx) index is superseded by trials_round_order.
_MIGRATIONS = (
    "ALTER TABLE units ADD COLUMN round INTEGER NOT NULL DEFAULT 0",
    "ALTER TABLE units ADD COLUMN allocation TEXT",
    "ALTER TABLE units ADD COLUMN planner_meta TEXT",
    "ALTER TABLE trials ADD COLUMN round INTEGER NOT NULL DEFAULT 0",
    "DROP INDEX IF EXISTS trials_order",
)


def _row_to_dict(row: sqlite3.Row | None) -> dict | None:
    return dict(row) if row is not None else None


class ResultStore:
    """Persistent state for the campaign service."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        # check_same_thread off: tests create the store on one thread and
        # run the service loop on another; all *use* stays single-threaded
        # (every access happens on the scheduler's thread).
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        for statement in _MIGRATIONS:
            try:
                self._conn.execute(statement)
            except sqlite3.OperationalError:
                pass  # column already present (fresh schema or re-run)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------- jobs

    def next_sequence(self) -> int:
        row = self._conn.execute("SELECT COALESCE(MAX(seq), 0) + 1 FROM jobs")
        return int(row.fetchone()[0])

    def create_job(
        self, job_id: str, seq: int, level: str, spec: dict, created: float
    ) -> None:
        self._conn.execute(
            "INSERT INTO jobs (job_id, seq, created, state, level, spec) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (job_id, seq, created, JOB_QUEUED, level, json.dumps(spec)),
        )
        self._conn.commit()

    def job(self, job_id: str) -> dict | None:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        return _row_to_dict(row)

    def jobs(self, offset: int = 0, limit: int = 50) -> list[dict]:
        rows = self._conn.execute(
            "SELECT * FROM jobs ORDER BY seq DESC LIMIT ? OFFSET ?",
            (limit, offset),
        ).fetchall()
        return [dict(row) for row in rows]

    def job_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0])

    def set_job_state(
        self, job_id: str, state: str, *,
        error: str | None = None, finished: float | None = None,
    ) -> None:
        self._conn.execute(
            "UPDATE jobs SET state = ?, error = COALESCE(?, error), "
            "finished = COALESCE(?, finished) WHERE job_id = ?",
            (state, error, finished, job_id),
        )
        self._conn.commit()

    def finalize_job(
        self, job_id: str, *, state: str, journal_path: str | None,
        trace_path: str | None, metrics: dict | None, finished: float,
        error: str | None = None,
    ) -> None:
        # ``error`` overwrites (including to NULL): re-finalizing after a
        # dead-letter requeue must clear a stale "skipped workloads" note.
        self._conn.execute(
            "UPDATE jobs SET state = ?, journal_path = ?, trace_path = ?, "
            "metrics = ?, finished = ?, error = ? WHERE job_id = ?",
            (
                state, journal_path, trace_path,
                json.dumps(metrics) if metrics is not None else None,
                finished, error, job_id,
            ),
        )
        self._conn.commit()

    # ------------------------------------------------------------ units

    def add_units(self, units: list[WorkUnit]) -> None:
        self._conn.executemany(
            "INSERT INTO units (job_id, unit_id, workload, shard_index, "
            "shard_count, state, round, allocation) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (u.job_id, u.unit_id, u.workload, u.shard_index,
                 u.shard_count, UNIT_PENDING, u.round,
                 json.dumps([list(entry) for entry in u.allocation])
                 if u.allocation is not None else None)
                for u in units
            ],
        )
        self._conn.commit()

    def units(self, job_id: str) -> list[dict]:
        rows = self._conn.execute(
            "SELECT * FROM units WHERE job_id = ? ORDER BY rowid", (job_id,)
        ).fetchall()
        return [dict(row) for row in rows]

    def unit(self, job_id: str, unit_id: str) -> dict | None:
        row = self._conn.execute(
            "SELECT * FROM units WHERE job_id = ? AND unit_id = ?",
            (job_id, unit_id),
        ).fetchone()
        return _row_to_dict(row)

    def unit_state_counts(self, job_id: str) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM units WHERE job_id = ? "
            "GROUP BY state",
            (job_id,),
        ).fetchall()
        return {row["state"]: row["n"] for row in rows}

    def lease_batch(
        self, worker: str, now: float, ttl: float, limit: int
    ) -> list[dict]:
        """Lease up to ``limit`` pending units to ``worker`` atomically.

        One SQLite transaction covers the whole grant, and every unit in
        the batch carries the *same* lease clock reading (``now + ttl``)
        — one lease clock per batch, so a batch expires as a whole
        rather than unit-by-unit as the select walked the queue. Units
        come oldest-job-first, oldest-unit-first, exactly the order a
        sequence of single leases would have drained them.
        """
        rows = self._conn.execute(
            "SELECT units.rowid AS unit_rowid, units.* FROM units "
            "JOIN jobs ON jobs.job_id = units.job_id "
            "WHERE units.state = ? AND jobs.state IN (?, ?) "
            "ORDER BY jobs.seq, units.rowid LIMIT ?",
            (UNIT_PENDING, JOB_QUEUED, JOB_RUNNING, limit),
        ).fetchall()
        if not rows:
            return []
        expiry = now + ttl
        self._conn.executemany(
            "UPDATE units SET state = ?, worker = ?, lease_expiry = ?, "
            "attempts = attempts + 1 WHERE rowid = ?",
            [(UNIT_LEASED, worker, expiry, row["unit_rowid"]) for row in rows],
        )
        self._conn.commit()
        units = []
        for row in rows:
            unit = dict(row)
            unit.pop("unit_rowid", None)
            unit.update(
                state=UNIT_LEASED, worker=worker, lease_expiry=expiry,
                attempts=row["attempts"] + 1,
            )
            units.append(unit)
        return units

    def lease_next(self, worker: str, now: float, ttl: float) -> dict | None:
        """Lease the oldest pending unit of the oldest active job, if any."""
        units = self.lease_batch(worker, now, ttl, limit=1)
        return units[0] if units else None

    def reissue_leases(
        self, worker: str, now: float, ttl: float, limit: int
    ) -> list[dict]:
        """Return up to ``limit`` units ``worker`` already holds live
        leases on, refreshing them all to one new lease clock.

        A lease response can be lost in transit; the worker's retry must
        get the same units back rather than an idle signal, which would
        strand the grants until TTL expiry (or strand the job outright,
        for an exit-when-idle worker that quits believing the queue is
        empty). The retry is the same attempt per unit, so ``attempts``
        is not re-counted.
        """
        rows = self._conn.execute(
            "SELECT units.rowid AS unit_rowid, units.* FROM units "
            "JOIN jobs ON jobs.job_id = units.job_id "
            "WHERE units.state = ? AND units.worker = ? AND "
            "units.lease_expiry > ? AND jobs.state IN (?, ?) "
            "ORDER BY jobs.seq, units.rowid LIMIT ?",
            (UNIT_LEASED, worker, now, JOB_QUEUED, JOB_RUNNING, limit),
        ).fetchall()
        if not rows:
            return []
        expiry = now + ttl
        self._conn.executemany(
            "UPDATE units SET lease_expiry = ? WHERE rowid = ?",
            [(expiry, row["unit_rowid"]) for row in rows],
        )
        self._conn.commit()
        units = []
        for row in rows:
            unit = dict(row)
            unit.pop("unit_rowid", None)
            unit["lease_expiry"] = expiry
            units.append(unit)
        return units

    def reissue_lease(self, worker: str, now: float, ttl: float) -> dict | None:
        """Single-unit :meth:`reissue_leases` (the unbatched protocol)."""
        units = self.reissue_leases(worker, now, ttl, limit=1)
        return units[0] if units else None

    def heartbeat(
        self, job_id: str, unit_id: str, worker: str, expiry: float
    ) -> bool:
        """Extend a live lease; False when the worker no longer owns it."""
        cursor = self._conn.execute(
            "UPDATE units SET lease_expiry = ? WHERE job_id = ? AND "
            "unit_id = ? AND worker = ? AND state = ?",
            (expiry, job_id, unit_id, worker, UNIT_LEASED),
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def complete_unit(
        self, job_id: str, unit_id: str, worker: str, *,
        skip_reason: str | None, total_bits: int, metrics: dict | None,
        planner_meta: dict | None = None,
    ) -> bool:
        """Mark a leased unit done; False when the lease is no longer held.

        ``planner_meta`` (round-0 adaptive units only) persists the
        worker-derived point/prescreen metadata on the unit row itself,
        in the same transaction as the completion — a scheduler restart
        between a complete and the next round's planning can always
        rederive its state from done units plus trial rows.
        """
        cursor = self._conn.execute(
            "UPDATE units SET state = ?, skip_reason = ?, total_bits = ?, "
            "metrics = ?, planner_meta = ?, lease_expiry = NULL "
            "WHERE job_id = ? AND unit_id = ? AND worker = ? AND state = ?",
            (
                UNIT_DONE, skip_reason, total_bits,
                json.dumps(metrics) if metrics is not None else None,
                json.dumps(planner_meta) if planner_meta is not None else None,
                job_id, unit_id, worker, UNIT_LEASED,
            ),
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def release_unit(
        self, job_id: str, unit_id: str, *, state: str, error: str | None
    ) -> None:
        """Return a unit to the queue (pending) or retire it (failed)."""
        self._conn.execute(
            "UPDATE units SET state = ?, worker = NULL, lease_expiry = NULL, "
            "error = COALESCE(?, error) WHERE job_id = ? AND unit_id = ?",
            (state, error, job_id, unit_id),
        )
        self._conn.commit()

    def expired_units(self, now: float) -> list[dict]:
        rows = self._conn.execute(
            "SELECT * FROM units WHERE state = ? AND lease_expiry < ?",
            (UNIT_LEASED, now),
        ).fetchall()
        return [dict(row) for row in rows]

    def rearm_leases(self, expiry: float) -> int:
        """Reset every live lease's expiry; returns how many were re-armed.

        Lease expiries are monotonic-clock readings, which are meaningless
        across process restarts (each boot has its own epoch); a restarted
        scheduler re-arms persisted leases against its own clock so stale
        timestamps can neither mass-expire nor immortalise them.
        """
        cursor = self._conn.execute(
            "UPDATE units SET lease_expiry = ? WHERE state = ?",
            (expiry, UNIT_LEASED),
        )
        self._conn.commit()
        return cursor.rowcount

    def dead_letter_units(self, job_id: str | None = None) -> list[dict]:
        """Attempt-exhausted (failed) units — the dead-letter queue."""
        if job_id is None:
            rows = self._conn.execute(
                "SELECT units.* FROM units JOIN jobs "
                "ON jobs.job_id = units.job_id WHERE units.state = ? "
                "ORDER BY jobs.seq, units.rowid",
                (UNIT_FAILED,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM units WHERE job_id = ? AND state = ? "
                "ORDER BY rowid",
                (job_id, UNIT_FAILED),
            ).fetchall()
        return [dict(row) for row in rows]

    def dead_letter_count(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM units WHERE state = ?", (UNIT_FAILED,)
        ).fetchone()
        return int(row[0])

    def requeue_unit(self, job_id: str, unit_id: str) -> bool:
        """Return a dead-lettered unit to the queue with a fresh attempt
        budget; False when the unit is not in the dead-letter state."""
        cursor = self._conn.execute(
            "UPDATE units SET state = ?, attempts = 0, worker = NULL, "
            "lease_expiry = NULL, error = NULL WHERE job_id = ? AND "
            "unit_id = ? AND state = ?",
            (UNIT_PENDING, job_id, unit_id, UNIT_FAILED),
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def cancel_pending_units(self, job_id: str) -> int:
        cursor = self._conn.execute(
            "UPDATE units SET state = ? WHERE job_id = ? AND state IN (?, ?)",
            (UNIT_CANCELLED, job_id, UNIT_PENDING, UNIT_LEASED),
        )
        self._conn.commit()
        return cursor.rowcount

    # ----------------------------------------------------------- trials

    def add_trials(self, job_id: str, rows: list[tuple]) -> int:
        """Ingest ``(key, wpos, round, workload, point, idx, status,
        entry_json)`` rows idempotently; returns how many were new."""
        cursor = self._conn.executemany(
            "INSERT OR IGNORE INTO trials "
            "(job_id, key, wpos, round, workload, point, idx, status, entry) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [(job_id, *row) for row in rows],
        )
        self._conn.commit()
        return cursor.rowcount

    def outcome_counts(self, job_id: str) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM trials WHERE job_id = ? "
            "GROUP BY status",
            (job_id,),
        ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def workload_outcome_counts(self, job_id: str) -> dict[str, dict[str, int]]:
        rows = self._conn.execute(
            "SELECT workload, status, COUNT(*) AS n FROM trials "
            "WHERE job_id = ? GROUP BY workload, status "
            "ORDER BY MIN(wpos)",
            (job_id,),
        ).fetchall()
        counts: dict[str, dict[str, int]] = {}
        for row in rows:
            counts.setdefault(row["workload"], {})[row["status"]] = row["n"]
        return counts

    def trial_count(
        self, job_id: str, status: str | None = None,
        workload: str | None = None,
    ) -> int:
        clauses = ["job_id = ?"]
        params: list[Any] = [job_id]
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        row = self._conn.execute(
            f"SELECT COUNT(*) FROM trials WHERE {' AND '.join(clauses)}",
            params,
        ).fetchone()
        return int(row[0])

    def trial_entries(
        self, job_id: str, *, offset: int = 0, limit: int = 100,
        status: str | None = None, workload: str | None = None,
    ) -> list[dict]:
        """Trial journal entries in serial order — (workload, round,
        point, index); uniform jobs have every trial at round 0, so
        their order is the historical (workload, point, index)."""
        clauses = ["job_id = ?"]
        params: list[Any] = [job_id]
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        params.extend([limit, offset])
        rows = self._conn.execute(
            f"SELECT entry FROM trials WHERE {' AND '.join(clauses)} "
            f"ORDER BY wpos, round, point, idx LIMIT ? OFFSET ?",
            params,
        ).fetchall()
        return [json.loads(row["entry"]) for row in rows]

    # ---------------------------------------------------- planner state

    def planner_state(self, job_id: str, workload: str) -> dict | None:
        """The scheduler's per-workload adaptive-planning state."""
        row = self._conn.execute(
            "SELECT state FROM planner_state WHERE job_id = ? AND "
            "workload = ?",
            (job_id, workload),
        ).fetchone()
        return json.loads(row["state"]) if row is not None else None

    def set_planner_state(
        self, job_id: str, workload: str, state: dict
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO planner_state (job_id, workload, state) "
            "VALUES (?, ?, ?)",
            (job_id, workload, json.dumps(state)),
        )
        self._conn.commit()
