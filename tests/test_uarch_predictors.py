"""Branch predictors, BTB, RAS, confidence, memory dependence."""

from repro.uarch.branch_predictor import (
    BranchTargetBuffer,
    CombiningPredictor,
    ReturnAddressStack,
)
from repro.uarch.confidence import (
    JrsConfidenceEstimator,
    NeverConfidentEstimator,
    PerfectConfidenceEstimator,
)
from repro.uarch.config import PipelineConfig
from repro.uarch.memdep import MemoryDependencePredictor

CFG = PipelineConfig()


class TestCombiningPredictor:
    def test_learns_always_taken(self):
        predictor = CombiningPredictor(CFG)
        pc = 0x1000
        for _ in range(8):
            predictor.update(pc, True, predictor.history)
        assert predictor.predict(pc)

    def test_learns_alternating_pattern_via_history(self):
        predictor = CombiningPredictor(CFG)
        pc = 0x2000
        # Train taken/not-taken alternation with history updates.
        outcome = True
        for _ in range(200):
            history = predictor.history
            predictor.update(pc, outcome, history)
            predictor.push_history(outcome)
            outcome = not outcome
        # After training, prediction should follow the alternation well.
        correct = 0
        for _ in range(40):
            prediction = predictor.predict(pc)
            history = predictor.history
            predictor.update(pc, outcome, history)
            predictor.push_history(outcome)
            if prediction == outcome:
                correct += 1
            outcome = not outcome
        assert correct >= 35

    def test_history_restore(self):
        predictor = CombiningPredictor(CFG)
        predictor.push_history(True)
        predictor.push_history(False)
        saved = predictor.history
        predictor.push_history(True)
        predictor.restore_history(saved)
        assert predictor.history == saved

    def test_history_is_bounded(self):
        predictor = CombiningPredictor(CFG)
        for _ in range(100):
            predictor.push_history(True)
        assert predictor.history < (1 << CFG.history_bits)


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.lookup(0x400) is None
        btb.update(0x400, 0x999)
        assert btb.lookup(0x400) == 0x999

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(64)
        pc_a = 0x400
        pc_b = pc_a + 64 * 4  # same index, different tag
        btb.update(pc_a, 1)
        btb.update(pc_b, 2)
        assert btb.lookup(pc_a) is None
        assert btb.lookup(pc_b) == 2


class TestRas:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1

    def test_wraps_without_crashing(self):
        ras = ReturnAddressStack(4)
        for value in range(10):
            ras.push(value)
        assert ras.pop() == 9

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(5)
        assert ras.peek() == 5
        assert ras.pop() == 5


class TestJrsConfidence:
    def test_starts_unconfident(self):
        jrs = JrsConfidenceEstimator(CFG)
        assert not jrs.estimate(0x100, 0)

    def test_saturates_to_confident(self):
        jrs = JrsConfidenceEstimator(CFG)
        for _ in range(CFG.jrs_threshold):
            jrs.update(0x100, 0, correct=True)
        assert jrs.estimate(0x100, 0)

    def test_resetting_counter(self):
        jrs = JrsConfidenceEstimator(CFG)
        for _ in range(CFG.jrs_threshold):
            jrs.update(0x100, 0, correct=True)
        jrs.update(0x100, 0, correct=False)
        assert not jrs.estimate(0x100, 0)

    def test_history_changes_index(self):
        jrs = JrsConfidenceEstimator(CFG)
        for _ in range(CFG.jrs_threshold):
            jrs.update(0x100, 0, correct=True)
        assert jrs.estimate(0x100, 0)
        assert not jrs.estimate(0x100, 1)

    def test_conservatism(self):
        # JRS must be conservative: fewer than threshold corrects is never
        # high confidence (the paper prioritises performance over coverage).
        jrs = JrsConfidenceEstimator(CFG)
        for _ in range(CFG.jrs_threshold - 1):
            jrs.update(0x200, 0, correct=True)
        assert not jrs.estimate(0x200, 0)


class TestOracleEstimators:
    def test_perfect_always_confident(self):
        oracle = PerfectConfidenceEstimator()
        assert oracle.estimate(0, 0)
        oracle.update(0, 0, correct=False)
        assert oracle.estimate(0, 0)

    def test_never_confident(self):
        never = NeverConfidentEstimator()
        assert not never.estimate(0, 0)


class TestMemDep:
    def test_defaults_to_speculate(self):
        predictor = MemoryDependencePredictor(64)
        assert not predictor.should_wait(0x100)

    def test_violation_teaches_waiting(self):
        predictor = MemoryDependencePredictor(64)
        predictor.record_violation(0x100)
        assert predictor.should_wait(0x100)

    def test_safety_decays(self):
        predictor = MemoryDependencePredictor(64)
        predictor.record_violation(0x100)
        predictor.record_safe(0x100)
        predictor.record_safe(0x100)
        assert not predictor.should_wait(0x100)
